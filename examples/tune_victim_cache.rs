//! Tune a victim cache with miss-classification filters on a chosen
//! workload — a one-workload slice of Figure 3 / Table 1, plus a
//! buffer-size sweep the paper doesn't show.
//!
//! Run with: `cargo run --release --example tune_victim_cache -- turb3d`

use conflict_miss_repro::cache_model::CacheGeometry;
use conflict_miss_repro::cpu_model::{BaselineSystem, CpuConfig, OooModel, Plumbing};
use conflict_miss_repro::victim_cache::{VictimConfig, VictimPolicy, VictimSystem};
use conflict_miss_repro::workloads;

const EVENTS: usize = 300_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "turb3d".to_owned());
    let Some(workload) = workloads::by_name(&name) else {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    };
    let cpu = OooModel::new(CpuConfig::paper_default());
    let trace = || {
        let mut src = workload.source(1);
        std::iter::from_fn(move || Some(src.next_event())).take(EVENTS)
    };

    let mut baseline = BaselineSystem::paper_default()?;
    let base = cpu.run(&mut baseline, trace());
    println!("workload {name}: baseline IPC {:.3}\n", base.ipc());

    println!(
        "{:<14} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "policy", "speedup", "D$ HR%", "V$ HR%", "total%", "swap%", "fill%"
    );
    for policy in VictimPolicy::ALL {
        let mut sys = VictimSystem::paper_default(VictimConfig::new(policy))?;
        let report = cpu.run(&mut sys, trace());
        let s = sys.stats();
        println!(
            "{:<14} {:>8.3} {:>7.1} {:>7.1} {:>7.1} {:>7.2} {:>7.2}",
            policy.to_string(),
            report.speedup_over(&base),
            100.0 * s.d_hit_rate(),
            100.0 * s.v_hit_rate(),
            100.0 * s.total_hit_rate(),
            100.0 * s.swap_rate(),
            100.0 * s.fill_rate(),
        );
    }

    // Extension: how big does the buffer need to be? (The paper fixes
    // 8 entries; the filters matter more when it is small.)
    println!("\nbuffer-size sweep (filter both):");
    println!("{:<8} {:>8} {:>8}", "entries", "speedup", "total%");
    for entries in [2usize, 4, 8, 16, 32] {
        let cfg = VictimConfig {
            entries,
            ..VictimConfig::new(VictimPolicy::FilterBoth)
        };
        let mut sys = VictimSystem::new(
            cfg,
            CacheGeometry::new(16 * 1024, 1, 64)?,
            Plumbing::paper_default()?,
        );
        let report = cpu.run(&mut sys, trace());
        println!(
            "{:<8} {:>8.3} {:>8.1}",
            entries,
            report.speedup_over(&base),
            100.0 * sys.stats().total_hit_rate()
        );
    }
    Ok(())
}
