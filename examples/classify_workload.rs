//! Classify the misses of any SPEC95-analog workload and score the
//! MCT against the three-C oracle — a one-workload slice of Figure 1.
//!
//! Run with: `cargo run --release --example classify_workload -- tomcatv [events]`

use conflict_miss_repro::cache_model::CacheGeometry;
use conflict_miss_repro::mct::accuracy::AccuracyEvaluator;
use conflict_miss_repro::mct::TagBits;
use conflict_miss_repro::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "tomcatv".to_owned());
    let events: usize = args.next().map_or(Ok(300_000), |s| s.parse())?;

    let Some(workload) = workloads::by_name(&name) else {
        eprintln!("unknown workload '{name}'; available:");
        for w in workloads::full_suite() {
            eprintln!("  {:10} {}", w.name(), w.description());
        }
        std::process::exit(1);
    };

    println!("workload: {workload} — {}", workload.description());
    println!("events  : {events}\n");
    println!(
        "{:<12} {:>10} {:>8} {:>12} {:>12}",
        "config", "misses", "miss%", "conflict-acc", "capacity-acc"
    );

    for (kb, ways) in [(16u64, 1u32), (16, 2), (64, 1), (64, 2)] {
        let geom = CacheGeometry::new(kb * 1024, ways, 64)?;
        let mut eval = AccuracyEvaluator::new(geom, TagBits::Full);
        let mut src = workload.source(1);
        for _ in 0..events {
            eval.observe(src.next_event().access.addr.line(64));
        }
        let r = eval.report();
        println!(
            "{:<12} {:>10} {:>7.1}% {:>11.1}% {:>11.1}%",
            format!("{kb}KB {ways}-way"),
            r.misses,
            100.0 * r.misses as f64 / r.accesses as f64,
            r.conflict.percent(),
            r.capacity.percent(),
        );
    }
    Ok(())
}
