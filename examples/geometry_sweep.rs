//! Sweep cache geometries and watch the conflict/capacity mix — and
//! the MCT's accuracy — change shape.
//!
//! The paper chose its 16 KB direct-mapped L1 "to create an
//! interesting mix of conflict and capacity misses for the simulated
//! workload"; this example shows what that choice looks like from the
//! MCT's perspective across sizes and associativities, plus the
//! demand-miss latency distribution of the baseline system.
//!
//! Run with: `cargo run --release --example geometry_sweep -- gcc`

use conflict_miss_repro::cache_model::CacheGeometry;
use conflict_miss_repro::cpu_model::{BaselineSystem, CpuConfig, OooModel, Plumbing};
use conflict_miss_repro::mct::accuracy::AccuracyEvaluator;
use conflict_miss_repro::mct::TagBits;
use conflict_miss_repro::workloads;

const EVENTS: usize = 200_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_owned());
    let Some(workload) = workloads::by_name(&name) else {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    };
    println!("workload {workload}: {}\n", workload.description());

    println!(
        "{:<14} {:>7} {:>10} {:>12} {:>12}",
        "geometry", "miss%", "conflict%", "conf-acc%", "cap-acc%"
    );
    for kb in [4u64, 8, 16, 32, 64, 128] {
        for ways in [1u32, 2, 4] {
            let Ok(geom) = CacheGeometry::new(kb * 1024, ways, 64) else {
                continue;
            };
            let mut eval = AccuracyEvaluator::new(geom, TagBits::Full);
            let mut src = workload.source(1);
            for _ in 0..EVENTS {
                eval.observe(src.next_event().access.addr.line(64));
            }
            let r = eval.report();
            let (conflict, capacity) = eval.cache().class_counts();
            let conflict_share = if r.misses == 0 {
                0.0
            } else {
                100.0 * conflict as f64 / (conflict + capacity) as f64
            };
            println!(
                "{:<14} {:>6.1}% {:>9.1}% {:>11.1}% {:>11.1}%",
                format!("{kb}KB {ways}-way"),
                100.0 * r.misses as f64 / r.accesses as f64,
                conflict_share,
                r.conflict.percent(),
                r.capacity.percent(),
            );
        }
    }

    // Latency observability: where do this workload's misses go?
    let mut sys = BaselineSystem::new(
        CacheGeometry::new(16 * 1024, 1, 64)?,
        Plumbing::paper_default()?,
    );
    let cpu = OooModel::new(CpuConfig::paper_default());
    let mut src = workload.source(1);
    let trace = std::iter::from_fn(move || Some(src.next_event())).take(EVENTS);
    let report = cpu.run(&mut sys, trace);
    let lat = sys.plumbing().demand_latency();
    println!(
        "\nbaseline on 16KB DM: IPC {:.3}, {} demand misses",
        report.ipc(),
        lat.count()
    );
    println!(
        "demand-miss latency: mean {:.1}, p50 {:.0}, p90 {:.0}, p99 {:.0}, max {} cycles",
        lat.mean(),
        lat.percentile(0.5),
        lat.percentile(0.9),
        lat.percentile(0.99),
        lat.max()
    );
    println!(
        "L2 hit rate behind those misses: {:.1}%",
        100.0 * sys.plumbing().l2().l2_stats().hit_rate()
    );
    Ok(())
}
