//! Multithreaded co-scheduling guided by miss classification
//! (paper §5.6): when two threads share a cache, conflict misses come
//! from cross-thread competition that software cannot see — but the
//! MCT can. Jobs that produce an inordinate number of conflict misses
//! when scheduled together are bad co-schedule candidates.
//!
//! This example interleaves every pair of workloads through one shared
//! L1, measures each pairing's conflict-miss rate, and ranks the
//! pairings.
//!
//! Run with: `cargo run --release --example coschedule`

use conflict_miss_repro::cache_model::CacheGeometry;
use conflict_miss_repro::mct::{ClassifyingCache, TagBits};
use conflict_miss_repro::workloads;

const EVENTS: usize = 120_000;
/// Interleave granularity in accesses (a coarse "time slice").
const SLICE: usize = 64;

/// Runs two workloads through one shared cache; returns
/// (conflict misses, total misses) per access.
fn coschedule(a: &workloads::Workload, b: &workloads::Workload) -> (f64, f64) {
    let geom = CacheGeometry::new(16 * 1024, 1, 64).expect("paper geometry");
    let mut cache = ClassifyingCache::new(geom, TagBits::Full);
    let mut src_a = a.source(1);
    // Offset the second thread's address space, as separate processes
    // would be.
    let mut src_b = b.source(2);
    let mut produced = 0usize;
    while produced < EVENTS {
        for _ in 0..SLICE {
            let line = src_a.next_event().access.addr.line(64);
            cache.access(line);
        }
        for _ in 0..SLICE {
            let addr = src_b.next_event().access.addr.raw() ^ (1 << 43);
            cache.access(conflict_miss_repro::sim_core::Addr::new(addr).line(64));
        }
        produced += 2 * SLICE;
    }
    let (conflict, capacity) = cache.class_counts();
    let accesses = cache.stats().accesses() as f64;
    (
        (conflict as f64) / accesses,
        (conflict + capacity) as f64 / accesses,
    )
}

fn main() {
    let picks = ["tomcatv", "swim", "turb3d", "gcc", "li", "fpppp"];
    let jobs: Vec<_> = picks
        .iter()
        .map(|n| workloads::by_name(n).expect("known"))
        .collect();

    println!("conflict-miss rate (%) when co-scheduled on one 16KB DM L1:\n");
    print!("{:10}", "");
    for b in &jobs {
        print!(" {:>8}", b.name());
    }
    println!();
    let mut pairings = Vec::new();
    for a in &jobs {
        print!("{:10}", a.name());
        for b in &jobs {
            let (conflict_rate, miss_rate) = coschedule(a, b);
            print!(" {:>8.2}", conflict_rate * 100.0);
            if a.name() < b.name() {
                pairings.push((a.name(), b.name(), conflict_rate, miss_rate));
            }
        }
        println!();
    }

    pairings.sort_by(|x, y| x.2.total_cmp(&y.2));
    println!("\nbest co-schedule candidates (fewest cross-thread conflicts):");
    for (a, b, conflict, miss) in pairings.iter().take(3) {
        println!(
            "  {a} + {b}: {:.2}% conflict ({:.2}% total miss)",
            conflict * 100.0,
            miss * 100.0
        );
    }
    println!("\nworst (the scheduler should separate these):");
    for (a, b, conflict, miss) in pairings.iter().rev().take(3) {
        println!(
            "  {a} + {b}: {:.2}% conflict ({:.2}% total miss)",
            conflict * 100.0,
            miss * 100.0
        );
    }
}
