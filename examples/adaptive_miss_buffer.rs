//! Explore the Adaptive Miss Buffer: run every policy combination on
//! a workload and watch each miss class being served by its own
//! optimization — the §5.5 story, per benchmark.
//!
//! Run with: `cargo run --release --example adaptive_miss_buffer -- tomcatv`

use conflict_miss_repro::amb::{AmbConfig, AmbPolicy, AmbSystem};
use conflict_miss_repro::cpu_model::{BaselineSystem, CpuConfig, OooModel};
use conflict_miss_repro::workloads;

const EVENTS: usize = 300_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tomcatv".to_owned());
    let Some(workload) = workloads::by_name(&name) else {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    };
    let cpu = OooModel::new(CpuConfig::paper_default());
    let trace = || {
        let mut src = workload.source(1);
        std::iter::from_fn(move || Some(src.next_event())).take(EVENTS)
    };

    let mut baseline = BaselineSystem::paper_default()?;
    let base = cpu.run(&mut baseline, trace());
    println!(
        "workload {name}: baseline IPC {:.3}, D$ miss rate {:.1}%\n",
        base.ipc(),
        100.0 * baseline.l1_stats().miss_rate()
    );

    for entries in [8usize, 16] {
        println!("--- {entries}-entry buffer ---");
        println!(
            "{:<10} {:>8} {:>7} {:>8} {:>9} {:>10} {:>8}",
            "policy", "speedup", "D$ %", "victim%", "prefetch%", "exclusion%", "miss%"
        );
        for policy in AmbPolicy::ALL {
            let cfg = if entries == 8 {
                AmbConfig::new(policy)
            } else {
                AmbConfig::large(policy)
            };
            let mut sys = AmbSystem::paper_default(cfg)?;
            let report = cpu.run(&mut sys, trace());
            let s = sys.stats();
            println!(
                "{:<10} {:>8.3} {:>7.1} {:>8.2} {:>9.2} {:>10.2} {:>8.1}",
                policy.to_string(),
                report.speedup_over(&base),
                100.0 * s.d_hit_rate(),
                100.0 * s.victim_hit_rate(),
                100.0 * s.prefetch_hit_rate(),
                100.0 * s.exclusion_hit_rate(),
                100.0 * s.effective_miss_rate(),
            );
        }
        println!();
    }
    println!("paper §5.5: the combined policies cover both miss classes at once,");
    println!("cutting the effective miss rate ~1.4x below the best single policy.");
    Ok(())
}
