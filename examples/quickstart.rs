//! Quickstart: classify the misses of a tiny synthetic program.
//!
//! Builds the paper's 16 KB direct-mapped L1 with an attached Miss
//! Classification Table, runs a stream that mixes a conflict ping-pong
//! with a large sweep, and prints what the MCT saw — next to the
//! classic three-C oracle's ground truth.
//!
//! Run with: `cargo run --example quickstart`

use conflict_miss_repro::cache_model::oracle::ThreeCClassifier;
use conflict_miss_repro::cache_model::CacheGeometry;
use conflict_miss_repro::mct::{ClassifyingCache, TagBits};
use conflict_miss_repro::sim_core::Addr;
use conflict_miss_repro::trace_gen::pattern::{SequentialSweep, SetConflict};
use conflict_miss_repro::trace_gen::TraceSource;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's L1: 16 KB, direct-mapped, 64-byte lines.
    let geom = CacheGeometry::new(16 * 1024, 1, 64)?;
    let mut cache = ClassifyingCache::new(geom, TagBits::Full);
    let mut oracle = ThreeCClassifier::new(geom.num_lines());

    // Two access patterns: lines 0x0000 and 0x4000 fight over one set
    // (conflict misses); a 256 KB sweep streams through everything
    // (capacity misses).
    let mut ping_pong = SetConflict::new(Addr::new(0), 2, 16 * 1024, 2);
    let mut sweep = SequentialSweep::new(Addr::new(0x1000_0000), 256 * 1024, 8);

    let mut agree = 0u64;
    let mut misses = 0u64;
    for i in 0..200_000 {
        let event = if i % 3 == 0 {
            ping_pong.next_event()
        } else {
            sweep.next_event()
        };
        let line = event.access.addr.line(64);
        let truth = oracle.observe(line);
        if let Some(miss) = cache.access(line).miss() {
            misses += 1;
            if miss.class.is_conflict() == truth.is_conflict() {
                agree += 1;
            }
        }
    }

    let (conflict, capacity) = cache.class_counts();
    println!("accesses      : 200000");
    println!("misses        : {misses} ({:.1}%)", misses as f64 / 2000.0);
    println!("  conflict    : {conflict}");
    println!("  capacity    : {capacity}");
    println!(
        "oracle agrees : {:.1}% of misses",
        100.0 * agree as f64 / misses as f64
    );
    println!(
        "MCT storage   : {} bits ({} sets x (tag+valid))",
        cache.table().storage_bits(geom.full_tag_bits(44)),
        geom.num_sets()
    );

    // The ping-pong means a healthy fraction of misses are conflicts,
    // and the MCT should agree with the oracle on the vast majority.
    assert!(conflict > 0 && capacity > 0);
    assert!(agree as f64 / misses as f64 > 0.85);
    Ok(())
}
