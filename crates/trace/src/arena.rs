//! The shared trace arena: each workload's event stream is
//! materialized **exactly once** per `(workload, seed, events)` key
//! and replayed as a shared slice thereafter.
//!
//! The experiment drivers evaluate many (policy × workload) cells, and
//! every cell historically re-synthesized the identical reference
//! stream from scratch — for `repro all` that is hundreds of redundant
//! 300k-event generator runs, the dominant avoidable cost of the
//! end-to-end pipeline. The arena replaces regeneration with replay:
//! the first request for a key runs the generator into an
//! `Arc<[TraceEvent]>`; every later request clones the `Arc` (a
//! refcount bump) and iterates the slice.
//!
//! Concurrency: the map is a mutex-guarded index of per-key
//! [`OnceLock`] cells. The mutex is held only to look up or insert a
//! cell — never while generating — so distinct keys materialize
//! concurrently, while two racing requests for the *same* key
//! serialize on that key's `OnceLock` and observe the same slice.
//! Replay order is the generator's order, so arena-fed experiments are
//! bit-identical to streaming ones.
//!
//! # Examples
//!
//! ```
//! use trace_gen::arena::{ArenaKey, TraceArena};
//! use trace_gen::pattern::SequentialSweep;
//! use sim_core::Addr;
//!
//! let arena = TraceArena::new();
//! let key = ArenaKey::new("sweep", 1, 100);
//! let make = || SequentialSweep::new(Addr::new(0), 4096, 8);
//! let first = arena.get_or_materialize(key.clone(), make);
//! let again = arena.get_or_materialize(key, make);
//! assert!(std::sync::Arc::ptr_eq(&first, &again)); // one materialization
//! assert_eq!(first.len(), 100);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use sim_core::hash::FxHashMap;

use crate::{TraceEvent, TraceSource};

/// Identity of one materialized trace: which generator recipe, which
/// seed, how many events.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArenaKey {
    /// The workload (or other generator) name.
    pub workload: String,
    /// The generator seed.
    pub seed: u64,
    /// Number of events materialized.
    pub events: usize,
}

impl ArenaKey {
    /// Creates a key.
    #[must_use]
    pub fn new(workload: impl Into<String>, seed: u64, events: usize) -> Self {
        ArenaKey {
            workload: workload.into(),
            seed,
            events,
        }
    }
}

/// One map slot: cloned out under the map lock, initialized outside
/// it so distinct keys can materialize concurrently.
type TraceCell = Arc<OnceLock<Arc<[TraceEvent]>>>;

/// A memoizing store of materialized traces. See the module docs.
#[derive(Debug, Default)]
pub struct TraceArena {
    map: Mutex<FxHashMap<ArenaKey, TraceCell>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Counters describing how much work the arena has absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Requests served by replaying an existing slice.
    pub hits: u64,
    /// Requests that materialized a new trace.
    pub misses: u64,
    /// Distinct traces resident.
    pub traces: usize,
    /// Total events resident across all traces.
    pub resident_events: u64,
}

impl TraceArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        TraceArena::default()
    }

    /// The process-wide arena shared by all experiment drivers.
    #[must_use]
    pub fn global() -> &'static TraceArena {
        static GLOBAL: OnceLock<TraceArena> = OnceLock::new();
        GLOBAL.get_or_init(TraceArena::new)
    }

    /// Returns the trace for `key`, materializing it on first request
    /// by running `source` for `key.events` events. Subsequent
    /// requests for an equal key return the same allocation (the
    /// returned `Arc`s are pointer-equal), including requests racing
    /// with the first: they block until materialization completes.
    pub fn get_or_materialize<S>(
        &self,
        key: ArenaKey,
        source: impl FnOnce() -> S,
    ) -> Arc<[TraceEvent]>
    where
        S: TraceSource,
    {
        let events = key.events;
        // Span label, computed only when tracing is armed (the scope
        // is attributed to the arena, not the racing requester, so the
        // recorded scope set is identical at any thread count).
        let span_label = sim_core::span::active()
            .then(|| format!("{}/{}/{}", key.workload, key.seed, key.events));
        let cell = {
            // Poison recovery: the map's entries are only ever inserted
            // whole, so a panic on another thread cannot leave a slot
            // half-written — continuing with the inner map is sound.
            let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(map.entry(key).or_default())
        };
        let mut materialized = false;
        let trace = cell.get_or_init(|| {
            sim_core::span::scope(
                sim_core::span::ScopeKind::Subsystem,
                "arena_materialize",
                "arena",
                || span_label.clone().unwrap_or_default(),
                || {
                    // Injection site: a transient fault retries inside the
                    // gate and falls through to generate; a persistent one
                    // unwinds (the `OnceLock` stays uninitialized, so a
                    // retried cell re-attempts materialization from scratch).
                    if let Err(fault) =
                        sim_core::fault::gate(sim_core::fault::FaultSite::ArenaMaterialize)
                    {
                        std::panic::panic_any(fault);
                    }
                    materialized = true;
                    let mut src = source();
                    let trace: Vec<TraceEvent> = (0..events).map(|_| src.next_event()).collect();
                    sim_core::span::add_events(trace.len() as u64);
                    Arc::from(trace)
                },
            )
        });
        if materialized {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(trace)
    }

    /// Hit/miss/residency counters (for telemetry and tests).
    #[must_use]
    pub fn stats(&self) -> ArenaStats {
        let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        let mut traces = 0usize;
        let mut resident_events = 0u64;
        for cell in map.values() {
            if let Some(t) = cell.get() {
                traces += 1;
                resident_events += t.len() as u64;
            }
        }
        ArenaStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            traces,
            resident_events,
        }
    }

    /// Drops every resident trace (outstanding `Arc`s stay valid) and
    /// resets the counters.
    pub fn clear(&self) {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::SequentialSweep;
    use sim_core::Addr;

    fn sweep() -> SequentialSweep {
        SequentialSweep::new(Addr::new(0x1000), 64 * 1024, 8)
    }

    #[test]
    fn repeated_key_is_pointer_equal() {
        let arena = TraceArena::new();
        let a = arena.get_or_materialize(ArenaKey::new("s", 1, 500), sweep);
        let b = arena.get_or_materialize(ArenaKey::new("s", 1, 500), sweep);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = arena.stats();
        assert_eq!((stats.hits, stats.misses, stats.traces), (1, 1, 1));
        assert_eq!(stats.resident_events, 500);
    }

    #[test]
    fn distinct_keys_materialize_separately() {
        let arena = TraceArena::new();
        let a = arena.get_or_materialize(ArenaKey::new("s", 1, 100), sweep);
        let b = arena.get_or_materialize(ArenaKey::new("s", 2, 100), sweep);
        let c = arena.get_or_materialize(ArenaKey::new("s", 1, 200), sweep);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 100);
        assert_eq!(c.len(), 200);
        assert_eq!(arena.stats().misses, 3);
    }

    #[test]
    fn replay_matches_streaming() {
        let arena = TraceArena::new();
        let replayed = arena.get_or_materialize(ArenaKey::new("s", 7, 300), sweep);
        let mut streamed = sweep();
        for (i, event) in replayed.iter().enumerate() {
            assert_eq!(*event, streamed.next_event(), "event {i}");
        }
    }

    #[test]
    fn concurrent_same_key_materializes_once() {
        let arena = TraceArena::new();
        let slices: Vec<Arc<[TraceEvent]>> =
            sim_core::parallel::par_map_threads(8, (0..16).collect::<Vec<u32>>(), |_| {
                arena.get_or_materialize(ArenaKey::new("shared", 3, 400), sweep)
            });
        for s in &slices[1..] {
            assert!(Arc::ptr_eq(&slices[0], s));
        }
        assert_eq!(arena.stats().misses, 1);
        assert_eq!(arena.stats().hits, 15);
    }

    #[test]
    fn clear_resets() {
        let arena = TraceArena::new();
        let kept = arena.get_or_materialize(ArenaKey::new("s", 1, 50), sweep);
        arena.clear();
        let stats = arena.stats();
        assert_eq!((stats.traces, stats.hits, stats.misses), (0, 0, 0));
        assert_eq!(kept.len(), 50); // outstanding Arc survives clear
        let again = arena.get_or_materialize(ArenaKey::new("s", 1, 50), sweep);
        assert!(!Arc::ptr_eq(&kept, &again));
    }
}
