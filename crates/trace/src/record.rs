//! Recorded traces and a compact binary codec.
//!
//! Generators are cheap enough to re-run, but recording supports
//! (a) regression-testing against a frozen reference stream and
//! (b) exchanging traces with other tools. The format is a simple
//! little-endian framing with a magic header — no external codec
//! dependency.

use std::fmt;
use std::io::{self, Read, Write};

use sim_core::Addr;

use crate::{AccessKind, MemoryAccess, TraceEvent};

const MAGIC: &[u8; 8] = b"CMTRACE1";

/// An error reading a recorded trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum CodecError {
    /// The stream did not start with the trace magic.
    BadMagic,
    /// An access kind byte was neither load nor store.
    BadKind(u8),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => f.write_str("not a recorded trace (bad magic)"),
            CodecError::BadKind(b) => write!(f, "invalid access kind byte {b:#x}"),
            CodecError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// A finite, recorded reference stream.
///
/// # Examples
///
/// ```
/// use trace_gen::{Trace, TraceSource};
/// use trace_gen::pattern::SequentialSweep;
/// use sim_core::Addr;
///
/// let trace: Trace = SequentialSweep::new(Addr::new(0), 1024, 8)
///     .take_events(100)
///     .collect();
/// let mut bytes = Vec::new();
/// trace.write_to(&mut bytes)?;
/// let back = Trace::read_from(&mut bytes.as_slice())?;
/// assert_eq!(trace, back);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Iterates over the events.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter()
    }

    /// Total instructions the trace represents (accesses + work).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.events.iter().map(TraceEvent::instructions).sum()
    }

    /// Number of distinct cache lines touched, for a given line size.
    #[must_use]
    pub fn footprint_lines(&self, line_size: u64) -> usize {
        let mut lines: Vec<u64> = self
            .events
            .iter()
            .map(|e| e.access.addr.line(line_size).raw())
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }

    /// Serializes the trace. A mut reference to any `Write` works
    /// (e.g. `&mut file`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), CodecError> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.events.len() as u64).to_le_bytes())?;
        for e in &self.events {
            w.write_all(&e.access.addr.raw().to_le_bytes())?;
            w.write_all(&e.access.pc.raw().to_le_bytes())?;
            w.write_all(&e.work.to_le_bytes())?;
            let kind = match e.access.kind {
                AccessKind::Load => 0u8,
                AccessKind::Store => 1u8,
            };
            w.write_all(&[kind])?;
        }
        Ok(())
    }

    /// Deserializes a trace written by [`Self::write_to`]. A mut
    /// reference to any `Read` works.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadMagic`] or [`CodecError::BadKind`] on
    /// malformed input, and propagates I/O errors.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, CodecError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let mut len8 = [0u8; 8];
        r.read_exact(&mut len8)?;
        let len = u64::from_le_bytes(len8) as usize;
        let mut events = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            let mut buf = [0u8; 21];
            r.read_exact(&mut buf)?;
            let addr = u64::from_le_bytes(buf[0..8].try_into().expect("slice of 8"));
            let pc = u64::from_le_bytes(buf[8..16].try_into().expect("slice of 8"));
            let work = u32::from_le_bytes(buf[16..20].try_into().expect("slice of 4"));
            let kind = match buf[20] {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                b => return Err(CodecError::BadKind(b)),
            };
            events.push(TraceEvent::new(
                MemoryAccess {
                    addr: Addr::new(addr),
                    kind,
                    pc: Addr::new(pc),
                },
                work,
            ));
        }
        Ok(Trace { events })
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = TraceEvent;
    type IntoIter = std::vec::IntoIter<TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{SequentialSweep, ZipfAccess};
    use crate::TraceSource;

    fn sample(n: usize) -> Trace {
        ZipfAccess::new(Addr::new(0x1000), 64, 64, 0.8, 3)
            .with_store_period(3)
            .with_work(5)
            .take_events(n)
            .collect()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample(500);
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        let back = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new();
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        assert_eq!(Trace::read_from(bytes.as_slice()).unwrap(), t);
    }

    #[test]
    fn bad_magic_detected() {
        let err = Trace::read_from(&b"NOTATRACE"[..]).unwrap_err();
        assert!(matches!(err, CodecError::BadMagic));
    }

    #[test]
    fn bad_kind_detected() {
        let t = sample(1);
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        let last = bytes.len() - 1;
        bytes[last] = 9;
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::BadKind(9)));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let t = sample(10);
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));
    }

    #[test]
    fn instructions_and_footprint() {
        let t: Trace = SequentialSweep::new(Addr::new(0), 4 * 64, 64)
            .with_work(2)
            .take_events(8)
            .collect();
        assert_eq!(t.instructions(), 8 * 3);
        assert_eq!(t.footprint_lines(64), 4);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = sample(5);
        t.extend(sample(5));
        assert_eq!(t.len(), 10);
        let total: usize = (&t).into_iter().count();
        assert_eq!(total, 10);
    }
}
