//! Trace event types.

use core::fmt;

use sim_core::Addr;

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessKind {
    /// A load (the processor waits for the data).
    Load,
    /// A store (retired through a write buffer; does not block).
    Store,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => f.write_str("load"),
            AccessKind::Store => f.write_str("store"),
        }
    }
}

/// One memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryAccess {
    /// The byte address referenced.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// The program counter of the referencing instruction. Synthetic
    /// workloads assign stable per-pattern PCs so PC-indexed
    /// structures behave sensibly.
    pub pc: Addr,
}

impl MemoryAccess {
    /// Convenience constructor for a load.
    #[must_use]
    pub const fn load(addr: Addr, pc: Addr) -> Self {
        MemoryAccess {
            addr,
            kind: AccessKind::Load,
            pc,
        }
    }

    /// Convenience constructor for a store.
    #[must_use]
    pub const fn store(addr: Addr, pc: Addr) -> Self {
        MemoryAccess {
            addr,
            kind: AccessKind::Store,
            pc,
        }
    }
}

/// One trace event: a memory access plus the number of non-memory
/// instructions dispatched before it.
///
/// `work` lets the timing model interleave computation with memory
/// traffic — a pointer-chasing workload with `work = 2` is far more
/// latency-bound than a dense numeric loop with `work = 6`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceEvent {
    /// The memory access.
    pub access: MemoryAccess,
    /// Non-memory instructions preceding the access.
    pub work: u32,
}

impl TraceEvent {
    /// Creates an event.
    #[must_use]
    pub const fn new(access: MemoryAccess, work: u32) -> Self {
        TraceEvent { access, work }
    }

    /// Total instructions this event represents (the access itself
    /// plus preceding work).
    #[must_use]
    pub const fn instructions(&self) -> u64 {
        self.work as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let pc = Addr::new(0x400000);
        assert_eq!(MemoryAccess::load(Addr::new(8), pc).kind, AccessKind::Load);
        assert_eq!(
            MemoryAccess::store(Addr::new(8), pc).kind,
            AccessKind::Store
        );
    }

    #[test]
    fn instructions_counts_access_itself() {
        let e = TraceEvent::new(MemoryAccess::load(Addr::new(0), Addr::new(0)), 5);
        assert_eq!(e.instructions(), 6);
    }

    #[test]
    fn kind_display() {
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(AccessKind::Store.to_string(), "store");
    }
}
