//! Memory reference traces.
//!
//! The paper drives its simulator with SPEC95 reference streams; this
//! workspace substitutes deterministic synthetic streams built from
//! the composable generators in [`pattern`]. A trace is an iterator of
//! [`TraceEvent`]s: a memory access plus the number of non-memory
//! instructions the processor executes before it (so the timing model
//! can charge pipeline work between accesses).
//!
//! Streams that are replayed many times (every experiment driver
//! evaluates many policies over the same workload trace) should go
//! through the memoizing [`arena`] instead of re-running a generator
//! per consumer. Consumers that replay one trace through many cache
//! models sharing an indexing scheme can go further and stream
//! precomputed `(set, tag)` pairs from [`decomposed`].
//!
//! # Examples
//!
//! Build a stream that sweeps a 64 KB array, and look at its first
//! access:
//!
//! ```
//! use trace_gen::pattern::SequentialSweep;
//! use trace_gen::TraceSource;
//! use sim_core::Addr;
//!
//! let mut sweep = SequentialSweep::new(Addr::new(0x10000), 64 * 1024, 8).with_work(3);
//! let first = sweep.next_event();
//! assert_eq!(first.access.addr, Addr::new(0x10000));
//! assert_eq!(first.work, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod decomposed;
mod event;
pub mod pattern;
mod record;

pub use event::{AccessKind, MemoryAccess, TraceEvent};
pub use record::{CodecError, Trace};

/// An unbounded source of trace events.
///
/// All generators in [`pattern`] implement this; finite traces are
/// made with [`TraceSource::take_events`] or by collecting into a
/// [`Trace`].
pub trait TraceSource {
    /// Produces the next event. Sources are infinite: this never
    /// exhausts.
    fn next_event(&mut self) -> TraceEvent;

    /// Adapts the source into an iterator of `n` events.
    fn take_events(self, n: usize) -> TakeEvents<Self>
    where
        Self: Sized,
    {
        TakeEvents {
            source: self,
            remaining: n,
        }
    }
}

/// Iterator over the first `n` events of a [`TraceSource`], created by
/// [`TraceSource::take_events`].
#[derive(Debug, Clone)]
pub struct TakeEvents<S> {
    source: S,
    remaining: usize,
}

impl<S: TraceSource> Iterator for TakeEvents<S> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.source.next_event())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<S: TraceSource> ExactSizeIterator for TakeEvents<S> {}

/// Boxed trace sources are themselves trace sources, so generators can
/// be composed heterogeneously (e.g. in [`pattern::Interleave`]).
impl TraceSource for Box<dyn TraceSource> {
    fn next_event(&mut self) -> TraceEvent {
        (**self).next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::SequentialSweep;
    use sim_core::Addr;

    #[test]
    fn take_events_yields_exactly_n() {
        let sweep = SequentialSweep::new(Addr::new(0), 1024, 8);
        let events: Vec<_> = sweep.take_events(10).collect();
        assert_eq!(events.len(), 10);
    }

    #[test]
    fn take_events_reports_size_hint() {
        let sweep = SequentialSweep::new(Addr::new(0), 1024, 8);
        let it = sweep.take_events(5);
        assert_eq!(it.len(), 5);
    }

    #[test]
    fn boxed_source_still_generates() {
        let mut boxed: Box<dyn TraceSource> =
            Box::new(SequentialSweep::new(Addr::new(0x100), 512, 4));
        assert_eq!(boxed.next_event().access.addr, Addr::new(0x100));
    }
}
