//! Geometry-decomposed traces: each event's `(set, tag)` pair
//! precomputed once per `(trace, geometry)` key.
//!
//! The accuracy experiments replay one workload trace through many
//! cache models that share an indexing scheme (Figure 2 sweeps eleven
//! tag widths over the *same* 16 KB direct-mapped cache; the
//! shadow-depth ablation sweeps four depths per configuration). Every
//! replay historically re-derived each event's line address, set index
//! and tag from the raw byte address — three shifts and a mask per
//! access per cell. A [`DecomposedTrace`] hoists that work out of the
//! cell loop: the split into parallel `sets` / `tags` arrays happens
//! once per `(trace, line size, set bits)` key in the
//! [`DecomposedArena`], and cells stream the precomputed pairs
//! straight into the kernel's `probe_at` / `fill_at` entry points.
//!
//! Decomposition is lossless for everything the consumers need: the
//! line address is recoverable as `(tag << set_bits) | set` (the cache
//! crate's `line_from_parts`), so oracle models that key on whole
//! lines keep working during decomposed replay.
//!
//! # Examples
//!
//! ```
//! use trace_gen::arena::{ArenaKey, TraceArena};
//! use trace_gen::decomposed::DecomposedArena;
//! use trace_gen::pattern::SequentialSweep;
//! use sim_core::Addr;
//!
//! let traces = TraceArena::new();
//! let arena = DecomposedArena::new();
//! let key = ArenaKey::new("sweep", 1, 64);
//! let trace = traces.get_or_materialize(key.clone(), || {
//!     SequentialSweep::new(Addr::new(0), 4096, 8)
//! });
//! // 64-byte lines, 16 sets.
//! let d = arena.get_or_decompose(key.clone(), 64, 4, || trace.clone());
//! assert_eq!(d.len(), 64);
//! let again = arena.get_or_decompose(key, 64, 4, || unreachable!());
//! assert!(std::sync::Arc::ptr_eq(&d, &again)); // one decomposition
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use sim_core::hash::FxHashMap;

use crate::arena::ArenaKey;
use crate::TraceEvent;

/// How many `(set, tag)` pairs a chunked replay loop pulls per
/// iteration of [`DecomposedTrace::for_each`]. One chunk of both
/// arrays (48 KB) sits comfortably in L1/L2 while the consuming cache
/// model's own arrays stay resident.
const REPLAY_CHUNK: usize = 4096;

/// One trace split against one indexing scheme: event `i` touches set
/// `sets[i]` with tag `tags[i]`.
///
/// The two arrays are parallel and equally long. Set indices are
/// stored as `u32` (no supported geometry has more than 2³² sets),
/// which keeps the decomposed form at 12 bytes per event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecomposedTrace {
    sets: Box<[u32]>,
    tags: Box<[u64]>,
    set_bits: u32,
}

impl DecomposedTrace {
    /// Splits `events` into `(set, tag)` pairs for a cache with
    /// `line_size`-byte lines and `set_bits` index bits.
    #[must_use]
    pub fn decompose(events: &[TraceEvent], line_size: u64, set_bits: u32) -> Self {
        let mask = (1u64 << set_bits) - 1;
        let mut sets = Vec::with_capacity(events.len());
        let mut tags = Vec::with_capacity(events.len());
        for event in events {
            let line = event.access.addr.line(line_size).raw();
            sets.push((line & mask) as u32);
            tags.push(line >> set_bits);
        }
        DecomposedTrace {
            sets: sets.into_boxed_slice(),
            tags: tags.into_boxed_slice(),
            set_bits,
        }
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` if the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The index bits this trace was decomposed against.
    #[must_use]
    pub const fn set_bits(&self) -> u32 {
        self.set_bits
    }

    /// The per-event set indices.
    #[must_use]
    pub fn sets(&self) -> &[u32] {
        &self.sets
    }

    /// The per-event tags.
    #[must_use]
    pub fn tags(&self) -> &[u64] {
        &self.tags
    }

    /// The line address of event `i` (the inverse of decomposition).
    #[must_use]
    pub fn line(&self, i: usize) -> sim_core::LineAddr {
        sim_core::LineAddr::new((self.tags[i] << self.set_bits) | u64::from(self.sets[i]))
    }

    /// Streams every `(set, tag)` pair through `f` in trace order,
    /// walking both arrays in cache-friendly chunks of
    /// [`REPLAY_CHUNK`] pairs. This is the kernel replay loop the
    /// figure drivers use.
    pub fn for_each(&self, mut f: impl FnMut(usize, u64)) {
        for (sets, tags) in self
            .sets
            .chunks(REPLAY_CHUNK)
            .zip(self.tags.chunks(REPLAY_CHUNK))
        {
            for (&set, &tag) in sets.iter().zip(tags) {
                f(set as usize, tag);
            }
        }
    }

    /// Streams the parallel `sets`/`tags` arrays through `f` in
    /// fixed-size blocks of `block` pairs (the final block may be
    /// shorter). This is the batched counterpart of
    /// [`Self::for_each`], feeding the kernel's `access_block` entry
    /// points; a `block` of zero is treated as one whole-trace block.
    pub fn for_each_block(&self, block: usize, mut f: impl FnMut(&[u32], &[u64])) {
        if self.sets.is_empty() {
            return;
        }
        let block = if block == 0 { self.sets.len() } else { block };
        for (sets, tags) in self.sets.chunks(block).zip(self.tags.chunks(block)) {
            f(sets, tags);
        }
    }

    /// Iterates `(set, tag)` pairs in trace order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.sets.iter().copied().zip(self.tags.iter().copied())
    }
}

/// Identity of one decomposition: which trace, against which indexing
/// scheme.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecomposedKey {
    /// The underlying trace's arena identity.
    pub trace: ArenaKey,
    /// Line size in bytes.
    pub line_size: u64,
    /// Number of set-index bits.
    pub set_bits: u32,
}

/// One map slot: cloned out under the map lock, initialized outside it
/// so distinct keys can decompose concurrently.
type DecomposedCell = Arc<OnceLock<Arc<DecomposedTrace>>>;

/// A memoizing store of decomposed traces, mirroring
/// [`crate::arena::TraceArena`]: the map mutex is held only to look up
/// or insert a per-key [`OnceLock`], never while decomposing, so
/// distinct keys split concurrently while racing requests for the same
/// key serialize and share one allocation.
#[derive(Debug, Default)]
pub struct DecomposedArena {
    map: Mutex<FxHashMap<DecomposedKey, DecomposedCell>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DecomposedArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        DecomposedArena::default()
    }

    /// The process-wide arena shared by all experiment drivers.
    #[must_use]
    pub fn global() -> &'static DecomposedArena {
        static GLOBAL: OnceLock<DecomposedArena> = OnceLock::new();
        GLOBAL.get_or_init(DecomposedArena::new)
    }

    /// Returns the decomposition of the trace identified by `key` for
    /// a cache with `line_size`-byte lines and `set_bits` index bits,
    /// computing it on first request from the events `trace` yields
    /// (typically a [`crate::arena::TraceArena`] lookup). Subsequent
    /// requests for an equal key return the same allocation.
    pub fn get_or_decompose(
        &self,
        key: ArenaKey,
        line_size: u64,
        set_bits: u32,
        trace: impl FnOnce() -> Arc<[TraceEvent]>,
    ) -> Arc<DecomposedTrace> {
        // Span label, computed only when tracing is armed (the scope
        // belongs to the arena subsystem, so the recorded scope set is
        // identical at any thread count).
        let span_label = sim_core::span::active().then(|| {
            format!(
                "{}/{}/{}/ls{line_size}/sb{set_bits}",
                key.workload, key.seed, key.events
            )
        });
        let cell = {
            let key = DecomposedKey {
                trace: key,
                line_size,
                set_bits,
            };
            // Poison recovery: entries are inserted whole, so another
            // thread's panic cannot leave a half-written slot —
            // continuing with the inner map is sound (and keeps this
            // replay path free of panicking calls).
            let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(map.entry(key).or_default())
        };
        let mut decomposed = false;
        let result = cell.get_or_init(|| {
            sim_core::span::scope(
                sim_core::span::ScopeKind::Subsystem,
                "arena_decompose",
                "arena",
                || span_label.clone().unwrap_or_default(),
                || {
                    // Injection site: transient faults retry inside the gate;
                    // a persistent one unwinds via panic_any (no panicking
                    // macro on this replay path), leaving the `OnceLock`
                    // uninitialized so a retried cell re-attempts the split.
                    if let Err(fault) =
                        sim_core::fault::gate(sim_core::fault::FaultSite::ArenaMaterialize)
                    {
                        std::panic::panic_any(fault);
                    }
                    decomposed = true;
                    let d = DecomposedTrace::decompose(&trace(), line_size, set_bits);
                    sim_core::span::add_events(d.len() as u64);
                    Arc::new(d)
                },
            )
        });
        if decomposed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(result)
    }

    /// `(hits, misses)` counters: requests served by replay vs
    /// requests that decomposed.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops every resident decomposition (outstanding `Arc`s stay
    /// valid) and resets the counters.
    pub fn clear(&self) {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::SequentialSweep;
    use crate::TraceSource;
    use sim_core::Addr;

    fn sweep_events(n: usize) -> Arc<[TraceEvent]> {
        let src = SequentialSweep::new(Addr::new(0x4000), 64 * 1024, 8);
        Arc::from(src.take_events(n).collect::<Vec<_>>())
    }

    #[test]
    fn decomposition_round_trips_to_lines() {
        let events = sweep_events(500);
        let d = DecomposedTrace::decompose(&events, 64, 8);
        assert_eq!(d.len(), events.len());
        for (i, event) in events.iter().enumerate() {
            assert_eq!(d.line(i), event.access.addr.line(64), "event {i}");
        }
    }

    #[test]
    fn parts_match_direct_extraction() {
        let events = sweep_events(300);
        let set_bits = 7;
        let d = DecomposedTrace::decompose(&events, 64, set_bits);
        for (i, (set, tag)) in d.iter().enumerate() {
            let line = events[i].access.addr.line(64).raw();
            assert_eq!(u64::from(set), line & ((1 << set_bits) - 1));
            assert_eq!(tag, line >> set_bits);
        }
    }

    #[test]
    fn for_each_visits_every_pair_in_order() {
        // More events than one replay chunk, to cross a boundary.
        let events = sweep_events(REPLAY_CHUNK + 37);
        let d = DecomposedTrace::decompose(&events, 64, 4);
        let mut seen = Vec::new();
        d.for_each(|set, tag| seen.push((set as u32, tag)));
        assert_eq!(seen.len(), d.len());
        assert_eq!(seen, d.iter().collect::<Vec<_>>());
    }

    #[test]
    fn for_each_block_matches_for_each_including_torn_tail() {
        let events = sweep_events(REPLAY_CHUNK + 37);
        let d = DecomposedTrace::decompose(&events, 64, 4);
        let mut whole = Vec::new();
        d.for_each(|set, tag| whole.push((set as u32, tag)));
        for block in [1usize, 7, 64, 1000, d.len(), d.len() + 5, 0] {
            let mut seen = Vec::new();
            d.for_each_block(block, |sets, tags| {
                assert_eq!(sets.len(), tags.len());
                assert!(!sets.is_empty());
                seen.extend(sets.iter().copied().zip(tags.iter().copied()));
            });
            assert_eq!(seen, whole, "block size {block}");
        }
    }

    #[test]
    fn arena_memoizes_per_geometry() {
        let arena = DecomposedArena::new();
        let events = sweep_events(100);
        let key = ArenaKey::new("s", 1, 100);
        let a = arena.get_or_decompose(key.clone(), 64, 4, || events.clone());
        let b = arena.get_or_decompose(key.clone(), 64, 4, || unreachable!("memoized"));
        assert!(Arc::ptr_eq(&a, &b));
        // A different indexing scheme is a different decomposition.
        let c = arena.get_or_decompose(key, 64, 5, || events.clone());
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(arena.stats(), (1, 2));
    }

    #[test]
    fn concurrent_same_key_decomposes_once() {
        let arena = DecomposedArena::new();
        let events = sweep_events(200);
        let results: Vec<Arc<DecomposedTrace>> =
            sim_core::parallel::par_map_threads(8, (0..16).collect::<Vec<u32>>(), |_| {
                arena.get_or_decompose(ArenaKey::new("shared", 3, 200), 64, 6, || events.clone())
            });
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r));
        }
        assert_eq!(arena.stats().1, 1);
    }

    #[test]
    fn clear_resets() {
        let arena = DecomposedArena::new();
        let events = sweep_events(50);
        let kept = arena.get_or_decompose(ArenaKey::new("s", 1, 50), 64, 4, || events.clone());
        arena.clear();
        assert_eq!(arena.stats(), (0, 0));
        assert_eq!(kept.len(), 50); // outstanding Arc survives clear
        let again = arena.get_or_decompose(ArenaKey::new("s", 1, 50), 64, 4, || events);
        assert!(!Arc::ptr_eq(&kept, &again));
    }
}
