//! Geometry-decomposed traces: each event's `(set, tag)` pair
//! precomputed once per `(trace, geometry)` key.
//!
//! The accuracy experiments replay one workload trace through many
//! cache models that share an indexing scheme (Figure 2 sweeps eleven
//! tag widths over the *same* 16 KB direct-mapped cache; the
//! shadow-depth ablation sweeps four depths per configuration). Every
//! replay historically re-derived each event's line address, set index
//! and tag from the raw byte address — three shifts and a mask per
//! access per cell. A [`DecomposedTrace`] hoists that work out of the
//! cell loop: the split into parallel `sets` / `tags` arrays happens
//! once per `(trace, line size, set bits)` key in the
//! [`DecomposedArena`], and cells stream the precomputed pairs
//! straight into the kernel's `probe_at` / `fill_at` entry points.
//!
//! Decomposition is lossless for everything the consumers need: the
//! line address is recoverable as `(tag << set_bits) | set` (the cache
//! crate's `line_from_parts`), so oracle models that key on whole
//! lines keep working during decomposed replay.
//!
//! # Examples
//!
//! ```
//! use trace_gen::arena::{ArenaKey, TraceArena};
//! use trace_gen::decomposed::DecomposedArena;
//! use trace_gen::pattern::SequentialSweep;
//! use sim_core::Addr;
//!
//! let traces = TraceArena::new();
//! let arena = DecomposedArena::new();
//! let key = ArenaKey::new("sweep", 1, 64);
//! let trace = traces.get_or_materialize(key.clone(), || {
//!     SequentialSweep::new(Addr::new(0), 4096, 8)
//! });
//! // 64-byte lines, 16 sets.
//! let d = arena.get_or_decompose(key.clone(), 64, 4, || trace.clone());
//! assert_eq!(d.len(), 64);
//! let again = arena.get_or_decompose(key, 64, 4, || unreachable!());
//! assert!(std::sync::Arc::ptr_eq(&d, &again)); // one decomposition
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use sim_core::hash::FxHashMap;

use crate::arena::ArenaKey;
use crate::TraceEvent;

/// How many `(set, tag)` pairs a chunked replay loop pulls per
/// iteration of [`DecomposedTrace::for_each`]. One chunk of both
/// arrays (48 KB) sits comfortably in L1/L2 while the consuming cache
/// model's own arrays stay resident.
const REPLAY_CHUNK: usize = 4096;

/// One trace split against one indexing scheme: event `i` touches set
/// `sets[i]` with tag `tags[i]`.
///
/// The two arrays are parallel and equally long. Set indices are
/// stored as `u32` (no supported geometry has more than 2³² sets),
/// which keeps the decomposed form at 12 bytes per event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecomposedTrace {
    sets: Box<[u32]>,
    tags: Box<[u64]>,
    set_bits: u32,
}

impl DecomposedTrace {
    /// Splits `events` into `(set, tag)` pairs for a cache with
    /// `line_size`-byte lines and `set_bits` index bits.
    #[must_use]
    pub fn decompose(events: &[TraceEvent], line_size: u64, set_bits: u32) -> Self {
        let mask = (1u64 << set_bits) - 1;
        let mut sets = Vec::with_capacity(events.len());
        let mut tags = Vec::with_capacity(events.len());
        for event in events {
            let line = event.access.addr.line(line_size).raw();
            sets.push((line & mask) as u32);
            tags.push(line >> set_bits);
        }
        DecomposedTrace {
            sets: sets.into_boxed_slice(),
            tags: tags.into_boxed_slice(),
            set_bits,
        }
    }

    /// Builds a decomposed trace directly from parallel `sets`/`tags`
    /// arrays. Benchmarks and tests use this to synthesize address
    /// patterns in split form without round-tripping through
    /// [`TraceEvent`]s.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length or any set index needs
    /// more than `set_bits` bits.
    #[must_use]
    pub fn from_parts(sets: Vec<u32>, tags: Vec<u64>, set_bits: u32) -> Self {
        assert_eq!(sets.len(), tags.len(), "sets/tags must be parallel");
        assert!(
            sets.iter().all(|&s| u64::from(s) < (1u64 << set_bits)),
            "set index out of range for {set_bits} set bits"
        );
        DecomposedTrace {
            sets: sets.into_boxed_slice(),
            tags: tags.into_boxed_slice(),
            set_bits,
        }
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` if the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The index bits this trace was decomposed against.
    #[must_use]
    pub const fn set_bits(&self) -> u32 {
        self.set_bits
    }

    /// The per-event set indices.
    #[must_use]
    pub fn sets(&self) -> &[u32] {
        &self.sets
    }

    /// The per-event tags.
    #[must_use]
    pub fn tags(&self) -> &[u64] {
        &self.tags
    }

    /// The line address of event `i` (the inverse of decomposition).
    #[must_use]
    pub fn line(&self, i: usize) -> sim_core::LineAddr {
        sim_core::LineAddr::new((self.tags[i] << self.set_bits) | u64::from(self.sets[i]))
    }

    /// Streams every `(set, tag)` pair through `f` in trace order,
    /// walking both arrays in cache-friendly chunks of
    /// [`REPLAY_CHUNK`] pairs. This is the kernel replay loop the
    /// figure drivers use.
    pub fn for_each(&self, mut f: impl FnMut(usize, u64)) {
        for (sets, tags) in self
            .sets
            .chunks(REPLAY_CHUNK)
            .zip(self.tags.chunks(REPLAY_CHUNK))
        {
            for (&set, &tag) in sets.iter().zip(tags) {
                f(set as usize, tag);
            }
        }
    }

    /// Streams the parallel `sets`/`tags` arrays through `f` in
    /// fixed-size blocks of `block` pairs (the final block may be
    /// shorter). This is the batched counterpart of
    /// [`Self::for_each`], feeding the kernel's `access_block` entry
    /// points; a `block` of zero is treated as one whole-trace block.
    pub fn for_each_block(&self, block: usize, mut f: impl FnMut(&[u32], &[u64])) {
        if self.sets.is_empty() {
            return;
        }
        let block = if block == 0 { self.sets.len() } else { block };
        for (sets, tags) in self.sets.chunks(block).zip(self.tags.chunks(block)) {
            f(sets, tags);
        }
    }

    /// Iterates `(set, tag)` pairs in trace order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.sets.iter().copied().zip(self.tags.iter().copied())
    }
}

/// Events per chunk of the parallel partitioning pass. Chunk
/// boundaries are fixed by this constant — never by thread count — so
/// the merged result is identical whether one worker or sixteen
/// bucketed the chunks.
const PARTITION_CHUNK: usize = 64 * 1024;

/// Traces shorter than this are partitioned on the calling thread;
/// chunking overhead only pays for itself once there are at least two
/// full chunks to hand out.
const PARALLEL_PARTITION_MIN: usize = 2 * PARTITION_CHUNK;

/// A [`DecomposedTrace`] regrouped by set: one contiguous
/// `(original_index, tag)` run per touched set, plus a directory of
/// touched sets in ascending order.
///
/// The layout is CSR-style: run `k` covers set `dir_sets[k]` and
/// occupies `indices[dir_starts[k]..dir_starts[k+1]]` (and the same
/// range of `tags`). Within a run, events keep trace order — the
/// partition is a *stable* sort by set, so replaying whole runs
/// through a per-set-deterministic kernel reproduces per-event replay
/// exactly (the cache crate's `access_partitioned` relies on this).
/// Original trace indices are stored so consumers can scatter per-run
/// results back into trace order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedTrace {
    /// Touched sets, ascending.
    dir_sets: Box<[u32]>,
    /// CSR offsets: run `k` spans `dir_starts[k]..dir_starts[k + 1]`.
    dir_starts: Box<[u32]>,
    /// Original trace index of each event, grouped by set.
    indices: Box<[u32]>,
    /// Tags, parallel to `indices`.
    tags: Box<[u64]>,
    set_bits: u32,
}

/// One chunk's locally-bucketed events: the same CSR shape as the
/// final [`PartitionedTrace`], covering only that chunk's slice.
struct ChunkBuckets {
    dir_sets: Vec<u32>,
    dir_starts: Vec<u32>,
    indices: Vec<u32>,
    tags: Vec<u64>,
}

/// Stable counting sort of one event slice into per-set buckets.
/// `base` is the slice's offset into the whole trace, so stored
/// indices are global.
fn bucket_chunk(sets: &[u32], tags: &[u64], base: u32, num_sets: usize) -> ChunkBuckets {
    let mut counts = vec![0u32; num_sets];
    for &set in sets {
        counts[set as usize] += 1;
    }
    let mut dir_sets = Vec::new();
    let mut dir_starts = Vec::with_capacity(16);
    dir_starts.push(0u32);
    let mut offset = 0u32;
    for (set, count) in counts.iter_mut().enumerate() {
        if *count > 0 {
            dir_sets.push(set as u32);
            let start = offset;
            offset += *count;
            dir_starts.push(offset);
            // Repurpose the slot as the running write cursor.
            *count = start;
        }
    }
    let mut indices = vec![0u32; sets.len()];
    let mut out_tags = vec![0u64; sets.len()];
    for (i, (&set, &tag)) in sets.iter().zip(tags).enumerate() {
        let pos = counts[set as usize] as usize;
        counts[set as usize] += 1;
        indices[pos] = base + i as u32;
        out_tags[pos] = tag;
    }
    ChunkBuckets {
        dir_sets,
        dir_starts,
        indices,
        tags: out_tags,
    }
}

impl PartitionedTrace {
    /// Partitions a decomposed trace by set with a single stable
    /// counting sort. Traces of at least [`PARALLEL_PARTITION_MIN`]
    /// events are bucketed in fixed [`PARTITION_CHUNK`]-event chunks
    /// on [`sim_core::parallel`] and merged per set in chunk order,
    /// which reconstructs the exact serial stable order — the result
    /// is byte-identical at any thread count.
    #[must_use]
    pub fn partition(trace: &DecomposedTrace) -> Self {
        assert!(
            u32::try_from(trace.len()).is_ok(),
            "partitioned traces index events as u32"
        );
        let num_sets = 1usize << trace.set_bits;
        let chunks = if trace.len() >= PARALLEL_PARTITION_MIN {
            let ranges: Vec<(usize, usize)> = (0..trace.len())
                .step_by(PARTITION_CHUNK)
                .map(|start| (start, (start + PARTITION_CHUNK).min(trace.len())))
                .collect();
            sim_core::parallel::par_map(ranges, |(start, end)| {
                bucket_chunk(
                    &trace.sets[start..end],
                    &trace.tags[start..end],
                    start as u32,
                    num_sets,
                )
            })
        } else {
            vec![bucket_chunk(&trace.sets, &trace.tags, 0, num_sets)]
        };
        Self::merge(&chunks, trace.len(), trace.set_bits)
    }

    /// Merges per-chunk buckets into one CSR form: sets ascending,
    /// and within a set each chunk's segment appended in chunk order
    /// (chunks cover the trace in order, so this preserves the stable
    /// within-set trace order).
    fn merge(chunks: &[ChunkBuckets], len: usize, set_bits: u32) -> Self {
        let mut dir_sets = Vec::new();
        let mut dir_starts = Vec::with_capacity(16);
        dir_starts.push(0u32);
        let mut indices = Vec::with_capacity(len);
        let mut tags = Vec::with_capacity(len);
        let mut cursors = vec![0usize; chunks.len()];
        loop {
            let mut set = u32::MAX;
            let mut touched = false;
            for (chunk, &cursor) in chunks.iter().zip(&cursors) {
                if let Some(&s) = chunk.dir_sets.get(cursor) {
                    set = set.min(s);
                    touched = true;
                }
            }
            if !touched {
                break;
            }
            dir_sets.push(set);
            for (chunk, cursor) in chunks.iter().zip(&mut cursors) {
                if chunk.dir_sets.get(*cursor) == Some(&set) {
                    let lo = chunk.dir_starts[*cursor] as usize;
                    let hi = chunk.dir_starts[*cursor + 1] as usize;
                    indices.extend_from_slice(&chunk.indices[lo..hi]);
                    tags.extend_from_slice(&chunk.tags[lo..hi]);
                    *cursor += 1;
                }
            }
            dir_starts.push(indices.len() as u32);
        }
        debug_assert_eq!(indices.len(), len);
        PartitionedTrace {
            dir_sets: dir_sets.into_boxed_slice(),
            dir_starts: dir_starts.into_boxed_slice(),
            indices: indices.into_boxed_slice(),
            tags: tags.into_boxed_slice(),
            set_bits,
        }
    }

    /// Number of events (across all runs).
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` if the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The index bits this trace was partitioned against.
    #[must_use]
    pub const fn set_bits(&self) -> u32 {
        self.set_bits
    }

    /// Number of per-set runs (distinct touched sets).
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.dir_sets.len()
    }

    /// Touched sets, ascending — one entry per run.
    #[must_use]
    pub fn dir_sets(&self) -> &[u32] {
        &self.dir_sets
    }

    /// CSR run offsets into [`Self::indices`] / [`Self::tags`]; one
    /// longer than [`Self::dir_sets`].
    #[must_use]
    pub fn dir_starts(&self) -> &[u32] {
        &self.dir_starts
    }

    /// Original trace index of each event, grouped by set, trace order
    /// within a set.
    #[must_use]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Tags, parallel to [`Self::indices`].
    #[must_use]
    pub fn tags(&self) -> &[u64] {
        &self.tags
    }

    /// Iterates `(set, original_indices, tags)` runs in ascending set
    /// order.
    pub fn runs(&self) -> impl Iterator<Item = (u32, &[u32], &[u64])> + '_ {
        self.dir_sets.iter().enumerate().map(move |(k, &set)| {
            let lo = self.dir_starts[k] as usize;
            let hi = self.dir_starts[k + 1] as usize;
            (set, &self.indices[lo..hi], &self.tags[lo..hi])
        })
    }

    /// Bytes of heap the partitioned form keeps resident (directory
    /// plus event arrays) — surfaced by the runtime-metrics record.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.dir_sets.len() * 4
            + self.dir_starts.len() * 4
            + self.indices.len() * 4
            + self.tags.len() * 8
    }
}

/// Identity of one decomposition: which trace, against which indexing
/// scheme.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecomposedKey {
    /// The underlying trace's arena identity.
    pub trace: ArenaKey,
    /// Line size in bytes.
    pub line_size: u64,
    /// Number of set-index bits.
    pub set_bits: u32,
}

/// One map slot: cloned out under the map lock, initialized outside it
/// so distinct keys can decompose concurrently.
type DecomposedCell = Arc<OnceLock<Arc<DecomposedTrace>>>;

/// One partitioned-form slot, same discipline as [`DecomposedCell`].
type PartitionedCell = Arc<OnceLock<Arc<PartitionedTrace>>>;

/// Counters for the partitioned side of a [`DecomposedArena`]:
/// requests served by an existing partition vs requests that sorted,
/// plus how much memoized partitioned state is resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionedStats {
    /// Requests served from a memoized partition.
    pub hits: u64,
    /// Requests that ran the counting sort.
    pub misses: u64,
    /// Partitioned traces currently resident.
    pub traces: u64,
    /// Heap bytes those traces keep resident.
    pub resident_bytes: u64,
}

/// A memoizing store of decomposed traces, mirroring
/// [`crate::arena::TraceArena`]: the map mutex is held only to look up
/// or insert a per-key [`OnceLock`], never while decomposing, so
/// distinct keys split concurrently while racing requests for the same
/// key serialize and share one allocation.
#[derive(Debug, Default)]
pub struct DecomposedArena {
    map: Mutex<FxHashMap<DecomposedKey, DecomposedCell>>,
    parts: Mutex<FxHashMap<DecomposedKey, PartitionedCell>>,
    hits: AtomicU64,
    misses: AtomicU64,
    part_hits: AtomicU64,
    part_misses: AtomicU64,
    part_resident_bytes: AtomicU64,
}

impl DecomposedArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        DecomposedArena::default()
    }

    /// The process-wide arena shared by all experiment drivers.
    #[must_use]
    pub fn global() -> &'static DecomposedArena {
        static GLOBAL: OnceLock<DecomposedArena> = OnceLock::new();
        GLOBAL.get_or_init(DecomposedArena::new)
    }

    /// Returns the decomposition of the trace identified by `key` for
    /// a cache with `line_size`-byte lines and `set_bits` index bits,
    /// computing it on first request from the events `trace` yields
    /// (typically a [`crate::arena::TraceArena`] lookup). Subsequent
    /// requests for an equal key return the same allocation.
    pub fn get_or_decompose(
        &self,
        key: ArenaKey,
        line_size: u64,
        set_bits: u32,
        trace: impl FnOnce() -> Arc<[TraceEvent]>,
    ) -> Arc<DecomposedTrace> {
        // Span label, computed only when tracing is armed (the scope
        // belongs to the arena subsystem, so the recorded scope set is
        // identical at any thread count).
        let span_label = sim_core::span::active().then(|| {
            format!(
                "{}/{}/{}/ls{line_size}/sb{set_bits}",
                key.workload, key.seed, key.events
            )
        });
        let cell = {
            let key = DecomposedKey {
                trace: key,
                line_size,
                set_bits,
            };
            // Poison recovery: entries are inserted whole, so another
            // thread's panic cannot leave a half-written slot —
            // continuing with the inner map is sound (and keeps this
            // replay path free of panicking calls).
            let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(map.entry(key).or_default())
        };
        let mut decomposed = false;
        let result = cell.get_or_init(|| {
            sim_core::span::scope(
                sim_core::span::ScopeKind::Subsystem,
                "arena_decompose",
                "arena",
                || span_label.clone().unwrap_or_default(),
                || {
                    // Injection site: transient faults retry inside the gate;
                    // a persistent one unwinds via panic_any (no panicking
                    // macro on this replay path), leaving the `OnceLock`
                    // uninitialized so a retried cell re-attempts the split.
                    if let Err(fault) =
                        sim_core::fault::gate(sim_core::fault::FaultSite::ArenaMaterialize)
                    {
                        std::panic::panic_any(fault);
                    }
                    decomposed = true;
                    let d = DecomposedTrace::decompose(&trace(), line_size, set_bits);
                    sim_core::span::add_events(d.len() as u64);
                    Arc::new(d)
                },
            )
        });
        if decomposed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(result)
    }

    /// Returns the set-partitioned form of the trace identified by
    /// `key` for the same indexing scheme, partitioning (and, if
    /// needed, decomposing) on first request and memoizing both forms.
    /// The sort is paid once per `(trace, geometry)` key, amortized
    /// across every cell that replays it; subsequent requests for an
    /// equal key return the same allocation.
    pub fn get_or_partition(
        &self,
        key: ArenaKey,
        line_size: u64,
        set_bits: u32,
        trace: impl FnOnce() -> Arc<[TraceEvent]>,
    ) -> Arc<PartitionedTrace> {
        let span_label = sim_core::span::active().then(|| {
            format!(
                "{}/{}/{}/ls{line_size}/sb{set_bits}",
                key.workload, key.seed, key.events
            )
        });
        let cell = {
            let part_key = DecomposedKey {
                trace: key.clone(),
                line_size,
                set_bits,
            };
            let mut parts = self.parts.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(parts.entry(part_key).or_default())
        };
        let mut partitioned = false;
        let result = cell.get_or_init(|| {
            let decomposed = self.get_or_decompose(key, line_size, set_bits, trace);
            sim_core::span::scope(
                sim_core::span::ScopeKind::Subsystem,
                "arena_partition",
                "arena",
                || span_label.clone().unwrap_or_default(),
                || {
                    partitioned = true;
                    let p = PartitionedTrace::partition(&decomposed);
                    sim_core::span::add_events(p.len() as u64);
                    self.part_resident_bytes
                        .fetch_add(p.heap_bytes() as u64, Ordering::Relaxed);
                    Arc::new(p)
                },
            )
        });
        if partitioned {
            self.part_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.part_hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(result)
    }

    /// `(hits, misses)` counters: requests served by replay vs
    /// requests that decomposed.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Counters and residency of the partitioned side (see
    /// [`Self::get_or_partition`]).
    #[must_use]
    pub fn partitioned_stats(&self) -> PartitionedStats {
        let traces = self
            .parts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|cell| cell.get().is_some())
            .count() as u64;
        PartitionedStats {
            hits: self.part_hits.load(Ordering::Relaxed),
            misses: self.part_misses.load(Ordering::Relaxed),
            traces,
            resident_bytes: self.part_resident_bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops every resident decomposition and partition (outstanding
    /// `Arc`s stay valid) and resets the counters.
    pub fn clear(&self) {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.parts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.part_hits.store(0, Ordering::Relaxed);
        self.part_misses.store(0, Ordering::Relaxed);
        self.part_resident_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::SequentialSweep;
    use crate::TraceSource;
    use sim_core::Addr;

    fn sweep_events(n: usize) -> Arc<[TraceEvent]> {
        let src = SequentialSweep::new(Addr::new(0x4000), 64 * 1024, 8);
        Arc::from(src.take_events(n).collect::<Vec<_>>())
    }

    #[test]
    fn decomposition_round_trips_to_lines() {
        let events = sweep_events(500);
        let d = DecomposedTrace::decompose(&events, 64, 8);
        assert_eq!(d.len(), events.len());
        for (i, event) in events.iter().enumerate() {
            assert_eq!(d.line(i), event.access.addr.line(64), "event {i}");
        }
    }

    #[test]
    fn parts_match_direct_extraction() {
        let events = sweep_events(300);
        let set_bits = 7;
        let d = DecomposedTrace::decompose(&events, 64, set_bits);
        for (i, (set, tag)) in d.iter().enumerate() {
            let line = events[i].access.addr.line(64).raw();
            assert_eq!(u64::from(set), line & ((1 << set_bits) - 1));
            assert_eq!(tag, line >> set_bits);
        }
    }

    #[test]
    fn for_each_visits_every_pair_in_order() {
        // More events than one replay chunk, to cross a boundary.
        let events = sweep_events(REPLAY_CHUNK + 37);
        let d = DecomposedTrace::decompose(&events, 64, 4);
        let mut seen = Vec::new();
        d.for_each(|set, tag| seen.push((set as u32, tag)));
        assert_eq!(seen.len(), d.len());
        assert_eq!(seen, d.iter().collect::<Vec<_>>());
    }

    #[test]
    fn for_each_block_matches_for_each_including_torn_tail() {
        let events = sweep_events(REPLAY_CHUNK + 37);
        let d = DecomposedTrace::decompose(&events, 64, 4);
        let mut whole = Vec::new();
        d.for_each(|set, tag| whole.push((set as u32, tag)));
        for block in [1usize, 7, 64, 1000, d.len(), d.len() + 5, 0] {
            let mut seen = Vec::new();
            d.for_each_block(block, |sets, tags| {
                assert_eq!(sets.len(), tags.len());
                assert!(!sets.is_empty());
                seen.extend(sets.iter().copied().zip(tags.iter().copied()));
            });
            assert_eq!(seen, whole, "block size {block}");
        }
    }

    #[test]
    fn arena_memoizes_per_geometry() {
        let arena = DecomposedArena::new();
        let events = sweep_events(100);
        let key = ArenaKey::new("s", 1, 100);
        let a = arena.get_or_decompose(key.clone(), 64, 4, || events.clone());
        let b = arena.get_or_decompose(key.clone(), 64, 4, || unreachable!("memoized"));
        assert!(Arc::ptr_eq(&a, &b));
        // A different indexing scheme is a different decomposition.
        let c = arena.get_or_decompose(key, 64, 5, || events.clone());
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(arena.stats(), (1, 2));
    }

    #[test]
    fn concurrent_same_key_decomposes_once() {
        let arena = DecomposedArena::new();
        let events = sweep_events(200);
        let results: Vec<Arc<DecomposedTrace>> =
            sim_core::parallel::par_map_threads(8, (0..16).collect::<Vec<u32>>(), |_| {
                arena.get_or_decompose(ArenaKey::new("shared", 3, 200), 64, 6, || events.clone())
            });
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r));
        }
        assert_eq!(arena.stats().1, 1);
    }

    #[test]
    fn clear_resets() {
        let arena = DecomposedArena::new();
        let events = sweep_events(50);
        let kept = arena.get_or_decompose(ArenaKey::new("s", 1, 50), 64, 4, || events.clone());
        arena.clear();
        assert_eq!(arena.stats(), (0, 0));
        assert_eq!(kept.len(), 50); // outstanding Arc survives clear
        let again = arena.get_or_decompose(ArenaKey::new("s", 1, 50), 64, 4, || events);
        assert!(!Arc::ptr_eq(&kept, &again));
    }

    /// Reference partition: an independent stable sort by set.
    fn naive_partition(d: &DecomposedTrace) -> Vec<(u32, Vec<u32>, Vec<u64>)> {
        let mut order: Vec<u32> = (0..d.len() as u32).collect();
        order.sort_by_key(|&i| d.sets()[i as usize]); // stable
        let mut runs: Vec<(u32, Vec<u32>, Vec<u64>)> = Vec::new();
        for i in order {
            let set = d.sets()[i as usize];
            let tag = d.tags()[i as usize];
            match runs.last_mut() {
                Some((s, indices, tags)) if *s == set => {
                    indices.push(i);
                    tags.push(tag);
                }
                _ => runs.push((set, vec![i], vec![tag])),
            }
        }
        runs
    }

    fn assert_matches_naive(p: &PartitionedTrace, d: &DecomposedTrace) {
        let expected = naive_partition(d);
        assert_eq!(p.len(), d.len());
        assert_eq!(p.run_count(), expected.len());
        assert_eq!(p.dir_starts().first(), Some(&0));
        assert_eq!(p.dir_starts().last(), Some(&(d.len() as u32)));
        let actual: Vec<(u32, Vec<u32>, Vec<u64>)> = p
            .runs()
            .map(|(set, indices, tags)| (set, indices.to_vec(), tags.to_vec()))
            .collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn partition_matches_stable_sort_by_set() {
        let events = sweep_events(3_000);
        // Fold into 16 sets so runs are long; also a skewed mix.
        let d = DecomposedTrace::decompose(&events, 64, 4);
        assert_matches_naive(&PartitionedTrace::partition(&d), &d);
        let d = DecomposedTrace::decompose(&events, 64, 9);
        assert_matches_naive(&PartitionedTrace::partition(&d), &d);
    }

    #[test]
    fn partition_of_empty_trace_is_empty() {
        let d = DecomposedTrace::decompose(&[], 64, 4);
        let p = PartitionedTrace::partition(&d);
        assert!(p.is_empty());
        assert_eq!(p.run_count(), 0);
        assert_eq!(p.dir_starts(), &[0]);
    }

    #[test]
    fn chunked_partition_matches_serial_at_any_thread_count() {
        // Enough events to engage the chunked parallel path, with a
        // torn final chunk.
        let events = sweep_events(PARALLEL_PARTITION_MIN + 1_037);
        let d = DecomposedTrace::decompose(&events, 64, 6);
        // Serial reference: one whole-trace chunk.
        let serial = PartitionedTrace::merge(
            &[bucket_chunk(d.sets(), d.tags(), 0, 1 << 6)],
            d.len(),
            d.set_bits(),
        );
        assert_matches_naive(&serial, &d);
        for threads in [1usize, 4, 8] {
            let chunked = sim_core::parallel::par_map_threads(threads, vec![()], |()| {
                PartitionedTrace::partition(&d)
            })
            .pop()
            .unwrap();
            assert_eq!(chunked, serial, "threads {threads}");
        }
    }

    #[test]
    fn arena_memoizes_partitions_and_counts_residency() {
        let arena = DecomposedArena::new();
        let events = sweep_events(120);
        let key = ArenaKey::new("p", 1, 120);
        let a = arena.get_or_partition(key.clone(), 64, 4, || events.clone());
        let b = arena.get_or_partition(key.clone(), 64, 4, || unreachable!("memoized"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = arena.partitioned_stats();
        assert_eq!((stats.hits, stats.misses, stats.traces), (1, 1, 1));
        assert_eq!(stats.resident_bytes, a.heap_bytes() as u64);
        // Partitioning also memoized the trace-order form.
        assert_eq!(arena.stats().1, 1);
        let d = arena.get_or_decompose(key.clone(), 64, 4, || unreachable!("memoized"));
        assert_matches_naive(&a, &d);
        arena.clear();
        let stats = arena.partitioned_stats();
        assert_eq!((stats.hits, stats.misses, stats.traces), (0, 0, 0));
        assert_eq!(stats.resident_bytes, 0);
        let again = arena.get_or_partition(key, 64, 4, || events);
        assert!(!Arc::ptr_eq(&a, &again));
    }
}
