//! Composable synthetic access-pattern generators.
//!
//! Every generator is an unbounded [`TraceSource`] with three shared
//! knobs configured through builder-style methods:
//!
//! * `with_work(n)` — non-memory instructions per access (how
//!   compute-bound the pattern is);
//! * `with_store_period(k)` — every *k*-th access is a store
//!   (0 = loads only);
//! * `with_pc(addr)` — the synthetic program counter attributed to the
//!   pattern's accesses.
//!
//! The SPEC95-analog workloads in the `workloads` crate are built by
//! composing these primitives with [`Interleave`].

use sim_core::rng::SplitMix64;
use sim_core::Addr;

use crate::{AccessKind, MemoryAccess, TraceEvent, TraceSource};

/// Shared per-generator event shaping (work, stores, PC).
#[derive(Debug, Clone)]
struct Shape {
    work: u32,
    store_period: u32,
    pc: Addr,
    count: u64,
}

impl Shape {
    fn new() -> Self {
        Shape {
            work: 4,
            store_period: 0,
            pc: Addr::new(0x0040_0000),
            count: 0,
        }
    }

    fn event(&mut self, addr: Addr) -> TraceEvent {
        self.count += 1;
        let kind =
            if self.store_period != 0 && self.count.is_multiple_of(u64::from(self.store_period)) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
        TraceEvent::new(
            MemoryAccess {
                addr,
                kind,
                pc: self.pc,
            },
            self.work,
        )
    }
}

macro_rules! shape_builders {
    ($ty:ident) => {
        impl $ty {
            /// Sets the non-memory instruction count per access.
            #[must_use]
            pub fn with_work(mut self, work: u32) -> Self {
                self.shape.work = work;
                self
            }

            /// Makes every `period`-th access a store (0 disables
            /// stores).
            #[must_use]
            pub fn with_store_period(mut self, period: u32) -> Self {
                self.shape.store_period = period;
                self
            }

            /// Sets the synthetic program counter for this pattern.
            #[must_use]
            pub fn with_pc(mut self, pc: Addr) -> Self {
                self.shape.pc = pc;
                self
            }
        }
    };
}

/// A cyclic sequential sweep: walk a region front to back in
/// fixed-size elements, then wrap around.
///
/// A sweep over a region larger than the cache produces pure capacity
/// misses with strong spatial locality — the canonical numeric-code
/// pattern and the best case for next-line prefetching.
#[derive(Debug, Clone)]
pub struct SequentialSweep {
    base: Addr,
    region: u64,
    element: u64,
    offset: u64,
    shape: Shape,
}

impl SequentialSweep {
    /// Sweeps `region` bytes starting at `base` in `element`-byte
    /// steps.
    ///
    /// # Panics
    ///
    /// Panics if `element` is zero or larger than `region`.
    #[must_use]
    pub fn new(base: Addr, region: u64, element: u64) -> Self {
        assert!(
            element > 0 && element <= region,
            "element must fit the region"
        );
        SequentialSweep {
            base,
            region,
            element,
            offset: 0,
            shape: Shape::new(),
        }
    }
}

shape_builders!(SequentialSweep);

impl TraceSource for SequentialSweep {
    fn next_event(&mut self) -> TraceEvent {
        let addr = self.base + self.offset;
        self.offset += self.element;
        if self.offset >= self.region {
            self.offset = 0;
        }
        self.shape.event(addr)
    }
}

/// A strided walk: repeatedly add a fixed (possibly large,
/// power-of-two) stride, wrapping within a region.
///
/// Power-of-two strides equal to the cache size land every access in
/// the same set — the pathological conflict pattern of FFT-style codes
/// (the `turb3d` analog is built from this).
#[derive(Debug, Clone)]
pub struct StridedStream {
    base: Addr,
    region: u64,
    stride: u64,
    offset: u64,
    shape: Shape,
}

impl StridedStream {
    /// Walks `region` bytes from `base` in `stride`-byte hops.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or `region` is zero.
    #[must_use]
    pub fn new(base: Addr, region: u64, stride: u64) -> Self {
        assert!(
            stride > 0 && region > 0,
            "stride and region must be positive"
        );
        StridedStream {
            base,
            region,
            stride,
            offset: 0,
            shape: Shape::new(),
        }
    }
}

shape_builders!(StridedStream);

impl TraceSource for StridedStream {
    fn next_event(&mut self) -> TraceEvent {
        let addr = self.base + self.offset;
        self.offset = (self.offset + self.stride) % self.region;
        self.shape.event(addr)
    }
}

/// Several arrays advanced in lockstep: one access to each array per
/// loop iteration, all at the same element index.
///
/// When the array bases are a multiple of the cache size apart, the
/// simultaneous accesses collide in the same set every iteration —
/// the classic source of conflict misses in dense numeric loops
/// (`tomcatv`-style).
#[derive(Debug, Clone)]
pub struct LockstepArrays {
    bases: Vec<Addr>,
    length: u64,
    element: u64,
    index: u64,
    array: usize,
    shape: Shape,
}

impl LockstepArrays {
    /// Iterates index `0..length/element` over all of `bases`,
    /// touching `bases[0][i], bases[1][i], …` then `i+1`.
    ///
    /// # Panics
    ///
    /// Panics if `bases` is empty or `element` is zero or larger than
    /// `length`.
    #[must_use]
    pub fn new(bases: Vec<Addr>, length: u64, element: u64) -> Self {
        assert!(!bases.is_empty(), "need at least one array");
        assert!(
            element > 0 && element <= length,
            "element must fit the array"
        );
        LockstepArrays {
            bases,
            length,
            element,
            index: 0,
            array: 0,
            shape: Shape::new(),
        }
    }
}

shape_builders!(LockstepArrays);

impl TraceSource for LockstepArrays {
    fn next_event(&mut self) -> TraceEvent {
        let addr = self.bases[self.array] + self.index;
        self.array += 1;
        if self.array == self.bases.len() {
            self.array = 0;
            self.index += self.element;
            if self.index >= self.length {
                self.index = 0;
            }
        }
        self.shape.event(addr)
    }
}

/// A pointer chase over a random permutation of cache lines.
///
/// Visits every line of the region in a fixed pseudo-random cyclic
/// order — no spatial locality, defeating next-line prefetching, with
/// reuse distance equal to the region size (capacity misses when the
/// region exceeds the cache).
#[derive(Debug, Clone)]
pub struct PointerChase {
    base: Addr,
    next: Vec<u32>,
    current: u32,
    line_size: u64,
    shape: Shape,
}

impl PointerChase {
    /// Chases through `region` bytes at `base` in `line_size` hops,
    /// in a permutation determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the region holds fewer than two lines.
    #[must_use]
    pub fn new(base: Addr, region: u64, line_size: u64, seed: u64) -> Self {
        let lines = (region / line_size) as u32;
        assert!(lines >= 2, "pointer chase needs at least two lines");
        // Build a single cycle (Sattolo's algorithm) so the chase
        // visits every line before repeating.
        let mut order: Vec<u32> = (0..lines).collect();
        let mut rng = SplitMix64::new(seed);
        for i in (1..order.len()).rev() {
            let j = rng.next_below(i as u64) as usize; // j < i: Sattolo
            order.swap(i, j);
        }
        let mut next = vec![0u32; lines as usize];
        for w in 0..lines as usize {
            next[order[w] as usize] = order[(w + 1) % lines as usize];
        }
        PointerChase {
            base,
            next,
            current: 0,
            line_size,
            shape: Shape::new(),
        }
    }
}

shape_builders!(PointerChase);

impl TraceSource for PointerChase {
    fn next_event(&mut self) -> TraceEvent {
        let addr = self.base + u64::from(self.current) * self.line_size;
        self.current = self.next[self.current as usize];
        self.shape.event(addr)
    }
}

/// Zipf-distributed accesses over a set of lines: a few lines are very
/// hot, the tail is cold.
///
/// Models hash tables and interpreter data structures (`gcc`, `perl`
/// analogs). Hot lines mostly hit; tail accesses produce irregular
/// misses.
#[derive(Debug, Clone)]
pub struct ZipfAccess {
    base: Addr,
    line_size: u64,
    cdf: Vec<f64>,
    rank_to_line: Vec<u32>,
    rng: SplitMix64,
    shape: Shape,
}

impl ZipfAccess {
    /// Accesses `lines` lines at `base` with Zipf exponent `theta`
    /// (0 = uniform, ~1 = classic Zipf), ranks shuffled by `seed` so
    /// hot lines are scattered over the region.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero or `theta` is negative.
    #[must_use]
    pub fn new(base: Addr, lines: u32, line_size: u64, theta: f64, seed: u64) -> Self {
        assert!(lines > 0, "need at least one line");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut rng = SplitMix64::new(seed);
        let mut cdf = Vec::with_capacity(lines as usize);
        let mut total = 0.0;
        for rank in 1..=lines {
            total += 1.0 / f64::from(rank).powf(theta);
            cdf.push(total);
        }
        for p in &mut cdf {
            *p /= total;
        }
        let mut rank_to_line: Vec<u32> = (0..lines).collect();
        rng.shuffle(&mut rank_to_line);
        ZipfAccess {
            base,
            line_size,
            cdf,
            rank_to_line,
            rng,
            shape: Shape::new(),
        }
    }
}

shape_builders!(ZipfAccess);

impl TraceSource for ZipfAccess {
    fn next_event(&mut self) -> TraceEvent {
        let u = self.rng.next_f64();
        let rank = self.cdf.partition_point(|&p| p < u);
        let line = self.rank_to_line[rank.min(self.rank_to_line.len() - 1)];
        let addr = self.base + u64::from(line) * self.line_size;
        self.shape.event(addr)
    }
}

/// Round-robin accesses over `k` lines that all map to the same cache
/// set.
///
/// With `k` one larger than the cache's associativity this is the
/// purest conflict-miss generator: every access misses, and every miss
/// would have hit with one more way.
#[derive(Debug, Clone)]
pub struct SetConflict {
    addrs: Vec<Addr>,
    position: usize,
    dwell: u32,
    remaining: u32,
    shape: Shape,
}

impl SetConflict {
    /// Cycles over `k` addresses spaced `set_span` bytes apart (use
    /// the cache size so all map to one set), starting at `base`.
    /// Each address is accessed `dwell` times in a row before moving
    /// on (dwell > 1 adds hits between the conflict misses).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `dwell` is zero.
    #[must_use]
    pub fn new(base: Addr, k: u32, set_span: u64, dwell: u32) -> Self {
        assert!(k >= 2, "conflict needs at least two contenders");
        assert!(dwell >= 1, "dwell must be at least 1");
        let addrs = (0..k).map(|i| base + u64::from(i) * set_span).collect();
        SetConflict {
            addrs,
            position: 0,
            dwell,
            remaining: dwell,
            shape: Shape::new(),
        }
    }
}

shape_builders!(SetConflict);

impl TraceSource for SetConflict {
    fn next_event(&mut self) -> TraceEvent {
        let addr = self.addrs[self.position];
        self.remaining -= 1;
        if self.remaining == 0 {
            self.remaining = self.dwell;
            self.position = (self.position + 1) % self.addrs.len();
        }
        self.shape.event(addr)
    }
}

/// Wraps a source so each generated line is revisited in a short
/// burst of neighbouring accesses before moving on.
///
/// Models "a capacity miss followed by a short burst of activity"
/// (paper §5.6): streaming data that is used a few times and never
/// again — the pattern cache exclusion targets.
#[derive(Debug, Clone)]
pub struct Burst<S> {
    inner: S,
    burst: u32,
    span: u64,
    current: Option<TraceEvent>,
    issued: u32,
    rng: SplitMix64,
}

impl<S: TraceSource> Burst<S> {
    /// Repeats each of `inner`'s accesses `burst` times, each repeat
    /// displaced by a small random offset within `span` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero or `span` is zero.
    #[must_use]
    pub fn new(inner: S, burst: u32, span: u64, seed: u64) -> Self {
        assert!(burst >= 1, "burst must be at least 1");
        assert!(span >= 1, "span must be at least 1");
        Burst {
            inner,
            burst,
            span,
            current: None,
            issued: 0,
            rng: SplitMix64::new(seed),
        }
    }
}

impl<S: TraceSource> TraceSource for Burst<S> {
    fn next_event(&mut self) -> TraceEvent {
        match self.current {
            Some(base) if self.issued < self.burst => {
                self.issued += 1;
                let jitter = self.rng.next_below(self.span);
                TraceEvent::new(
                    MemoryAccess {
                        addr: base.access.addr + jitter,
                        ..base.access
                    },
                    base.work,
                )
            }
            _ => {
                let e = self.inner.next_event();
                self.current = Some(e);
                self.issued = 1;
                e
            }
        }
    }
}

/// A weighted interleaving of child sources, switching between them in
/// runs.
///
/// Real programs interleave loops over different structures; the
/// SPEC95 analogs compose their phases with this. Weights control how
/// often each child is selected; `run` controls how many consecutive
/// events come from one child before reselecting (longer runs preserve
/// each child's locality).
pub struct Interleave {
    children: Vec<(Box<dyn TraceSource>, f64)>,
    cumulative: Vec<f64>,
    run: u32,
    remaining: u32,
    active: usize,
    rng: SplitMix64,
}

impl std::fmt::Debug for Interleave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interleave")
            .field("children", &self.children.len())
            .field("run", &self.run)
            .finish_non_exhaustive()
    }
}

impl Interleave {
    /// Builds an interleaving from `(source, weight)` pairs with run
    /// length `run`, selecting runs with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty, any weight is non-positive, or
    /// `run` is zero.
    #[must_use]
    pub fn new(children: Vec<(Box<dyn TraceSource>, f64)>, run: u32, seed: u64) -> Self {
        assert!(!children.is_empty(), "need at least one child");
        assert!(run >= 1, "run length must be at least 1");
        let mut cumulative = Vec::with_capacity(children.len());
        let mut total = 0.0;
        for (_, w) in &children {
            assert!(*w > 0.0, "weights must be positive");
            total += w;
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Interleave {
            children,
            cumulative,
            run,
            remaining: 0,
            active: 0,
            rng: SplitMix64::new(seed),
        }
    }
}

impl TraceSource for Interleave {
    fn next_event(&mut self) -> TraceEvent {
        if self.remaining == 0 {
            let u = self.rng.next_f64();
            self.active = self
                .cumulative
                .partition_point(|&p| p < u)
                .min(self.children.len() - 1);
            self.remaining = self.run;
        }
        self.remaining -= 1;
        self.children[self.active].0.next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs<S: TraceSource>(mut s: S, n: usize) -> Vec<u64> {
        (0..n).map(|_| s.next_event().access.addr.raw()).collect()
    }

    #[test]
    fn sequential_sweep_wraps() {
        let s = SequentialSweep::new(Addr::new(100), 32, 8);
        assert_eq!(addrs(s, 6), vec![100, 108, 116, 124, 100, 108]);
    }

    #[test]
    fn strided_stream_wraps_at_region() {
        let s = StridedStream::new(Addr::new(0), 64, 48);
        // offsets 0, 48, 96%64=32, 80%64=16, 0 ...
        assert_eq!(addrs(s, 5), vec![0, 48, 32, 16, 0]);
    }

    #[test]
    fn lockstep_touches_every_array_per_index() {
        let s = LockstepArrays::new(vec![Addr::new(0), Addr::new(1000)], 16, 8);
        assert_eq!(addrs(s, 6), vec![0, 1000, 8, 1008, 0, 1000]);
    }

    #[test]
    fn pointer_chase_visits_every_line_once_per_lap() {
        let s = PointerChase::new(Addr::new(0), 8 * 64, 64, 7);
        let seen = addrs(s, 8);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).map(|n| n * 64).collect::<Vec<_>>());
    }

    #[test]
    fn pointer_chase_is_cyclic() {
        let s = PointerChase::new(Addr::new(0), 8 * 64, 64, 7);
        let seq = addrs(s, 16);
        assert_eq!(&seq[..8], &seq[8..]);
    }

    #[test]
    fn pointer_chase_has_no_self_loop() {
        let s = PointerChase::new(Addr::new(0), 16 * 64, 64, 3);
        let seq = addrs(s, 16);
        for pair in seq.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn zipf_prefers_hot_lines() {
        let mut s = ZipfAccess::new(Addr::new(0), 100, 64, 1.0, 9);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts
                .entry(s.next_event().access.addr.raw())
                .or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let distinct = counts.len();
        // Heavily skewed: hottest line far above uniform share, but
        // many lines still touched.
        assert!(max > 500, "hottest line only {max}");
        assert!(distinct > 50, "only {distinct} lines touched");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut s = ZipfAccess::new(Addr::new(0), 10, 64, 0.0, 9);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[(s.next_event().access.addr.raw() / 64) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "count {c} too far from uniform");
        }
    }

    #[test]
    fn set_conflict_cycles_contenders() {
        let s = SetConflict::new(Addr::new(0), 3, 16 * 1024, 1);
        assert_eq!(addrs(s, 4), vec![0, 16 * 1024, 32 * 1024, 0]);
    }

    #[test]
    fn set_conflict_dwell_repeats() {
        let s = SetConflict::new(Addr::new(0), 2, 1024, 3);
        assert_eq!(addrs(s, 7), vec![0, 0, 0, 1024, 1024, 1024, 0]);
    }

    #[test]
    fn burst_repeats_within_span() {
        let inner = SequentialSweep::new(Addr::new(0), 1 << 20, 4096);
        let mut b = Burst::new(inner, 4, 64, 1);
        let mut last_base = None;
        for _ in 0..12 {
            let a = b.next_event().access.addr.raw();
            let base = a / 4096 * 4096;
            if let Some(prev) = last_base {
                // Base only changes every 4 events.
                let _ = prev;
            }
            last_base = Some(base);
            assert!(a - base < 64 + 4096);
        }
    }

    #[test]
    fn interleave_draws_from_all_children() {
        let a: Box<dyn TraceSource> = Box::new(SequentialSweep::new(Addr::new(0), 64, 8));
        let b: Box<dyn TraceSource> = Box::new(SequentialSweep::new(Addr::new(1 << 30), 64, 8));
        let mut mix = Interleave::new(vec![(a, 1.0), (b, 1.0)], 2, 42);
        let mut low = 0;
        let mut high = 0;
        for _ in 0..200 {
            if mix.next_event().access.addr.raw() < 1 << 29 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 40 && high > 40, "low {low}, high {high}");
    }

    #[test]
    fn shape_builders_apply() {
        let mut s = SequentialSweep::new(Addr::new(0), 64, 8)
            .with_work(7)
            .with_store_period(2)
            .with_pc(Addr::new(0x1234));
        let e1 = s.next_event();
        let e2 = s.next_event();
        assert_eq!(e1.work, 7);
        assert_eq!(e1.access.pc, Addr::new(0x1234));
        assert_eq!(e1.access.kind, AccessKind::Load);
        assert_eq!(e2.access.kind, AccessKind::Store);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = addrs(PointerChase::new(Addr::new(0), 64 * 64, 64, 5), 100);
        let b = addrs(PointerChase::new(Addr::new(0), 64 * 64, 64, 5), 100);
        assert_eq!(a, b);
    }
}
