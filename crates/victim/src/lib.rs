//! A victim cache with miss-classification filtering (paper §5.1).
//!
//! The victim buffer (Jouppi) holds lines recently evicted from the
//! L1; it is probed after an L1 miss and can return data with one
//! extra cycle of latency. The paper adds two MCT-based policy knobs:
//!
//! * **filter swaps** — on a victim-buffer hit classified as a
//!   conflict miss, serve the data from the buffer *without* swapping
//!   the line back into the cache, eliminating the ping-pong of
//!   contended lines between the cache and the buffer;
//! * **filter fills** — when the L1 evicts a line on a capacity miss,
//!   bypass the buffer entirely (don't fill), keeping buffer entries
//!   for lines with conflict evidence.
//!
//! Both filters use the *or-conflict* criterion by default (the
//! paper's most liberal identification of conflict misses).
//!
//! # Examples
//!
//! ```
//! use victim_cache::{VictimConfig, VictimPolicy, VictimSystem};
//! use cpu_model::{CpuConfig, OooModel};
//! use trace_gen::pattern::SetConflict;
//! use trace_gen::TraceSource;
//! use sim_core::Addr;
//!
//! // Two lines ping-ponging in one set: the victim cache's best case.
//! let trace: Vec<_> = SetConflict::new(Addr::new(0), 2, 16 * 1024, 1)
//!     .take_events(2_000)
//!     .collect();
//! let mut sys = VictimSystem::paper_default(VictimConfig::new(VictimPolicy::FilterBoth))?;
//! let cpu = OooModel::new(CpuConfig::paper_default());
//! cpu.run(&mut sys, trace);
//! assert!(sys.stats().total_hit_rate() > 0.9);
//! # Ok::<(), cache_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use assist_buffer::{AssistBuffer, BufferPorts};
use cache_model::{CacheGeometry, ConfigError};
use cpu_model::{MemResponse, MemorySystem, Plumbing};
use mct::{ClassifyingCache, ConflictFilter, TagBits};
use sim_core::probe;
use sim_core::Cycle;
use trace_gen::MemoryAccess;

/// Which of the paper's Figure 3 bars to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum VictimPolicy {
    /// A traditional victim cache: always fill, always swap.
    Traditional,
    /// No swap on a victim hit that classifies as a conflict miss.
    FilterSwaps,
    /// No buffer fill when the evicted line left on a capacity miss.
    FilterFills,
    /// Both filters combined (the paper's best policy).
    FilterBoth,
}

impl VictimPolicy {
    /// All four policies in the paper's figure order.
    pub const ALL: [VictimPolicy; 4] = [
        VictimPolicy::Traditional,
        VictimPolicy::FilterSwaps,
        VictimPolicy::FilterFills,
        VictimPolicy::FilterBoth,
    ];

    fn filters_swaps(self) -> bool {
        matches!(self, VictimPolicy::FilterSwaps | VictimPolicy::FilterBoth)
    }

    fn filters_fills(self) -> bool {
        matches!(self, VictimPolicy::FilterFills | VictimPolicy::FilterBoth)
    }
}

impl std::fmt::Display for VictimPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VictimPolicy::Traditional => f.write_str("V cache"),
            VictimPolicy::FilterSwaps => f.write_str("filter swaps"),
            VictimPolicy::FilterFills => f.write_str("filter fills"),
            VictimPolicy::FilterBoth => f.write_str("filter both"),
        }
    }
}

/// Configuration of a [`VictimSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimConfig {
    /// The policy (Figure 3 bar).
    pub policy: VictimPolicy,
    /// The conflict filter both knobs use (paper: or-conflict).
    pub filter: ConflictFilter,
    /// Victim buffer entries (paper: 8).
    pub entries: usize,
    /// MCT tag width (paper's §5 results store the full tag).
    pub tag_bits: TagBits,
}

impl VictimConfig {
    /// The paper's setup for a given policy: 8 entries, or-conflict,
    /// full tags.
    #[must_use]
    pub const fn new(policy: VictimPolicy) -> Self {
        VictimConfig {
            policy,
            filter: ConflictFilter::OrConflict,
            entries: 8,
            tag_bits: TagBits::Full,
        }
    }
}

/// Event counts behind Table 1, all reported against total accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VictimStats {
    /// Total accesses.
    pub accesses: u64,
    /// L1 hits.
    pub d_hits: u64,
    /// Victim buffer hits.
    pub v_hits: u64,
    /// Cache↔buffer line swaps performed.
    pub swaps: u64,
    /// Buffer fills performed.
    pub fills: u64,
}

impl VictimStats {
    fn pct(&self, n: u64) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            n as f64 / self.accesses as f64
        }
    }

    /// D$ hit rate (Table 1 "D$ HR").
    #[must_use]
    pub fn d_hit_rate(&self) -> f64 {
        self.pct(self.d_hits)
    }

    /// Victim hit rate against all accesses (Table 1 "V$ HR").
    #[must_use]
    pub fn v_hit_rate(&self) -> f64 {
        self.pct(self.v_hits)
    }

    /// Combined hit rate (Table 1 "Total").
    #[must_use]
    pub fn total_hit_rate(&self) -> f64 {
        self.pct(self.d_hits + self.v_hits)
    }

    /// Swaps as a fraction of accesses (Table 1 "swaps").
    #[must_use]
    pub fn swap_rate(&self) -> f64 {
        self.pct(self.swaps)
    }

    /// Fills as a fraction of accesses (Table 1 "fills").
    #[must_use]
    pub fn fill_rate(&self) -> f64 {
        self.pct(self.fills)
    }
}

/// The L1 + victim buffer memory system.
///
/// The buffer's per-entry metadata is the line's conflict bit, carried
/// out of the cache at eviction so later swap decisions can apply
/// in/or/and filters.
#[derive(Debug)]
pub struct VictimSystem {
    cfg: VictimConfig,
    l1: ClassifyingCache,
    buffer: AssistBuffer<bool>,
    ports: BufferPorts,
    plumbing: Plumbing,
    stats: VictimStats,
}

impl VictimSystem {
    /// Creates a victim system over an explicit L1 geometry and miss
    /// path.
    #[must_use]
    pub fn new(cfg: VictimConfig, l1_geometry: CacheGeometry, plumbing: Plumbing) -> Self {
        VictimSystem {
            cfg,
            l1: ClassifyingCache::new(l1_geometry, cfg.tag_bits),
            buffer: AssistBuffer::new(cfg.entries),
            ports: BufferPorts::new(),
            plumbing,
            stats: VictimStats::default(),
        }
    }

    /// The paper's system: 16 KB direct-mapped L1 over the default
    /// miss path.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_default(cfg: VictimConfig) -> Result<Self, ConfigError> {
        Ok(Self::new(
            cfg,
            CacheGeometry::new(16 * 1024, 1, 64)?,
            Plumbing::paper_default()?,
        ))
    }

    /// The Table 1 counters.
    #[must_use]
    pub fn stats(&self) -> &VictimStats {
        &self.stats
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &VictimConfig {
        &self.cfg
    }

    /// The classifying L1 (for miss-class inspection).
    #[must_use]
    pub fn l1(&self) -> &ClassifyingCache {
        &self.l1
    }

    /// The shared miss path (L2 stats, demand-latency histogram).
    #[must_use]
    pub fn plumbing(&self) -> &Plumbing {
        &self.plumbing
    }
}

impl MemorySystem for VictimSystem {
    fn access(&mut self, access: MemoryAccess, now: Cycle) -> MemResponse {
        let line_size = self.l1.geometry().line_size();
        let line = access.addr.line(line_size);
        self.stats.accesses += 1;

        let grant = self.plumbing.l1_grant(line, now);
        let l1_done = grant + self.plumbing.timings().l1_latency;
        if self.l1.probe(line).is_some() {
            self.stats.d_hits += 1;
            probe::emit(probe::ProbeEvent::Access { hit: true });
            return MemResponse::at(l1_done);
        }

        // L1 miss: classify before any structure is updated.
        let class = self.l1.classify_miss(line);

        if let Some(&buffered_bit) = self.buffer.peek(line) {
            // Victim buffer hit: data comes from the buffer one cycle
            // after the L1 miss is known.
            self.stats.v_hits += 1;
            probe::emit(probe::ProbeEvent::Access { hit: true });
            let word = self.ports.word_read(l1_done);
            let ready = word + self.plumbing.timings().buffer_extra;

            let skip_swap = self.cfg.policy.filters_swaps()
                && self.cfg.filter.fires(class.is_conflict(), buffered_bit);
            if self.cfg.policy.filters_swaps() {
                probe::emit(probe::ProbeEvent::Filter {
                    unit: probe::FilterUnit::VictimSwap,
                    fired: skip_swap,
                });
            }
            if skip_swap {
                // Leave the line in the buffer; just refresh recency.
                let _ = self.buffer.probe(line);
            } else {
                // Swap: the buffered line returns to the cache; the
                // displaced cache line takes its place in the buffer.
                self.stats.swaps += 1;
                let _ = self.buffer.probe_remove(line);
                let swap_start = self.ports.swap(ready);
                self.plumbing.l1_occupy(line, swap_start, 2);
                if let Some(evicted) = self.l1.fill(line, class.is_conflict()) {
                    self.buffer.insert(evicted.line, evicted.conflict_bit);
                }
            }
            return MemResponse::at(ready);
        }
        // Miss everywhere: fetch from L2/memory.
        probe::emit(probe::ProbeEvent::Access { hit: false });
        let _ = self.buffer.probe(line); // count the buffer miss
        let ready = self.plumbing.fetch_demand(line, grant);
        if let Some(evicted) = self.l1.fill(line, class.is_conflict()) {
            let fill_buffer = !self.cfg.policy.filters_fills()
                || self
                    .cfg
                    .filter
                    .fires(class.is_conflict(), evicted.conflict_bit);
            if self.cfg.policy.filters_fills() {
                // `fired` = the filter let the fill through (the
                // selective-fill predicate matched).
                probe::emit(probe::ProbeEvent::Filter {
                    unit: probe::FilterUnit::VictimFill,
                    fired: fill_buffer,
                });
            }
            if fill_buffer {
                self.stats.fills += 1;
                let _ = self.ports.line_write(ready);
                self.buffer.insert(evicted.line, evicted.conflict_bit);
            }
        }
        MemResponse::at(ready)
    }

    fn label(&self) -> String {
        format!("victim cache ({})", self.cfg.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_model::{CpuConfig, OooModel};
    use sim_core::Addr;
    use trace_gen::pattern::{SequentialSweep, SetConflict};
    use trace_gen::{TraceEvent, TraceSource};

    const CACHE: u64 = 16 * 1024;

    fn run(policy: VictimPolicy, trace: Vec<TraceEvent>) -> (VictimSystem, cpu_model::CpuReport) {
        let mut sys = VictimSystem::paper_default(VictimConfig::new(policy)).unwrap();
        let cpu = OooModel::new(CpuConfig::paper_default());
        let report = cpu.run(&mut sys, trace);
        (sys, report)
    }

    fn ping_pong(n: usize) -> Vec<TraceEvent> {
        SetConflict::new(Addr::new(0), 2, CACHE, 1)
            .with_work(4)
            .take_events(n)
            .collect()
    }

    fn sweep(n: usize) -> Vec<TraceEvent> {
        SequentialSweep::new(Addr::new(0), 1 << 20, 64)
            .with_work(4)
            .take_events(n)
            .collect()
    }

    #[test]
    fn traditional_converts_conflicts_to_buffer_hits() {
        let (sys, _) = run(VictimPolicy::Traditional, ping_pong(2_000));
        let s = sys.stats();
        // After warmup every access hits the buffer and swaps.
        assert!(s.v_hit_rate() > 0.95, "v hit rate {}", s.v_hit_rate());
        assert!(s.swap_rate() > 0.95, "swap rate {}", s.swap_rate());
        assert!(s.total_hit_rate() > 0.95);
    }

    #[test]
    fn filter_swaps_splits_hits_between_cache_and_buffer() {
        let (sys, _) = run(VictimPolicy::FilterSwaps, ping_pong(2_000));
        let s = sys.stats();
        // One contender settles in the cache, the other in the buffer:
        // D$ and V$ each serve ~half the accesses, with no swapping —
        // exactly the Table 1 signature of this policy.
        assert!(s.swap_rate() < 0.01, "swap rate {}", s.swap_rate());
        assert!(s.d_hit_rate() > 0.4, "d hit rate {}", s.d_hit_rate());
        assert!(s.v_hit_rate() > 0.4, "v hit rate {}", s.v_hit_rate());
        assert!(s.total_hit_rate() > 0.95);
    }

    #[test]
    fn filter_fills_skips_capacity_evictions() {
        // A pure streaming sweep evicts everything as capacity misses.
        let (filtered, _) = run(VictimPolicy::FilterFills, sweep(4_000));
        let (traditional, _) = run(VictimPolicy::Traditional, sweep(4_000));
        assert!(traditional.stats().fill_rate() > 0.5);
        assert!(
            filtered.stats().fill_rate() < 0.05,
            "fill rate {}",
            filtered.stats().fill_rate()
        );
        // And skipping those useless fills loses no hits.
        assert!(
            (filtered.stats().total_hit_rate() - traditional.stats().total_hit_rate()).abs() < 0.02
        );
    }

    #[test]
    fn filtered_victim_cache_beats_no_victim_cache_on_conflicts() {
        let trace = ping_pong(4_000);
        let cpu = OooModel::new(CpuConfig::paper_default());
        let mut base = cpu_model::BaselineSystem::paper_default().unwrap();
        let base_report = cpu.run(&mut base, trace.clone());
        let (_, victim_report) = run(VictimPolicy::FilterBoth, trace);
        assert!(
            victim_report.speedup_over(&base_report) > 1.2,
            "speedup {}",
            victim_report.speedup_over(&base_report)
        );
    }

    #[test]
    fn no_swap_beats_traditional_on_heavy_ping_pong() {
        // The paper: filtering swaps "eliminated a great deal of heavy
        // ping-ponging of cache lines between the main cache and the
        // victim cache" — under constant swapping, both the cache bank
        // and the buffer ports are occupied and the traditional policy
        // suffers.
        let trace = ping_pong(4_000);
        let (_, trad) = run(VictimPolicy::Traditional, trace.clone());
        let (_, noswap) = run(VictimPolicy::FilterSwaps, trace);
        assert!(
            noswap.speedup_over(&trad) > 1.3,
            "no-swap speedup over traditional {}",
            noswap.speedup_over(&trad)
        );
    }

    #[test]
    fn filter_both_reduces_both_swaps_and_fills() {
        // A mixed stream: conflicts + streaming.
        let mut trace = ping_pong(2_000);
        trace.extend(sweep(2_000));
        let (both, _) = run(VictimPolicy::FilterBoth, trace.clone());
        let (trad, _) = run(VictimPolicy::Traditional, trace);
        assert!(both.stats().swaps < trad.stats().swaps);
        assert!(both.stats().fills < trad.stats().fills);
        // Hit rate roughly preserved (paper: "very little loss").
        assert!(both.stats().total_hit_rate() > trad.stats().total_hit_rate() - 0.05);
    }

    #[test]
    fn eight_entries_cover_multiple_contended_sets() {
        // Four independent ping-pong pairs -> 4 victims live at once.
        let mut sources: Vec<_> = (0..4)
            .map(|i| SetConflict::new(Addr::new(i * 64), 2, CACHE, 1).with_work(4))
            .collect();
        let mut trace = Vec::new();
        for round in 0..1_000 {
            let src = &mut sources[round % 4];
            trace.push(src.next_event());
        }
        let (sys, _) = run(VictimPolicy::Traditional, trace);
        assert!(
            sys.stats().total_hit_rate() > 0.9,
            "total {}",
            sys.stats().total_hit_rate()
        );
    }

    #[test]
    fn stats_accesses_match_trace_length() {
        let (sys, _) = run(VictimPolicy::Traditional, ping_pong(123));
        assert_eq!(sys.stats().accesses, 123);
    }

    #[test]
    fn label_names_policy() {
        let sys = VictimSystem::paper_default(VictimConfig::new(VictimPolicy::FilterBoth)).unwrap();
        assert_eq!(sys.label(), "victim cache (filter both)");
    }
}
