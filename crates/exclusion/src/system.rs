//! The exclusion memory system: L1 + bypass buffer under one of five
//! exclusion policies.

use assist_buffer::{AssistBuffer, BufferPorts};
use cache_model::{CacheGeometry, ConfigError};
use cpu_model::{MemResponse, MemorySystem, Plumbing};
use mct::{ClassifyingCache, MissClass, TagBits};
use sim_core::probe;
use sim_core::{Addr, Cycle};
use trace_gen::MemoryAccess;

use crate::MemoryAccessTable;

/// The Figure 5 exclusion policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ExclusionPolicy {
    /// Johnson & Hwu's memory access table (the baseline the paper
    /// beats).
    Mat,
    /// Exclude misses the MCT classifies as conflict misses.
    Conflict,
    /// Exclude misses from regions with a history of conflict misses.
    ConflictHistory,
    /// Exclude misses the MCT classifies as capacity misses (the
    /// paper's winner).
    Capacity,
    /// Exclude misses from regions with a history of capacity misses.
    CapacityHistory,
}

impl ExclusionPolicy {
    /// The five policies in the paper's figure order.
    pub const ALL: [ExclusionPolicy; 5] = [
        ExclusionPolicy::Mat,
        ExclusionPolicy::Conflict,
        ExclusionPolicy::ConflictHistory,
        ExclusionPolicy::Capacity,
        ExclusionPolicy::CapacityHistory,
    ];
}

impl std::fmt::Display for ExclusionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExclusionPolicy::Mat => f.write_str("MAT"),
            ExclusionPolicy::Conflict => f.write_str("conflict"),
            ExclusionPolicy::ConflictHistory => f.write_str("conflict history"),
            ExclusionPolicy::Capacity => f.write_str("capacity"),
            ExclusionPolicy::CapacityHistory => f.write_str("capacity history"),
        }
    }
}

/// Configuration of an [`ExclusionSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExclusionConfig {
    /// The exclusion policy.
    pub policy: ExclusionPolicy,
    /// Bypass buffer entries (paper: 16 — the MAT "was originally
    /// studied with a much larger buffer, and we found it to do poorly
    /// with an 8-entry buffer").
    pub entries: usize,
    /// MCT tag width.
    pub tag_bits: TagBits,
}

impl ExclusionConfig {
    /// The paper's setup for a policy: 16-entry bypass buffer, full
    /// tags.
    #[must_use]
    pub const fn new(policy: ExclusionPolicy) -> Self {
        ExclusionConfig {
            policy,
            entries: 16,
            tag_bits: TagBits::Full,
        }
    }
}

/// Event counts for the exclusion study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExclusionStats {
    /// Total accesses.
    pub accesses: u64,
    /// L1 hits.
    pub d_hits: u64,
    /// Bypass-buffer hits.
    pub buffer_hits: u64,
    /// Misses that went to L2/memory.
    pub demand_misses: u64,
    /// Misses redirected into the bypass buffer instead of the cache.
    pub excluded: u64,
}

impl ExclusionStats {
    /// L1 hit rate.
    #[must_use]
    pub fn d_hit_rate(&self) -> f64 {
        ratio(self.d_hits, self.accesses)
    }

    /// Combined (L1 + buffer) hit rate — the Figure 5 metric.
    #[must_use]
    pub fn total_hit_rate(&self) -> f64 {
        ratio(self.d_hits + self.buffer_hits, self.accesses)
    }

    /// Buffer hits against all accesses.
    #[must_use]
    pub fn buffer_hit_rate(&self) -> f64 {
        ratio(self.buffer_hits, self.accesses)
    }
}

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// A 2-bit saturating per-region history of miss classifications,
/// used by the two history policies.
#[derive(Debug, Clone)]
struct RegionHistory {
    counters: Vec<u8>,
    region_bytes: u64,
    /// Class that increments the counter.
    up_on_conflict: bool,
}

impl RegionHistory {
    fn new(entries: usize, region_bytes: u64, up_on_conflict: bool) -> Self {
        RegionHistory {
            counters: vec![0; entries],
            region_bytes,
            up_on_conflict,
        }
    }

    fn index(&self, addr: Addr) -> usize {
        ((addr.raw() / self.region_bytes) % self.counters.len() as u64) as usize
    }

    fn record(&mut self, addr: Addr, class: MissClass) {
        let idx = self.index(addr);
        let up = class.is_conflict() == self.up_on_conflict;
        let c = &mut self.counters[idx];
        if up {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn is_hot(&self, addr: Addr) -> bool {
        self.counters[self.index(addr)] >= 2
    }
}

/// L1 + bypass buffer under an exclusion policy.
///
/// Excluded lines go to the bypass buffer, where they remain until
/// bumped (no promotion into the cache). The MCT-based policies apply
/// the paper's fix-up: a bypassed line's tag is installed in the MCT
/// entry of the set it would have occupied, so its next miss can be
/// classified as a conflict (§5.3).
#[derive(Debug)]
pub struct ExclusionSystem {
    cfg: ExclusionConfig,
    l1: ClassifyingCache,
    buffer: AssistBuffer<()>,
    ports: BufferPorts,
    plumbing: Plumbing,
    mat: Option<MemoryAccessTable>,
    history: Option<RegionHistory>,
    stats: ExclusionStats,
}

impl ExclusionSystem {
    /// Creates the system over an explicit geometry and miss path.
    #[must_use]
    pub fn new(cfg: ExclusionConfig, l1_geometry: CacheGeometry, plumbing: Plumbing) -> Self {
        let mat =
            matches!(cfg.policy, ExclusionPolicy::Mat).then(|| MemoryAccessTable::new(1024, 1024));
        let history = match cfg.policy {
            ExclusionPolicy::ConflictHistory => Some(RegionHistory::new(1024, 1024, true)),
            ExclusionPolicy::CapacityHistory => Some(RegionHistory::new(1024, 1024, false)),
            _ => None,
        };
        ExclusionSystem {
            cfg,
            l1: ClassifyingCache::new(l1_geometry, cfg.tag_bits),
            buffer: AssistBuffer::new(cfg.entries),
            ports: BufferPorts::new(),
            plumbing,
            mat,
            history,
            stats: ExclusionStats::default(),
        }
    }

    /// The paper's L1 over the default miss path.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_default(cfg: ExclusionConfig) -> Result<Self, ConfigError> {
        Ok(Self::new(
            cfg,
            CacheGeometry::new(16 * 1024, 1, 64)?,
            Plumbing::paper_default()?,
        ))
    }

    /// The counters.
    #[must_use]
    pub fn stats(&self) -> &ExclusionStats {
        &self.stats
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ExclusionConfig {
        &self.cfg
    }

    /// The shared miss path (L2 stats, demand-latency histogram).
    #[must_use]
    pub fn plumbing(&self) -> &Plumbing {
        &self.plumbing
    }

    /// Decides whether the missing line is excluded from the cache.
    fn should_exclude(&mut self, line_addr: Addr, class: MissClass) -> bool {
        match self.cfg.policy {
            ExclusionPolicy::Mat => {
                let line_size = self.l1.geometry().line_size();
                let victim = self
                    .l1
                    .eviction_candidate(line_addr.line(line_size))
                    .map(|l| l.base_addr(line_size));
                match (&self.mat, victim) {
                    (Some(mat), Some(victim)) => mat.should_exclude(line_addr, victim),
                    // An empty way means no one is displaced: cache it.
                    _ => false,
                }
            }
            ExclusionPolicy::Conflict => class == MissClass::Conflict,
            ExclusionPolicy::Capacity => class == MissClass::Capacity,
            ExclusionPolicy::ConflictHistory | ExclusionPolicy::CapacityHistory => {
                let h = self
                    .history
                    .as_mut()
                    .expect("history policies carry a table");
                h.record(line_addr, class);
                h.is_hot(line_addr)
            }
        }
    }
}

impl MemorySystem for ExclusionSystem {
    fn access(&mut self, access: MemoryAccess, now: Cycle) -> MemResponse {
        let line_size = self.l1.geometry().line_size();
        let line = access.addr.line(line_size);
        self.stats.accesses += 1;

        // The MAT pays its update on every access.
        if let Some(mat) = &mut self.mat {
            mat.touch(access.addr);
        }

        let grant = self.plumbing.l1_grant(line, now);
        let l1_done = grant + self.plumbing.timings().l1_latency;
        if self.l1.probe(line).is_some() {
            self.stats.d_hits += 1;
            probe::emit(probe::ProbeEvent::Access { hit: true });
            return MemResponse::at(l1_done);
        }

        if self.buffer.probe(line).is_some() {
            // Excluded lines are served from the bypass buffer and
            // stay there until bumped.
            self.stats.buffer_hits += 1;
            probe::emit(probe::ProbeEvent::Access { hit: true });
            let word = self.ports.word_read(l1_done);
            return MemResponse::at(word + self.plumbing.timings().buffer_extra);
        }

        let class = self.l1.classify_miss(line);
        self.stats.demand_misses += 1;
        probe::emit(probe::ProbeEvent::Access { hit: false });
        let ready = self.plumbing.fetch_demand(line, grant);

        let exclude = self.should_exclude(access.addr, class);
        probe::emit(probe::ProbeEvent::Filter {
            unit: probe::FilterUnit::Exclude,
            fired: exclude,
        });
        if exclude {
            self.stats.excluded += 1;
            let _ = self.ports.line_write(ready);
            self.buffer.insert(line, ());
            if self.cfg.policy != ExclusionPolicy::Mat {
                // §5.3 fix-up: give the bypassed line a chance to be
                // classified as a conflict next time.
                self.l1.note_bypass(line);
            }
        } else {
            let _ = self.l1.fill(line, class.is_conflict());
        }
        MemResponse::at(ready)
    }

    fn label(&self) -> String {
        format!("exclusion ({})", self.cfg.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_model::{CpuConfig, OooModel};
    use trace_gen::pattern::{SequentialSweep, SetConflict, ZipfAccess};
    use trace_gen::{TraceEvent, TraceSource};

    const CACHE: u64 = 16 * 1024;

    fn run(
        policy: ExclusionPolicy,
        trace: Vec<TraceEvent>,
    ) -> (ExclusionSystem, cpu_model::CpuReport) {
        let mut sys = ExclusionSystem::paper_default(ExclusionConfig::new(policy)).unwrap();
        let cpu = OooModel::new(CpuConfig::paper_default());
        let report = cpu.run(&mut sys, trace);
        (sys, report)
    }

    /// A hot working set that fits the cache, punctuated by a
    /// streaming sweep that would evict it: exclusion's target.
    fn hot_plus_stream(n: usize) -> Vec<TraceEvent> {
        let mut hot = ZipfAccess::new(Addr::new(0), 128, 64, 1.2, 5).with_work(4);
        let mut stream = SequentialSweep::new(Addr::new(1 << 30), 1 << 21, 8).with_work(4);
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    stream.next_event()
                } else {
                    hot.next_event()
                }
            })
            .collect()
    }

    #[test]
    fn capacity_exclusion_protects_the_hot_set() {
        let trace = hot_plus_stream(12_000);
        let (excl, _) = run(ExclusionPolicy::Capacity, trace.clone());
        // Baseline for comparison: no exclusion.
        let cpu = OooModel::new(CpuConfig::paper_default());
        let mut base = cpu_model::BaselineSystem::paper_default().unwrap();
        cpu.run(&mut base, trace);
        // The paper's exclusion gains are modest; require a real but
        // small improvement.
        assert!(
            excl.stats().total_hit_rate() > base.l1_stats().hit_rate() + 0.005,
            "exclusion {} vs baseline {}",
            excl.stats().total_hit_rate(),
            base.l1_stats().hit_rate()
        );
        assert!(
            excl.stats().excluded > 400,
            "excluded {}",
            excl.stats().excluded
        );
    }

    #[test]
    fn conflict_exclusion_excludes_only_conflicts() {
        // A pure capacity stream: the conflict policy excludes nothing.
        let trace: Vec<_> = SequentialSweep::new(Addr::new(0), 1 << 20, 8)
            .with_work(4)
            .take_events(4_000)
            .collect();
        let (sys, _) = run(ExclusionPolicy::Conflict, trace);
        assert_eq!(sys.stats().excluded, 0);
    }

    #[test]
    fn capacity_exclusion_leaves_conflict_traffic_cached() {
        // A ping-pong pair: every miss after warmup is conflict; the
        // capacity policy excludes nothing (lines keep going to the
        // cache).
        let trace: Vec<_> = SetConflict::new(Addr::new(0), 2, CACHE, 1)
            .with_work(4)
            .take_events(2_000)
            .collect();
        let (sys, _) = run(ExclusionPolicy::Capacity, trace);
        // Only the cold start (first touch of each line) may exclude.
        assert!(
            sys.stats().excluded <= 2,
            "excluded {}",
            sys.stats().excluded
        );
    }

    #[test]
    fn bypass_fixup_lets_excluded_lines_classify_conflict() {
        let mut sys =
            ExclusionSystem::paper_default(ExclusionConfig::new(ExclusionPolicy::Capacity))
                .unwrap();
        let pc = Addr::new(0);
        // First touch: capacity -> excluded, tag installed in MCT.
        let r1 = sys.access(MemoryAccess::load(Addr::new(0), pc), Cycle::ZERO);
        assert_eq!(sys.stats().excluded, 1);
        // Flood the buffer so line 0 is bumped out.
        let mut t = r1.ready;
        for i in 1..40u64 {
            let r = sys.access(MemoryAccess::load(Addr::new(1 << 30 | (i * 64)), pc), t);
            t = r.ready;
        }
        // Second miss on line 0 now classifies conflict -> cached.
        sys.access(MemoryAccess::load(Addr::new(0), pc), t);
        assert!(sys.l1.contains(Addr::new(0).line(64)));
    }

    #[test]
    fn mat_excludes_cold_regions() {
        let mut sys =
            ExclusionSystem::paper_default(ExclusionConfig::new(ExclusionPolicy::Mat)).unwrap();
        let pc = Addr::new(0);
        let mut t = Cycle::ZERO;
        // Make region 0 hot (many touches to a resident line).
        for _ in 0..50 {
            t = sys.access(MemoryAccess::load(Addr::new(0), pc), t).ready;
        }
        // A cold line that maps to the same cache set (multiple of
        // 16 KB) but a different MAT entry (region 272, not 0) must
        // not displace it.
        let cold = Addr::new(17 * 16 * 1024);
        t = sys.access(MemoryAccess::load(cold, pc), t).ready;
        assert_eq!(sys.stats().excluded, 1);
        assert!(
            sys.l1.contains(Addr::new(0).line(64)),
            "hot line must stay cached"
        );
        let _ = t;
    }

    #[test]
    fn capacity_beats_mat_on_hot_plus_stream() {
        // Figure 5's headline: the simple capacity filter outperforms
        // the MAT.
        let trace = hot_plus_stream(12_000);
        let (cap, cap_report) = run(ExclusionPolicy::Capacity, trace.clone());
        let (mat, mat_report) = run(ExclusionPolicy::Mat, trace);
        assert!(
            cap.stats().total_hit_rate() >= mat.stats().total_hit_rate() - 0.01,
            "capacity {} vs MAT {}",
            cap.stats().total_hit_rate(),
            mat.stats().total_hit_rate()
        );
        assert!(
            cap_report.speedup_over(&mat_report) > 0.98,
            "capacity vs MAT speedup {}",
            cap_report.speedup_over(&mat_report)
        );
    }

    #[test]
    fn history_policies_need_history_to_fire() {
        let trace = hot_plus_stream(12_000);
        let (sys, _) = run(ExclusionPolicy::CapacityHistory, trace);
        // The history policy fires eventually (regions of the stream
        // accumulate capacity evidence).
        assert!(
            sys.stats().excluded > 100,
            "excluded {}",
            sys.stats().excluded
        );
    }
}
