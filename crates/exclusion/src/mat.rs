//! Johnson & Hwu's memory access table (MAT).

use sim_core::Addr;

/// Per-region access-frequency counters, the exclusion baseline.
///
/// Memory is divided into 1 KB regions; a direct-mapped, tag-matched
/// table of saturating counters records how often each region is
/// touched. On a miss, the incoming line's region count is compared
/// with the victim's: a colder region must not displace a hotter one.
///
/// The cost the paper holds against this scheme: the table is read,
/// incremented and written on **every** access (×4 for a 4-wide
/// load/store pipeline), where the MCT is touched only on misses.
///
/// # Examples
///
/// ```
/// use exclusion::MemoryAccessTable;
/// use sim_core::Addr;
///
/// let mut mat = MemoryAccessTable::new(1024, 1024);
/// for _ in 0..10 { mat.touch(Addr::new(0)); }       // hot region 0
/// mat.touch(Addr::new(5 * 1024));                   // cold region 5
/// assert!(mat.should_exclude(Addr::new(5 * 1024), Addr::new(8)));
/// assert!(!mat.should_exclude(Addr::new(8), Addr::new(5 * 1024)));
/// ```
#[derive(Debug, Clone)]
pub struct MemoryAccessTable {
    entries: Vec<MatEntry>,
    region_bytes: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct MatEntry {
    region: u64,
    count: u32,
    valid: bool,
}

const COUNT_MAX: u32 = 255;

impl MemoryAccessTable {
    /// Creates a table of `entries` counters over `region_bytes`
    /// regions (the paper simulates 1 K entries over 1 KB regions).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `region_bytes` is not a power of
    /// two.
    #[must_use]
    pub fn new(entries: usize, region_bytes: u64) -> Self {
        assert!(entries > 0, "MAT needs entries");
        assert!(
            region_bytes.is_power_of_two(),
            "region size must be a power of two"
        );
        MemoryAccessTable {
            entries: vec![MatEntry::default(); entries],
            region_bytes,
        }
    }

    fn region(&self, addr: Addr) -> u64 {
        addr.raw() / self.region_bytes
    }

    fn index(&self, region: u64) -> usize {
        (region % self.entries.len() as u64) as usize
    }

    /// Records one access (called on **every** reference).
    pub fn touch(&mut self, addr: Addr) {
        let region = self.region(addr);
        let idx = self.index(region);
        let e = &mut self.entries[idx];
        if e.valid && e.region == region {
            e.count = (e.count + 1).min(COUNT_MAX);
        } else {
            // A colliding region displaces the entry and starts cold.
            *e = MatEntry {
                region,
                count: 1,
                valid: true,
            };
        }
    }

    /// The current count for an address's region (0 if untracked).
    #[must_use]
    pub fn count(&self, addr: Addr) -> u32 {
        let region = self.region(addr);
        let e = &self.entries[self.index(region)];
        if e.valid && e.region == region {
            e.count
        } else {
            0
        }
    }

    /// Johnson & Hwu's exclusion rule: a miss on `incoming` must not
    /// displace `victim` when the incoming region is strictly colder.
    #[must_use]
    pub fn should_exclude(&self, incoming: Addr, victim: Addr) -> bool {
        self.count(incoming) < self.count(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate() {
        let mut mat = MemoryAccessTable::new(16, 1024);
        for _ in 0..1000 {
            mat.touch(Addr::new(0));
        }
        assert_eq!(mat.count(Addr::new(0)), COUNT_MAX);
    }

    #[test]
    fn same_region_shares_counter() {
        let mut mat = MemoryAccessTable::new(16, 1024);
        mat.touch(Addr::new(0));
        mat.touch(Addr::new(1023));
        assert_eq!(mat.count(Addr::new(512)), 2);
        // Next region over is independent.
        assert_eq!(mat.count(Addr::new(1024)), 0);
    }

    #[test]
    fn colliding_region_resets_entry() {
        let mut mat = MemoryAccessTable::new(16, 1024);
        for _ in 0..5 {
            mat.touch(Addr::new(0)); // region 0 -> entry 0
        }
        mat.touch(Addr::new(16 * 1024)); // region 16 -> entry 0 too
        assert_eq!(mat.count(Addr::new(16 * 1024)), 1);
        assert_eq!(mat.count(Addr::new(0)), 0); // displaced
    }

    #[test]
    fn equal_counts_do_not_exclude() {
        let mat = MemoryAccessTable::new(16, 1024);
        // Both untracked: 0 vs 0.
        assert!(!mat.should_exclude(Addr::new(0), Addr::new(4096)));
    }
}
