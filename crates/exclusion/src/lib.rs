//! Cache exclusion with miss-classification filtering (paper §5.3).
//!
//! Not every line deserves a cache slot: streaming data with a short
//! burst of use evicts lines with long-term value. *Cache exclusion*
//! redirects such lines into a small bypass buffer instead of the
//! cache. The paper compares:
//!
//! * the **MAT** (Johnson & Hwu): a 1 K-entry table of per-region
//!   access-frequency counters, read and updated on *every* access —
//!   exclude a miss whose region is colder than the victim's;
//! * four **MCT-based** filters that are consulted only on misses:
//!   exclude *capacity* misses (the paper's winner), exclude
//!   *conflict* misses, and region-history variants of both.
//!
//! Excluding capacity misses wins because streaming data is exactly
//! what the MCT labels capacity, while lines with conflict evidence
//! have proven their worth in the set.
//!
//! # Examples
//!
//! ```
//! use exclusion::{ExclusionConfig, ExclusionPolicy, ExclusionSystem};
//! use cpu_model::{CpuConfig, OooModel};
//! use trace_gen::pattern::SequentialSweep;
//! use trace_gen::TraceSource;
//! use sim_core::Addr;
//!
//! // A pure stream: every miss is capacity, all excluded.
//! let trace: Vec<_> = SequentialSweep::new(Addr::new(0), 1 << 20, 8)
//!     .take_events(4_000)
//!     .collect();
//! let mut sys = ExclusionSystem::paper_default(ExclusionConfig::new(ExclusionPolicy::Capacity))?;
//! OooModel::new(CpuConfig::paper_default()).run(&mut sys, trace);
//! assert!(sys.stats().excluded > 400);
//! # Ok::<(), cache_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mat;
mod system;

pub use mat::MemoryAccessTable;
pub use system::{ExclusionConfig, ExclusionPolicy, ExclusionStats, ExclusionSystem};
