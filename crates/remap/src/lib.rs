//! Runtime conflict avoidance through page remapping (paper §5.6).
//!
//! The cache miss lookaside buffer (Bershad et al.) counts cache
//! misses by page so the operating system can change the
//! virtual-to-physical mapping of two pages that collide in a large
//! direct-mapped cache. The paper's observation: with the MCT, the
//! buffer can count **only conflict misses**, so pages that miss for
//! capacity reasons — which remapping cannot help — never trigger a
//! useless (and expensive) reallocation.
//!
//! This crate builds the whole loop:
//!
//! * [`MissLookasideBuffer`] — per-page miss counters, optionally
//!   filtered to conflict misses;
//! * [`PageMapper`] — the virtual→physical mapping with page-color
//!   control;
//! * [`RemappingCache`] — a classifying cache accessed through the
//!   mapper, with an OS-style policy that periodically remaps the
//!   worst page to the least-loaded color.
//!
//! # Examples
//!
//! ```
//! use conflict_remap::{CountPolicy, RemapConfig, RemappingCache};
//! use sim_core::Addr;
//!
//! let mut cache = RemappingCache::paper_default(RemapConfig::new(CountPolicy::ConflictOnly))?;
//! // Two pages, 16 KB apart: same cache color, guaranteed conflicts.
//! for _ in 0..4_000 {
//!     cache.access(Addr::new(0x0000));
//!     cache.access(Addr::new(0x4000));
//! }
//! assert!(cache.stats().remaps >= 1);            // the OS stepped in
//! assert!(cache.stats().tail_miss_rate() < 0.05); // and the conflicts stopped
//! # Ok::<(), cache_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod system;

pub use system::RemapSystem;

use cache_model::{CacheGeometry, ConfigError};
use mct::{ClassifyingCache, MissClass, TagBits};
use sim_core::hash::FxHashMap;
use sim_core::Addr;

/// Which misses the lookaside buffer counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CountPolicy {
    /// Count every miss (the original cache miss lookaside buffer).
    AllMisses,
    /// Count only misses the MCT classifies as conflicts (the paper's
    /// §5.6 proposal) — capacity-missing pages never trigger remaps.
    ConflictOnly,
}

/// Per-page miss counters.
#[derive(Debug, Clone, Default)]
pub struct MissLookasideBuffer {
    counts: FxHashMap<u64, u64>,
}

impl MissLookasideBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one counted miss for a virtual page.
    pub fn record(&mut self, vpage: u64) {
        *self.counts.entry(vpage).or_insert(0) += 1;
    }

    /// The counted misses for a page this interval.
    #[must_use]
    pub fn count(&self, vpage: u64) -> u64 {
        self.counts.get(&vpage).copied().unwrap_or(0)
    }

    /// The page with the most counted misses, if any.
    #[must_use]
    pub fn hottest(&self) -> Option<(u64, u64)> {
        self.counts
            .iter()
            .map(|(&p, &c)| (p, c))
            .max_by_key(|&(_, c)| c)
    }

    /// Clears all counters (end of an OS sampling interval).
    pub fn reset(&mut self) {
        self.counts.clear();
    }
}

/// The virtual→physical page mapping, with control over page colors.
///
/// A page's *color* is the cache region it maps to:
/// `physical_page % num_colors` where
/// `num_colors = cache_size / page_size`.
#[derive(Debug, Clone)]
pub struct PageMapper {
    page_size: u64,
    num_colors: u64,
    map: FxHashMap<u64, u64>,
    /// Next free physical page per color, for allocation.
    next_free: Vec<u64>,
}

impl PageMapper {
    /// Creates an identity-by-default mapper for the given page size
    /// and color count.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two or `num_colors` is
    /// zero.
    #[must_use]
    pub fn new(page_size: u64, num_colors: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(num_colors > 0, "need at least one color");
        // Fresh physical pages are handed out from a high region so
        // they never collide with identity-mapped pages.
        let base = 1u64 << 40;
        let next_free = (0..num_colors).map(|c| base / page_size + c).collect();
        PageMapper {
            page_size,
            num_colors,
            map: FxHashMap::default(),
            next_free,
        }
    }

    /// The mapper's page size in bytes.
    #[must_use]
    pub const fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Number of page colors.
    #[must_use]
    pub const fn num_colors(&self) -> u64 {
        self.num_colors
    }

    /// The virtual page an address belongs to.
    #[must_use]
    pub fn vpage(&self, addr: Addr) -> u64 {
        addr.raw() / self.page_size
    }

    /// Translates a virtual address to its current physical address.
    #[must_use]
    pub fn translate(&self, addr: Addr) -> Addr {
        let vpage = self.vpage(addr);
        let ppage = self.map.get(&vpage).copied().unwrap_or(vpage);
        Addr::new(ppage * self.page_size + addr.raw() % self.page_size)
    }

    /// The color a virtual page currently maps to.
    #[must_use]
    pub fn color_of(&self, vpage: u64) -> u64 {
        let ppage = self.map.get(&vpage).copied().unwrap_or(vpage);
        ppage % self.num_colors
    }

    /// Moves a virtual page to a fresh physical page of the given
    /// color; returns the new physical page.
    pub fn remap(&mut self, vpage: u64, color: u64) -> u64 {
        assert!(color < self.num_colors, "color {color} out of range");
        let slot = &mut self.next_free[color as usize];
        let ppage = *slot;
        *slot += self.num_colors;
        self.map.insert(vpage, ppage);
        ppage
    }
}

/// Configuration for [`RemappingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemapConfig {
    /// Which misses count toward remapping.
    pub policy: CountPolicy,
    /// OS sampling interval in accesses.
    pub interval: u64,
    /// Counted misses a page needs within one interval to be remapped.
    pub threshold: u64,
    /// Page size in bytes (4 KB).
    pub page_size: u64,
}

impl RemapConfig {
    /// A sensible default: 4 KB pages, sample every 1024 accesses,
    /// remap pages with ≥ 64 counted misses per interval.
    #[must_use]
    pub const fn new(policy: CountPolicy) -> Self {
        RemapConfig {
            policy,
            interval: 1024,
            threshold: 64,
            page_size: 4096,
        }
    }
}

/// Counters for the remapping loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RemapStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
    /// Remaps performed.
    pub remaps: u64,
    /// Accesses in the most recent completed interval.
    pub tail_accesses: u64,
    /// Misses in the most recent completed interval.
    pub tail_misses: u64,
}

impl RemapStats {
    /// Overall miss rate.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Miss rate of the most recent completed interval — the steady
    /// state after any remaps have taken effect.
    #[must_use]
    pub fn tail_miss_rate(&self) -> f64 {
        if self.tail_accesses == 0 {
            0.0
        } else {
            self.tail_misses as f64 / self.tail_accesses as f64
        }
    }
}

/// A classifying cache accessed through a [`PageMapper`], with an
/// OS-style remapping policy driven by a [`MissLookasideBuffer`].
#[derive(Debug)]
pub struct RemappingCache {
    cfg: RemapConfig,
    cache: ClassifyingCache,
    mapper: PageMapper,
    mlb: MissLookasideBuffer,
    /// Aggregate counted misses per color this interval.
    color_load: Vec<u64>,
    /// Exponentially decayed per-color pressure across intervals, so
    /// a freshly vacated color is not mistaken for a safe target the
    /// moment its tenant goes quiet.
    color_pressure: Vec<f64>,
    interval_accesses: u64,
    interval_misses: u64,
    stats: RemapStats,
}

impl RemappingCache {
    /// Creates the loop over an explicit cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if the cache is smaller than one page.
    #[must_use]
    pub fn new(cfg: RemapConfig, geom: CacheGeometry) -> Self {
        let num_colors = geom.size_bytes() / cfg.page_size;
        assert!(num_colors >= 1, "cache smaller than a page");
        RemappingCache {
            cfg,
            cache: ClassifyingCache::new(geom, TagBits::Full),
            mapper: PageMapper::new(cfg.page_size, num_colors),
            mlb: MissLookasideBuffer::new(),
            color_load: vec![0; num_colors as usize],
            color_pressure: vec![0.0; num_colors as usize],
            interval_accesses: 0,
            interval_misses: 0,
            stats: RemapStats::default(),
        }
    }

    /// The paper's 16 KB direct-mapped cache (4 page colors).
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_default(cfg: RemapConfig) -> Result<Self, ConfigError> {
        Ok(Self::new(cfg, CacheGeometry::new(16 * 1024, 1, 64)?))
    }

    /// The counters.
    #[must_use]
    pub fn stats(&self) -> &RemapStats {
        &self.stats
    }

    /// The mapper (to inspect colors in tests/examples).
    #[must_use]
    pub fn mapper(&self) -> &PageMapper {
        &self.mapper
    }

    /// One access through the translation and the cache; runs the OS
    /// policy at interval boundaries.
    pub fn access(&mut self, vaddr: Addr) {
        self.stats.accesses += 1;
        self.interval_accesses += 1;
        let paddr = self.mapper.translate(vaddr);
        let line = paddr.line(self.cache.geometry().line_size());
        let outcome = self.cache.access(line);
        if let Some(miss) = outcome.miss() {
            self.stats.misses += 1;
            self.interval_misses += 1;
            let counted = match self.cfg.policy {
                CountPolicy::AllMisses => true,
                CountPolicy::ConflictOnly => miss.class == MissClass::Conflict,
            };
            if counted {
                let vpage = self.mapper.vpage(vaddr);
                self.mlb.record(vpage);
                let color = self.mapper.color_of(vpage);
                self.color_load[color as usize] += 1;
            }
        }
        if self.interval_accesses >= self.cfg.interval {
            self.os_step();
        }
    }

    /// End of a sampling interval: remap the hottest page if it
    /// crossed the threshold, then reset the counters.
    fn os_step(&mut self) {
        // Fold this interval into the decayed pressure first, so the
        // target choice sees both current and recent history.
        for (p, &load) in self.color_pressure.iter_mut().zip(&self.color_load) {
            *p = *p * 0.5 + load as f64;
        }
        if let Some((vpage, count)) = self.mlb.hottest() {
            if count >= self.cfg.threshold {
                let target = self
                    .color_pressure
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c as u64)
                    .expect("at least one color");
                if target != self.mapper.color_of(vpage) {
                    self.mapper.remap(vpage, target);
                    self.stats.remaps += 1;
                    // The moved page will land on the target color next
                    // interval; bias its pressure up so a second mover
                    // in the same step does not pile onto it.
                    self.color_pressure[target as usize] += count as f64;
                    // The page's lines move to new physical addresses;
                    // the old lines die in place (no flush needed for
                    // the statistics we track — they will simply never
                    // be referenced again).
                }
            }
        }
        self.stats.tail_accesses = self.interval_accesses;
        self.stats.tail_misses = self.interval_misses;
        self.interval_accesses = 0;
        self.interval_misses = 0;
        self.mlb.reset();
        self.color_load.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pages(cache: &mut RemappingCache, pages: &[u64], rounds: usize) {
        for _ in 0..rounds {
            for &p in pages {
                cache.access(Addr::new(p * 4096));
            }
        }
    }

    #[test]
    fn colliding_pages_get_separated() {
        let mut cache =
            RemappingCache::paper_default(RemapConfig::new(CountPolicy::ConflictOnly)).unwrap();
        // Pages 0 and 4 share color 0 in a 4-color cache.
        run_pages(&mut cache, &[0, 4], 4_000);
        assert!(cache.stats().remaps >= 1, "no remap happened");
        assert_ne!(cache.mapper().color_of(0), cache.mapper().color_of(4));
        assert!(
            cache.stats().tail_miss_rate() < 0.05,
            "conflicts persist: tail miss rate {}",
            cache.stats().tail_miss_rate()
        );
    }

    #[test]
    fn conflict_only_ignores_capacity_pages() {
        // A long streaming sweep: every page misses once per lap
        // (capacity), never twice in a row.
        let mut conflict_only =
            RemappingCache::paper_default(RemapConfig::new(CountPolicy::ConflictOnly)).unwrap();
        let mut all_misses =
            RemappingCache::paper_default(RemapConfig::new(CountPolicy::AllMisses)).unwrap();
        // 64 pages = 256 KB, swept repeatedly: pure capacity traffic
        // at page granularity.
        let pages: Vec<u64> = (0..64).collect();
        for _ in 0..20 {
            for &p in &pages {
                for line in 0..64 {
                    let addr = Addr::new(p * 4096 + line * 64);
                    conflict_only.access(addr);
                    all_misses.access(addr);
                }
            }
        }
        // The unfiltered counter remaps pointlessly; the MCT-filtered
        // one holds back (the paper's claim).
        assert!(
            conflict_only.stats().remaps * 4 < all_misses.stats().remaps.max(1) * 3
                || conflict_only.stats().remaps == 0,
            "conflict-only {} vs all-misses {}",
            conflict_only.stats().remaps,
            all_misses.stats().remaps
        );
    }

    #[test]
    fn mapper_translation_preserves_offsets() {
        let mut m = PageMapper::new(4096, 4);
        m.remap(7, 2);
        let a = Addr::new(7 * 4096 + 123);
        let t = m.translate(a);
        assert_eq!(t.raw() % 4096, 123);
        assert_eq!((t.raw() / 4096) % 4, 2);
    }

    #[test]
    fn remapped_pages_get_unique_frames() {
        let mut m = PageMapper::new(4096, 4);
        let p1 = m.remap(1, 3);
        let p2 = m.remap(2, 3);
        let p3 = m.remap(3, 3);
        assert_ne!(p1, p2);
        assert_ne!(p2, p3);
        assert_eq!(p1 % 4, 3);
        assert_eq!(p2 % 4, 3);
    }

    #[test]
    fn untouched_pages_are_identity_mapped() {
        let m = PageMapper::new(4096, 4);
        assert_eq!(m.translate(Addr::new(0x1234_5678)), Addr::new(0x1234_5678));
    }

    #[test]
    fn mlb_tracks_hottest() {
        let mut mlb = MissLookasideBuffer::new();
        for _ in 0..5 {
            mlb.record(10);
        }
        mlb.record(20);
        assert_eq!(mlb.hottest(), Some((10, 5)));
        assert_eq!(mlb.count(20), 1);
        mlb.reset();
        assert_eq!(mlb.hottest(), None);
    }

    #[test]
    fn two_colliding_pairs_resolve_over_time() {
        let mut cache =
            RemappingCache::paper_default(RemapConfig::new(CountPolicy::ConflictOnly)).unwrap();
        // Pages 1 & 5 ping-pong in color 1; pages 2 & 6 in color 2.
        run_pages(&mut cache, &[1, 5, 2, 6], 6_000);
        // The OS separates both pairs until the ping-pong stops.
        assert!(cache.stats().remaps >= 2, "remaps {}", cache.stats().remaps);
        assert!(
            cache.stats().tail_miss_rate() < 0.05,
            "tail miss rate {}",
            cache.stats().tail_miss_rate()
        );
    }

    #[test]
    fn deep_round_robin_is_invisible_to_the_mct() {
        // A three-page round-robin in one color: the MCT remembers
        // only the most recent eviction, so none of these misses ever
        // matches — the classification is capacity, and the
        // conflict-only policy (correctly per its design, a known
        // limitation the paper acknowledges) never remaps. The
        // unfiltered counter still fixes it.
        let mut conflict_only =
            RemappingCache::paper_default(RemapConfig::new(CountPolicy::ConflictOnly)).unwrap();
        let mut all_misses =
            RemappingCache::paper_default(RemapConfig::new(CountPolicy::AllMisses)).unwrap();
        run_pages(&mut conflict_only, &[1, 5, 9], 4_000);
        run_pages(&mut all_misses, &[1, 5, 9], 4_000);
        assert_eq!(conflict_only.stats().remaps, 0);
        assert!(all_misses.stats().remaps >= 1);
        assert!(all_misses.stats().tail_miss_rate() < conflict_only.stats().tail_miss_rate());
    }
}
