//! The remapping loop as a pluggable memory system: virtual-address
//! translation in front of the paper's L1 + miss path, with the OS
//! policy running at interval boundaries — so the IPC effect of page
//! remapping can be measured under the same CPU model as every other
//! architecture.

use cache_model::{CacheGeometry, ConfigError};
use cpu_model::{MemResponse, MemorySystem, Plumbing};
use mct::{ClassifyingCache, MissClass, TagBits};
use sim_core::Cycle;
use trace_gen::MemoryAccess;

use crate::{CountPolicy, MissLookasideBuffer, PageMapper, RemapConfig, RemapStats};

/// Extra cycles charged for a remap (page copy + TLB shootdown),
/// modeled as pipeline stall on the access that triggers it.
const REMAP_PENALTY: u64 = 2_000;

/// A timed memory system with OS-driven conflict-avoiding page
/// remapping (paper §5.6 / Bershad et al.).
///
/// # Examples
///
/// ```
/// use conflict_remap::{CountPolicy, RemapConfig, RemapSystem};
/// use cpu_model::{CpuConfig, OooModel};
/// use trace_gen::pattern::SetConflict;
/// use trace_gen::TraceSource;
/// use sim_core::Addr;
///
/// // Two pages ping-ponging in one cache color.
/// let trace: Vec<_> = SetConflict::new(Addr::new(0), 2, 16 * 1024, 1)
///     .take_events(20_000)
///     .collect();
/// let mut sys = RemapSystem::paper_default(RemapConfig::new(CountPolicy::ConflictOnly))?;
/// OooModel::new(CpuConfig::paper_default()).run(&mut sys, trace);
/// assert!(sys.stats().remaps >= 1);
/// # Ok::<(), cache_model::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct RemapSystem {
    cfg: RemapConfig,
    l1: ClassifyingCache,
    mapper: PageMapper,
    mlb: MissLookasideBuffer,
    color_load: Vec<u64>,
    color_pressure: Vec<f64>,
    plumbing: Plumbing,
    interval_accesses: u64,
    interval_misses: u64,
    /// Stall imposed on the next access by a just-performed remap.
    penalty_until: Cycle,
    stats: RemapStats,
}

impl RemapSystem {
    /// Creates the system over an explicit L1 geometry and miss path.
    ///
    /// # Panics
    ///
    /// Panics if the cache is smaller than one page.
    #[must_use]
    pub fn new(cfg: RemapConfig, geom: CacheGeometry, plumbing: Plumbing) -> Self {
        let num_colors = geom.size_bytes() / cfg.page_size;
        assert!(num_colors >= 1, "cache smaller than a page");
        RemapSystem {
            cfg,
            l1: ClassifyingCache::new(geom, TagBits::Full),
            mapper: PageMapper::new(cfg.page_size, num_colors),
            mlb: MissLookasideBuffer::new(),
            color_load: vec![0; num_colors as usize],
            color_pressure: vec![0.0; num_colors as usize],
            plumbing,
            interval_accesses: 0,
            interval_misses: 0,
            penalty_until: Cycle::ZERO,
            stats: RemapStats::default(),
        }
    }

    /// The paper's 16 KB direct-mapped L1 over the default miss path.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_default(cfg: RemapConfig) -> Result<Self, ConfigError> {
        Ok(Self::new(
            cfg,
            CacheGeometry::new(16 * 1024, 1, 64)?,
            Plumbing::paper_default()?,
        ))
    }

    /// The counters.
    #[must_use]
    pub fn stats(&self) -> &RemapStats {
        &self.stats
    }

    /// The mapper, for color inspection.
    #[must_use]
    pub fn mapper(&self) -> &PageMapper {
        &self.mapper
    }

    fn os_step(&mut self, now: Cycle) {
        for (p, &load) in self.color_pressure.iter_mut().zip(&self.color_load) {
            *p = *p * 0.5 + load as f64;
        }
        if let Some((vpage, count)) = self.mlb.hottest() {
            if count >= self.cfg.threshold {
                let target = self
                    .color_pressure
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c as u64)
                    .expect("at least one color");
                if target != self.mapper.color_of(vpage) {
                    self.mapper.remap(vpage, target);
                    self.stats.remaps += 1;
                    self.color_pressure[target as usize] += count as f64;
                    self.penalty_until = now + REMAP_PENALTY;
                }
            }
        }
        self.stats.tail_accesses = self.interval_accesses;
        self.stats.tail_misses = self.interval_misses;
        self.interval_accesses = 0;
        self.interval_misses = 0;
        self.mlb.reset();
        self.color_load.iter_mut().for_each(|c| *c = 0);
    }
}

impl MemorySystem for RemapSystem {
    fn access(&mut self, access: MemoryAccess, now: Cycle) -> MemResponse {
        self.stats.accesses += 1;
        self.interval_accesses += 1;
        // A remap in progress stalls the memory system (page copy).
        let now = now.max(self.penalty_until);

        let paddr = self.mapper.translate(access.addr);
        let line = paddr.line(self.l1.geometry().line_size());
        let grant = self.plumbing.l1_grant(line, now);
        let l1_done = grant + self.plumbing.timings().l1_latency;

        let response = if self.l1.probe(line).is_some() {
            MemResponse::at(l1_done)
        } else {
            self.stats.misses += 1;
            self.interval_misses += 1;
            let class = self.l1.classify_miss(line);
            let counted = match self.cfg.policy {
                CountPolicy::AllMisses => true,
                CountPolicy::ConflictOnly => class == MissClass::Conflict,
            };
            if counted {
                let vpage = self.mapper.vpage(access.addr);
                self.mlb.record(vpage);
                let color = self.mapper.color_of(vpage);
                self.color_load[color as usize] += 1;
            }
            let ready = self.plumbing.fetch_demand(line, grant);
            let _ = self.l1.fill(line, class.is_conflict());
            MemResponse::at(ready)
        };

        if self.interval_accesses >= self.cfg.interval {
            self.os_step(response.ready);
        }
        response
    }

    fn label(&self) -> String {
        match self.cfg.policy {
            CountPolicy::AllMisses => "page remapping (all misses)".to_owned(),
            CountPolicy::ConflictOnly => "page remapping (MCT-filtered)".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_model::{BaselineSystem, CpuConfig, OooModel};
    use sim_core::Addr;
    use trace_gen::pattern::SetConflict;
    use trace_gen::{TraceEvent, TraceSource};

    fn ping_pong(n: usize) -> Vec<TraceEvent> {
        // Two pages 16 KB apart: same color, permanent conflicts
        // without remapping.
        SetConflict::new(Addr::new(0), 2, 16 * 1024, 1)
            .with_work(7)
            .take_events(n)
            .collect()
    }

    #[test]
    fn remapping_beats_baseline_on_page_conflicts() {
        let trace = ping_pong(40_000);
        let cpu = OooModel::new(CpuConfig::paper_default());
        let mut base = BaselineSystem::paper_default().unwrap();
        let base_report = cpu.run(&mut base, trace.clone());
        let mut remap =
            RemapSystem::paper_default(RemapConfig::new(CountPolicy::ConflictOnly)).unwrap();
        let remap_report = cpu.run(&mut remap, trace);
        assert!(remap.stats().remaps >= 1);
        assert!(
            remap_report.speedup_over(&base_report) > 1.3,
            "speedup {}",
            remap_report.speedup_over(&base_report)
        );
    }

    #[test]
    fn remap_penalty_is_charged() {
        // With an absurd threshold the OS never fires and the system
        // behaves like the baseline; with the normal config the remap
        // penalty appears exactly `remaps` times.
        let trace = ping_pong(10_000);
        let cpu = OooModel::new(CpuConfig::paper_default());
        let mut sys =
            RemapSystem::paper_default(RemapConfig::new(CountPolicy::ConflictOnly)).unwrap();
        let report = cpu.run(&mut sys, trace);
        assert!(sys.stats().remaps >= 1);
        // Despite paying the penalty, the run still beats a
        // never-remapping configuration over a long enough trace.
        let trace2 = ping_pong(10_000);
        let mut frozen = RemapSystem::paper_default(RemapConfig {
            threshold: u64::MAX,
            ..RemapConfig::new(CountPolicy::ConflictOnly)
        })
        .unwrap();
        let frozen_report = cpu.run(&mut frozen, trace2);
        assert_eq!(frozen.stats().remaps, 0);
        assert!(report.cycles < frozen_report.cycles);
    }

    #[test]
    fn streaming_triggers_no_remaps_under_conflict_filter() {
        let trace: Vec<TraceEvent> =
            trace_gen::pattern::SequentialSweep::new(Addr::new(0), 1 << 21, 8)
                .with_work(4)
                .take_events(40_000)
                .collect();
        let cpu = OooModel::new(CpuConfig::paper_default());
        let mut sys =
            RemapSystem::paper_default(RemapConfig::new(CountPolicy::ConflictOnly)).unwrap();
        cpu.run(&mut sys, trace);
        assert_eq!(
            sys.stats().remaps,
            0,
            "capacity traffic must not trigger remaps"
        );
    }
}
