//! Property tests for the page mapper.

use conflict_remap::PageMapper;
use proptest::prelude::*;
use sim_core::Addr;

proptest! {
    /// Translation always preserves the page offset, remapped pages
    /// land on the requested color, and distinct virtual pages never
    /// share a physical frame.
    #[test]
    fn mapper_invariants(
        remaps in prop::collection::vec((0u64..64, 0u64..4), 0..100),
        probes in prop::collection::vec(0u64..(64 * 4096), 1..50)
    ) {
        let mut m = PageMapper::new(4096, 4);
        for (vpage, color) in remaps {
            m.remap(vpage, color);
            prop_assert_eq!(m.color_of(vpage), color);
        }
        // Offsets survive translation.
        for raw in probes {
            let t = m.translate(Addr::new(raw));
            prop_assert_eq!(t.raw() % 4096, raw % 4096);
        }
        // Injectivity over the touched region: distinct vpages map to
        // distinct frames.
        let mut frames = std::collections::HashSet::new();
        for vpage in 0..64u64 {
            let frame = m.translate(Addr::new(vpage * 4096)).raw() / 4096;
            prop_assert!(frames.insert(frame), "frame {frame} shared");
        }
    }
}
