//! Statistical accuracy bounds for the SHARDS sampled engine: at
//! R ∈ {0.1, 0.01} on seeded dense / conflict / spread /
//! working-set workloads, the sampled miss-ratio curve stays within
//! 0.02 of the exact curve at every evaluated capacity, and the
//! sampled run is byte-identical across thread counts and re-runs
//! (the filter is a stateless hash; the only RNG is seeded).
//!
//! Capacities are chosen away from the workloads' working-set sizes:
//! a cyclic sweep's curve is a step at its working set, and the
//! sampled step position fluctuates by the binomial noise of the
//! admitted line count, so evaluating *on* the step would turn a
//! one-line sampling fluctuation into an O(1) ratio difference. The
//! ladder below keeps every capacity several standard deviations
//! from every step.

use mrc::{ShardsEngine, StackDistanceEngine};
use sim_core::rng::SplitMix64;

/// Events per workload: enough that at R = 0.01 a couple of thousand
/// sampled events back each ratio estimate.
const EVENTS: usize = 240_000;

/// Evaluation ladder, in lines (see module docs for spacing).
const CAPACITIES: [u64; 6] = [100, 1_000, 3_000, 10_000, 50_000, 100_000];

/// Cyclic sequential sweep over 20 000 lines.
fn dense() -> Vec<u64> {
    (0..EVENTS).map(|i| (i % 20_000) as u64).collect()
}

/// Two strided regions fighting: 14 000 distinct lines, interleaved.
fn conflict() -> Vec<u64> {
    (0..EVENTS)
        .map(|i| {
            let slot = (i % 14_000) as u64;
            if i % 2 == 0 {
                slot << 6
            } else {
                (1 << 26) | (slot << 6)
            }
        })
        .collect()
}

/// Seeded uniform random lines over a 40 000-line region.
fn spread() -> Vec<u64> {
    let mut rng = SplitMix64::new(0x5EED_0C0F_FEE0_0001);
    (0..EVENTS).map(|_| rng.next_below(40_000)).collect()
}

/// Hot cyclic working set of `w` lines with a 1-in-8 seeded cold
/// excursion that never re-references.
fn working_set(w: u64, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    let mut hot = 0u64;
    let mut cold = 1 << 40;
    (0..EVENTS)
        .map(|_| {
            if rng.chance(1.0 / 8.0) {
                cold += 1;
                cold
            } else {
                hot = (hot + 1) % w;
                hot
            }
        })
        .collect()
}

fn workloads() -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("dense", dense()),
        ("conflict", conflict()),
        ("spread", spread()),
        (
            "working_set_6000",
            working_set(6_000, 0x5EED_0C0F_FEE0_0002),
        ),
        (
            "working_set_24000",
            working_set(24_000, 0x5EED_0C0F_FEE0_0003),
        ),
    ]
}

fn exact_curve(lines: &[u64]) -> Vec<f64> {
    let mut engine = StackDistanceEngine::new();
    for &line in lines {
        engine.record_line(line);
    }
    CAPACITIES.iter().map(|&c| engine.miss_ratio(c)).collect()
}

fn sampled_curve(lines: &[u64], rate: f64) -> Vec<f64> {
    let mut engine = ShardsEngine::new(rate).expect("valid rate");
    for &line in lines {
        engine.record_line(line);
    }
    CAPACITIES.iter().map(|&c| engine.miss_ratio(c)).collect()
}

#[test]
fn sampled_curves_stay_within_tolerance_of_exact() {
    const TOLERANCE: f64 = 0.02;
    let mut worst: (f64, String) = (0.0, String::new());
    for (name, lines) in workloads() {
        let exact = exact_curve(&lines);
        for rate in [0.1, 0.01] {
            let sampled = sampled_curve(&lines, rate);
            for (i, (&e, &s)) in exact.iter().zip(&sampled).enumerate() {
                let err = (e - s).abs();
                if err > worst.0 {
                    worst = (
                        err,
                        format!(
                            "{name} R={rate} capacity={} exact={e:.4} sampled={s:.4}",
                            CAPACITIES[i]
                        ),
                    );
                }
            }
        }
    }
    assert!(
        worst.0 <= TOLERANCE,
        "max |sampled - exact| miss ratio {:.4} exceeds {TOLERANCE}: {}",
        worst.0,
        worst.1
    );
}

#[test]
fn sampled_run_is_byte_identical_across_threads_and_reruns() {
    // Each parallel cell replays one (workload, rate) pair; the
    // sampled histogram and bit-exact curve must not depend on the
    // thread count or on which run produced them.
    let cells: Vec<(usize, f64)> = (0..workloads().len())
        .flat_map(|w| [(w, 0.1), (w, 0.01)])
        .collect();
    let run = |threads: usize| -> Vec<Vec<u64>> {
        let all = workloads();
        sim_core::parallel::par_map_threads(threads, cells.clone(), |(w, rate)| {
            sampled_curve(&all[w].1, rate)
                .into_iter()
                .map(f64::to_bits)
                .collect()
        })
    };
    let single = run(1);
    let four = run(4);
    let rerun = run(4);
    assert_eq!(single, four, "curves differ between 1 and 4 threads");
    assert_eq!(four, rerun, "curves differ between re-runs");
}
