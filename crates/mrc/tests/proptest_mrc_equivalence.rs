//! Differential property tests for the MRC engines: the tree-based
//! [`StackDistanceEngine`] must reproduce the naive move-to-front
//! list oracle [`NaiveStackEngine`] event for event — identical
//! stack-distance histograms and miss ratios — across random traces,
//! line sizes, and chunk boundaries (torn / size-1 / whole-trace),
//! replayed at 1 and 4 worker threads.

use mrc::{NaiveStackEngine, ShardsEngine, StackDistanceEngine};
use proptest::prelude::*;

/// A small universe of byte addresses guarantees line reuse at every
/// generated line size.
const ADDR_UNIVERSE: u64 = 1 << 14;

/// Splits raw byte addresses into the `(set, tag)` arrays the chunked
/// replay path consumes, mirroring `trace_gen`'s decomposition.
fn decompose(addrs: &[u64], line_bits: u32, set_bits: u32) -> (Vec<u32>, Vec<u64>) {
    addrs
        .iter()
        .map(|&addr| {
            let line = addr >> line_bits;
            let set = (line & ((1 << set_bits) - 1)) as u32;
            (set, line >> set_bits)
        })
        .unzip()
}

/// Replays the whole trace through the naive oracle, per event.
fn naive_reference(addrs: &[u64], line_bits: u32) -> NaiveStackEngine {
    let mut oracle = NaiveStackEngine::new();
    for &addr in addrs {
        oracle.record_line(addr >> line_bits);
    }
    oracle
}

/// Replays decomposed chunks of `chunk` events through the tree
/// engine; the final chunk is torn whenever the trace length is not a
/// multiple of the chunk size.
fn tree_chunked(sets: &[u32], tags: &[u64], set_bits: u32, chunk: usize) -> StackDistanceEngine {
    let mut engine = StackDistanceEngine::new();
    for (s, t) in sets.chunks(chunk).zip(tags.chunks(chunk)) {
        engine.record_parts_block(s, t, set_bits);
    }
    engine
}

/// The capacity ladder the miss-ratio comparison is evaluated at.
const CAPACITIES: [u64; 8] = [1, 2, 3, 7, 16, 100, 1024, 1 << 20];

proptest! {
    /// Arbitrary chunk sizes (torn final chunks are the common case)
    /// against the naive oracle: same histogram, same miss ratio at
    /// every capacity.
    #[test]
    fn tree_engine_matches_naive_oracle_chunked(
        line_bits in 4u32..9,
        set_bits in 0u32..8,
        addrs in prop::collection::vec(0u64..ADDR_UNIVERSE, 1..500),
        chunk in 1usize..64,
    ) {
        let oracle = naive_reference(&addrs, line_bits);
        let (sets, tags) = decompose(&addrs, line_bits, set_bits);
        let engine = tree_chunked(&sets, &tags, set_bits, chunk);

        prop_assert_eq!(engine.histogram(), oracle.histogram());
        prop_assert_eq!(engine.distinct_lines(), oracle.distinct_lines());
        for cap in CAPACITIES {
            prop_assert_eq!(engine.miss_ratio(cap), oracle.miss_ratio(cap));
        }
    }

    /// A whole-trace chunk (chunk beyond the trace length) is one
    /// maximally torn chunk and must still match.
    #[test]
    fn whole_trace_chunk_matches_naive_oracle(
        line_bits in 4u32..9,
        set_bits in 0u32..8,
        addrs in prop::collection::vec(0u64..ADDR_UNIVERSE, 1..300),
    ) {
        let oracle = naive_reference(&addrs, line_bits);
        let (sets, tags) = decompose(&addrs, line_bits, set_bits);
        let engine = tree_chunked(&sets, &tags, set_bits, addrs.len() + 7);
        prop_assert_eq!(engine.histogram(), oracle.histogram());
    }

    /// Chunk size 1 degenerates to per-event replay exactly.
    #[test]
    fn chunk_size_one_matches_naive_oracle(
        line_bits in 4u32..9,
        set_bits in 0u32..8,
        addrs in prop::collection::vec(0u64..ADDR_UNIVERSE, 1..200),
    ) {
        let oracle = naive_reference(&addrs, line_bits);
        let (sets, tags) = decompose(&addrs, line_bits, set_bits);
        let engine = tree_chunked(&sets, &tags, set_bits, 1);
        prop_assert_eq!(engine.histogram(), oracle.histogram());
    }

    /// The SHARDS filter at rate 1 admits everything, so the sampled
    /// engine must equal both exact engines event for event.
    #[test]
    fn shards_rate_one_matches_naive_oracle(
        line_bits in 4u32..9,
        addrs in prop::collection::vec(0u64..ADDR_UNIVERSE, 1..300),
    ) {
        let oracle = naive_reference(&addrs, line_bits);
        let mut sampled = ShardsEngine::new(1.0).expect("rate 1 is valid");
        for &addr in &addrs {
            sampled.record_line(addr >> line_bits);
        }
        prop_assert_eq!(sampled.histogram(), oracle.histogram());
        for cap in CAPACITIES {
            prop_assert_eq!(sampled.miss_ratio(cap), oracle.miss_ratio(cap));
        }
    }

    /// Engines replayed as parallel cells (1 and 4 worker threads, the
    /// chunk size varying per cell) all agree with the oracle and with
    /// each other — the engine has no hidden global state, and chunk
    /// geometry never leaks into the histogram.
    #[test]
    fn parallel_replay_is_thread_count_invariant(
        line_bits in 4u32..9,
        set_bits in 0u32..8,
        addrs in prop::collection::vec(0u64..ADDR_UNIVERSE, 1..300),
    ) {
        let oracle = naive_reference(&addrs, line_bits);
        let (sets, tags) = decompose(&addrs, line_bits, set_bits);
        let chunks: Vec<usize> = vec![1, 7, 64, addrs.len() + 1];
        for threads in [1usize, 4] {
            let engines = sim_core::parallel::par_map_threads(
                threads,
                chunks.clone(),
                |chunk| tree_chunked(&sets, &tags, set_bits, chunk),
            );
            for engine in &engines {
                prop_assert_eq!(engine.histogram(), oracle.histogram());
            }
        }
    }
}
