//! SHARDS-style spatial sampling: fixed-rate hash filtering of lines.
//!
//! SHARDS (Waldspurger et al., FAST '15) observes that a uniform
//! *spatial* filter — admit a line iff `hash(line) < R · 2^64` — keeps
//! every access to an admitted line, so reuse behaviour within the
//! sample is undistorted; sampled stack distances simply shrink by
//! the factor `R` in expectation. The engine therefore runs the exact
//! tree over the ~`R` fraction of lines that pass the filter and
//! rescales at evaluation time: a capacity of `C` lines corresponds
//! to a sampled-unit threshold of `ceil(C · R)`.
//!
//! The filter hash is a fixed SplitMix64 finalizer over the line
//! address — no RNG, no state — so two runs (at any thread count)
//! sample identical line sets and produce byte-identical output.

use crate::exact::StackDistanceEngine;
use crate::histogram::{CurvePoint, DistanceHistogram, MissRatioCurve};

/// Fixed XOR whitening applied before the finalizer so line 0 does
/// not hash to 0 (2^64 / phi, the SplitMix64 increment).
const SPATIAL_WHITEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// The SplitMix64 finalizer over the whitened line address: a
/// stateless bijection on `u64`, uniform enough that comparing it
/// against `R · 2^64` admits lines at rate `R`.
#[must_use]
#[inline]
fn spatial_hash(line: u64) -> u64 {
    let mut z = line ^ SPATIAL_WHITEN;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The sampled engine: the exact tree over a deterministic ~`R`
/// subset of lines, with distances rescaled at evaluation time.
#[derive(Debug, Clone)]
pub struct ShardsEngine {
    inner: StackDistanceEngine,
    rate: f64,
    /// Admit a line iff its spatial hash is `<= threshold`.
    threshold: u64,
    /// All events offered, sampled or not.
    offered: u64,
}

impl ShardsEngine {
    /// Creates an engine sampling lines at `rate` (`0 < rate <= 1`);
    /// `None` if the rate is outside that range or not finite. A rate
    /// of exactly 1 admits every line and degenerates to the exact
    /// engine.
    #[must_use]
    pub fn new(rate: f64) -> Option<Self> {
        if !rate.is_finite() || rate <= 0.0 || rate > 1.0 {
            return None;
        }
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * (u64::MAX as f64)) as u64
        };
        Some(ShardsEngine {
            inner: StackDistanceEngine::new(),
            rate,
            threshold,
            offered: 0,
        })
    }

    /// Records one line access, filtering by the spatial hash.
    pub fn record_line(&mut self, line: u64) {
        self.offered += 1;
        if spatial_hash(line) <= self.threshold {
            self.inner.record_line(line);
        }
    }

    /// Records a chunk of decomposed references (see
    /// [`crate::line_from_parts`]).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn record_parts_block(&mut self, sets: &[u32], tags: &[u64], set_bits: u32) {
        assert_eq!(sets.len(), tags.len(), "sets/tags length mismatch");
        for (&set, &tag) in sets.iter().zip(tags) {
            self.record_line(crate::line_from_parts(set, tag, set_bits));
        }
    }

    /// The configured sampling rate `R`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Events offered to the filter (sampled or not).
    #[must_use]
    pub fn offered_events(&self) -> u64 {
        self.offered
    }

    /// Events that passed the filter and entered the tree.
    #[must_use]
    pub fn sampled_events(&self) -> u64 {
        self.inner.histogram().total()
    }

    /// Distinct sampled lines resident in the tree — the engine's
    /// memory footprint is proportional to this, not to the trace's
    /// full line population.
    #[must_use]
    pub fn distinct_sampled_lines(&self) -> u64 {
        self.inner.distinct_lines()
    }

    /// The raw histogram, in *sampled* distance units (unscaled).
    #[must_use]
    pub fn histogram(&self) -> &DistanceHistogram {
        self.inner.histogram()
    }

    /// Estimated miss ratio of a fully-associative LRU cache of
    /// `capacity_lines` lines: a sampled distance `d` estimates a
    /// true distance `d / R`, so the miss condition `d / R >=
    /// capacity` becomes `d >= ceil(capacity * R)` in sampled units.
    #[must_use]
    pub fn miss_ratio(&self, capacity_lines: u64) -> f64 {
        let scaled = (capacity_lines as f64 * self.rate).ceil() as u64;
        self.inner.histogram().miss_ratio(scaled)
    }

    /// Evaluates the estimated miss-ratio curve at the given
    /// capacities.
    #[must_use]
    pub fn curve(&self, capacities: &[u64]) -> MissRatioCurve {
        MissRatioCurve::from_points(
            capacities
                .iter()
                .map(|&c| CurvePoint {
                    capacity_lines: c,
                    miss_ratio: self.miss_ratio(c),
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StackDistanceEngine;

    #[test]
    fn rate_one_matches_exact_engine_exactly() {
        let mut sampled = ShardsEngine::new(1.0).unwrap();
        let mut exact = StackDistanceEngine::new();
        for i in 0..4_000u64 {
            let line = (i * 2654435761) % 777;
            sampled.record_line(line);
            exact.record_line(line);
        }
        assert_eq!(sampled.sampled_events(), sampled.offered_events());
        assert_eq!(sampled.histogram(), exact.histogram());
        for cap in [1u64, 16, 128, 777, 4096] {
            assert_eq!(sampled.miss_ratio(cap), exact.miss_ratio(cap));
        }
    }

    #[test]
    fn invalid_rates_are_rejected() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(ShardsEngine::new(bad).is_none(), "rate {bad}");
        }
    }

    #[test]
    fn filter_admits_roughly_rate_fraction_of_lines() {
        let rate = 0.1;
        let mut e = ShardsEngine::new(rate).unwrap();
        for line in 0..100_000u64 {
            e.record_line(line);
        }
        let frac = e.distinct_sampled_lines() as f64 / 100_000.0;
        assert!(
            (frac - rate).abs() < 0.01,
            "admitted fraction {frac} vs rate {rate}"
        );
    }

    #[test]
    fn sampling_is_deterministic_across_runs() {
        let run = || {
            let mut e = ShardsEngine::new(0.01).unwrap();
            for i in 0..50_000u64 {
                e.record_line((i * 48271) % 20_011);
            }
            (e.sampled_events(), e.histogram().clone())
        };
        assert_eq!(run(), run());
    }
}
