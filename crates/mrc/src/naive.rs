//! The naive O(n·m) stack-distance oracle: the textbook LRU stack as
//! a literal move-to-front list.
//!
//! Mattson's original stack algorithm keeps the lines in recency
//! order; an access's stack distance is its position in that list.
//! This implementation does exactly that with a `Vec` and a linear
//! scan — quadratic over the trace, but short enough to audit by eye.
//! It exists as the reference implementation the tree-based
//! [`crate::StackDistanceEngine`] is differentially tested against;
//! nothing performance-sensitive should use it.

use crate::histogram::{CurvePoint, DistanceHistogram, MissRatioCurve};

/// The reference stack-distance engine: a literal LRU recency list.
#[derive(Debug, Clone, Default)]
pub struct NaiveStackEngine {
    /// Lines in recency order, most recent first.
    stack: Vec<u64>,
    hist: DistanceHistogram,
}

impl NaiveStackEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one line access: its distance is its position in the
    /// recency list (cold if absent), then it moves to the front.
    pub fn record_line(&mut self, line: u64) {
        match self.stack.iter().position(|&l| l == line) {
            Some(pos) => {
                self.hist.record(pos as u64);
                self.stack.remove(pos);
            }
            None => self.hist.record_cold(),
        }
        self.stack.insert(0, line);
    }

    /// Records a chunk of decomposed references (see
    /// [`crate::line_from_parts`]).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn record_parts_block(&mut self, sets: &[u32], tags: &[u64], set_bits: u32) {
        assert_eq!(sets.len(), tags.len(), "sets/tags length mismatch");
        for (&set, &tag) in sets.iter().zip(tags) {
            self.record_line(crate::line_from_parts(set, tag, set_bits));
        }
    }

    /// Distinct lines seen so far.
    #[must_use]
    pub fn distinct_lines(&self) -> u64 {
        self.stack.len() as u64
    }

    /// The accumulated distance histogram.
    #[must_use]
    pub fn histogram(&self) -> &DistanceHistogram {
        &self.hist
    }

    /// Miss ratio of a fully-associative LRU cache of
    /// `capacity_lines` lines.
    #[must_use]
    pub fn miss_ratio(&self, capacity_lines: u64) -> f64 {
        self.hist.miss_ratio(capacity_lines)
    }

    /// Evaluates the miss-ratio curve at the given capacities.
    #[must_use]
    pub fn curve(&self, capacities: &[u64]) -> MissRatioCurve {
        MissRatioCurve::from_points(
            capacities
                .iter()
                .map(|&c| CurvePoint {
                    capacity_lines: c,
                    miss_ratio: self.miss_ratio(c),
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_sweep_distances_equal_working_set_minus_one() {
        let mut e = NaiveStackEngine::new();
        for _ in 0..3 {
            for line in 0..4u64 {
                e.record_line(line);
            }
        }
        // 4 cold accesses, then every access returns at distance 3.
        assert_eq!(e.histogram().cold(), 4);
        assert_eq!(e.histogram().bucket(3), 8);
        assert_eq!(e.distinct_lines(), 4);
        // A 4-line cache holds the whole loop; a 3-line cache thrashes.
        assert!((e.miss_ratio(4) - 4.0 / 12.0).abs() < 1e-12);
        assert!((e.miss_ratio(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let mut e = NaiveStackEngine::new();
        e.record_line(7);
        e.record_line(7);
        assert_eq!(e.histogram().bucket(0), 1);
        assert!((e.miss_ratio(1) - 0.5).abs() < 1e-12);
    }
}
