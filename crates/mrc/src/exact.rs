//! The single-pass exact stack-distance engine: an order-statistic
//! tree over last-access timestamps.
//!
//! Olken's classic algorithm: give every access a fresh timestamp
//! slot and keep one marker per *live* line at its most recent slot.
//! The stack distance of a re-access is then the number of markers at
//! slots later than the line's previous one — an order-statistic
//! query, answered here by a Fenwick tree in O(log U). Slots are
//! consumed monotonically, so the tree is compacted (live markers
//! renumbered densely) whenever it fills; each compaction frees at
//! least half the slots, keeping the amortised cost O(log U) per
//! event and the memory O(distinct lines).

use sim_core::hash::FxHashMap;

use crate::histogram::{CurvePoint, DistanceHistogram, MissRatioCurve};

/// A Fenwick (binary indexed) tree counting live markers per slot.
///
/// Stored in `u32` with wrapping arithmetic: a decrement is an add of
/// `u32::MAX` (two's complement), and because every true prefix sum
/// is a count of live lines — always representable — the wrapped
/// intermediate node values cancel out exactly in queries.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn with_slots(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, slot: u32, delta: u32) {
        let mut i = slot as usize + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta);
            i += i & i.wrapping_neg();
        }
    }

    /// Number of live markers at slots `<= slot`.
    fn prefix_through(&self, slot: u32) -> u32 {
        let mut i = slot as usize + 1;
        let mut sum = 0u32;
        while i > 0 {
            sum = sum.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// The exact single-pass engine: O(log U) per event, O(distinct
/// lines) memory, and a histogram identical to
/// [`crate::NaiveStackEngine`]'s event for event.
#[derive(Debug, Clone, Default)]
pub struct StackDistanceEngine {
    /// line -> slot of its most recent access.
    index: FxHashMap<u64, u32>,
    tree: Fenwick,
    /// Next unused slot; compaction renumbers when it hits `slots`.
    next_slot: u32,
    /// Total slots the tree currently addresses.
    slots: u32,
    /// Live lines (markers in the tree).
    live: u32,
    hist: DistanceHistogram,
}

impl StackDistanceEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one line access.
    pub fn record_line(&mut self, line: u64) {
        if self.next_slot == self.slots {
            self.compact();
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        match self.index.insert(line, slot) {
            Some(prev) => {
                // Live markers strictly after `prev` are exactly the
                // distinct lines touched since the previous access.
                let distance = u64::from(self.live - self.tree.prefix_through(prev));
                self.tree.add(prev, u32::MAX); // -1
                self.tree.add(slot, 1);
                self.hist.record(distance);
            }
            None => {
                self.live += 1;
                self.tree.add(slot, 1);
                self.hist.record_cold();
            }
        }
    }

    /// Records a chunk of decomposed references (see
    /// [`crate::line_from_parts`]).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn record_parts_block(&mut self, sets: &[u32], tags: &[u64], set_bits: u32) {
        assert_eq!(sets.len(), tags.len(), "sets/tags length mismatch");
        for (&set, &tag) in sets.iter().zip(tags) {
            self.record_line(crate::line_from_parts(set, tag, set_bits));
        }
    }

    /// Renumbers live markers densely into slot order, growing the
    /// slot space when more than half of it is live. Freeing at least
    /// half the slots each time keeps the amortised cost O(log U).
    fn compact(&mut self) {
        if u64::from(self.live) * 2 >= u64::from(self.slots) {
            self.slots = (self.slots * 2).max(64);
        }
        let mut markers: Vec<(u32, u64)> = self.index.iter().map(|(&l, &s)| (s, l)).collect();
        markers.sort_unstable_by_key(|&(slot, _)| slot);
        self.tree = Fenwick::with_slots(self.slots as usize);
        for (new_slot, &(_, line)) in markers.iter().enumerate() {
            self.index.insert(line, new_slot as u32);
            self.tree.add(new_slot as u32, 1);
        }
        self.next_slot = self.live;
    }

    /// Distinct lines seen so far.
    #[must_use]
    pub fn distinct_lines(&self) -> u64 {
        u64::from(self.live)
    }

    /// The accumulated distance histogram.
    #[must_use]
    pub fn histogram(&self) -> &DistanceHistogram {
        &self.hist
    }

    /// Miss ratio of a fully-associative LRU cache of
    /// `capacity_lines` lines.
    #[must_use]
    pub fn miss_ratio(&self, capacity_lines: u64) -> f64 {
        self.hist.miss_ratio(capacity_lines)
    }

    /// Evaluates the miss-ratio curve at the given capacities.
    #[must_use]
    pub fn curve(&self, capacities: &[u64]) -> MissRatioCurve {
        MissRatioCurve::from_points(
            capacities
                .iter()
                .map(|&c| CurvePoint {
                    capacity_lines: c,
                    miss_ratio: self.miss_ratio(c),
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveStackEngine;

    #[test]
    fn matches_naive_on_a_small_mixed_trace() {
        let trace: Vec<u64> = vec![0, 1, 2, 0, 3, 1, 1, 4, 2, 0, 5, 3, 0, 0, 6, 1];
        let mut fast = StackDistanceEngine::new();
        let mut slow = NaiveStackEngine::new();
        for &line in &trace {
            fast.record_line(line);
            slow.record_line(line);
        }
        assert_eq!(fast.histogram(), slow.histogram());
        assert_eq!(fast.distinct_lines(), slow.distinct_lines());
    }

    #[test]
    fn survives_many_compactions() {
        // 64 lines re-accessed round-robin for thousands of events
        // forces repeated slot exhaustion and renumbering.
        let mut fast = StackDistanceEngine::new();
        let mut slow = NaiveStackEngine::new();
        for i in 0..10_000u64 {
            let line = i % 64;
            fast.record_line(line);
            slow.record_line(line);
        }
        assert_eq!(fast.histogram(), slow.histogram());
        assert_eq!(fast.histogram().bucket(63), 10_000 - 64);
    }

    #[test]
    fn curve_is_monotone_in_capacity() {
        let mut e = StackDistanceEngine::new();
        for i in 0..5_000u64 {
            e.record_line(i * 7919 % 512);
        }
        let caps = [1u64, 2, 8, 64, 256, 1024];
        let curve = e.curve(&caps);
        for pair in curve.points().windows(2) {
            assert!(pair[0].miss_ratio >= pair[1].miss_ratio - 1e-12);
        }
    }
}
