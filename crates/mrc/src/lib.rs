//! Miss-ratio curves from exact LRU stack distances (ROADMAP item 4).
//!
//! The paper's Miss Classification Table is scored against a 3C shadow
//! oracle; this crate supplies an *independent* second ground truth.
//! An LRU **stack distance** (reuse distance) is the number of
//! distinct other lines touched between two consecutive accesses to
//! the same line; a fully-associative LRU cache of capacity `C` lines
//! hits exactly when the distance is `< C`. One pass over a trace
//! therefore yields the miss ratio of *every* capacity at once — the
//! miss-ratio curve — from a single distance histogram, with no cache
//! model in the loop.
//!
//! Three engines share that histogram:
//!
//! * [`NaiveStackEngine`] — the textbook O(n·m) move-to-front list.
//!   Trivially auditable; kept as the reference oracle the fast
//!   engines are differentially tested against.
//! * [`StackDistanceEngine`] — the single-pass exact engine: an
//!   order-statistic tree (Fenwick form) over last-access timestamps
//!   plus an [`FxHashMap`] line index, O(log U) amortised per event
//!   and O(distinct lines) memory.
//! * [`ShardsEngine`] — SHARDS-style fixed-rate spatial sampling: a
//!   deterministic hash of the line address admits each line with
//!   probability `R`, and sampled distances are scaled by `1/R` at
//!   evaluation time. Memory drops to O(sampled lines); the hash is
//!   unseeded-RNG-free, so output is byte-identical across thread
//!   counts and re-runs.
//!
//! # Examples
//!
//! ```
//! use mrc::StackDistanceEngine;
//!
//! let mut engine = StackDistanceEngine::new();
//! for line in [0u64, 1, 2, 0, 1, 2] {
//!     engine.record_line(line);
//! }
//! // Second round of accesses sees distance 2 each: a 2-line cache
//! // misses all six, a 4-line cache only the three cold misses.
//! assert_eq!(engine.miss_ratio(2), 1.0);
//! assert_eq!(engine.miss_ratio(4), 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exact;
mod histogram;
mod naive;
mod sampled;

pub use exact::StackDistanceEngine;
pub use histogram::{CurvePoint, DistanceHistogram, MissRatioCurve};
pub use naive::NaiveStackEngine;
pub use sampled::ShardsEngine;

/// Reassembles a full line address from its decomposed `(set, tag)`
/// parts — the inverse of the split `trace_gen::DecomposedTrace`
/// performs, so MRC engines can consume the same chunked arrays the
/// replay pipeline feeds the cache kernel.
#[must_use]
#[inline]
pub fn line_from_parts(set: u32, tag: u64, set_bits: u32) -> u64 {
    (tag << set_bits) | u64::from(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_from_parts_round_trips_the_decomposition() {
        let set_bits = 6;
        for line in [0u64, 1, 63, 64, 0xdead_beef] {
            let set = (line & ((1 << set_bits) - 1)) as u32;
            let tag = line >> set_bits;
            assert_eq!(line_from_parts(set, tag, set_bits), line);
        }
    }
}
