//! The stack-distance histogram and the miss-ratio curve read off it.
//!
//! Every engine in this crate funnels its observations into a
//! [`DistanceHistogram`]: one bucket per *raw* stack distance plus a
//! cold (first-touch) counter. Sampled engines store distances in
//! sampled units and scale only at evaluation time — the histogram
//! therefore stays O(distinct observed lines) even when the scaled
//! distances span the full trace footprint.

/// Histogram of LRU stack distances over one reference stream.
///
/// `buckets[d]` counts accesses whose distance was exactly `d`
/// (distinct *other* lines touched since the previous access to the
/// same line); `cold` counts first touches, whose distance is
/// infinite. The bucket vector grows lazily to the largest distance
/// seen, which is bounded by the number of distinct lines observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistanceHistogram {
    buckets: Vec<u64>,
    cold: u64,
    total: u64,
}

impl DistanceHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access at stack distance `distance`.
    pub fn record(&mut self, distance: u64) {
        let idx = usize::try_from(distance).unwrap_or(usize::MAX - 1);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Records one cold (first-touch) access.
    pub fn record_cold(&mut self) {
        self.cold += 1;
        self.total += 1;
    }

    /// Total accesses recorded (finite distances plus cold).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cold (first-touch) accesses recorded.
    #[must_use]
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Count recorded at exactly `distance`.
    #[must_use]
    pub fn bucket(&self, distance: u64) -> u64 {
        usize::try_from(distance)
            .ok()
            .and_then(|i| self.buckets.get(i))
            .copied()
            .unwrap_or(0)
    }

    /// One past the largest distance with a non-zero count.
    #[must_use]
    pub fn max_distance_bound(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Accesses whose distance is `>= threshold`, including cold
    /// accesses (infinite distance): the misses of an LRU cache
    /// holding `threshold` lines, in this histogram's distance units.
    #[must_use]
    pub fn tail(&self, threshold: u64) -> u64 {
        let start = usize::try_from(threshold).unwrap_or(usize::MAX);
        let finite: u64 = if start < self.buckets.len() {
            self.buckets[start..].iter().sum()
        } else {
            0
        };
        self.cold + finite
    }

    /// Miss ratio of an LRU cache holding `threshold` lines, in this
    /// histogram's distance units. Returns 0 for an empty histogram.
    #[must_use]
    pub fn miss_ratio(&self, threshold: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.tail(threshold) as f64 / self.total as f64
    }
}

/// One evaluated point of a miss-ratio curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Cache capacity in lines (fully-associative LRU).
    pub capacity_lines: u64,
    /// Misses over total accesses at that capacity.
    pub miss_ratio: f64,
}

/// A miss-ratio curve: miss ratio evaluated at a ladder of cache
/// capacities, monotonically non-increasing in capacity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MissRatioCurve {
    points: Vec<CurvePoint>,
}

impl MissRatioCurve {
    /// Builds a curve from already-evaluated points.
    #[must_use]
    pub fn from_points(points: Vec<CurvePoint>) -> Self {
        MissRatioCurve { points }
    }

    /// The evaluated points, in the order they were supplied.
    #[must_use]
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// The miss ratio at exactly `capacity_lines`, if that capacity
    /// was evaluated.
    #[must_use]
    pub fn at(&self, capacity_lines: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.capacity_lines == capacity_lines)
            .map(|p| p.miss_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_counts_cold_and_far_distances() {
        let mut h = DistanceHistogram::new();
        h.record_cold();
        h.record(0);
        h.record(3);
        h.record(3);
        assert_eq!(h.total(), 4);
        assert_eq!(h.cold(), 1);
        assert_eq!(h.bucket(3), 2);
        assert_eq!(h.tail(0), 4);
        assert_eq!(h.tail(1), 3);
        assert_eq!(h.tail(4), 1);
        assert_eq!(h.tail(1 << 40), 1);
    }

    #[test]
    fn miss_ratio_is_tail_over_total() {
        let mut h = DistanceHistogram::new();
        h.record_cold();
        h.record(1);
        h.record(1);
        h.record(5);
        assert!((h.miss_ratio(2) - 0.5).abs() < 1e-12);
        assert!((h.miss_ratio(1) - 1.0).abs() < 1e-12);
        assert_eq!(DistanceHistogram::new().miss_ratio(1), 0.0);
    }

    #[test]
    fn curve_lookup_by_capacity() {
        let curve = MissRatioCurve::from_points(vec![
            CurvePoint {
                capacity_lines: 16,
                miss_ratio: 0.5,
            },
            CurvePoint {
                capacity_lines: 64,
                miss_ratio: 0.25,
            },
        ]);
        assert_eq!(curve.at(64), Some(0.25));
        assert_eq!(curve.at(32), None);
        assert_eq!(curve.points().len(), 2);
    }
}
