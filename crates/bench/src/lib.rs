//! Benchmark support: shared event counts for the per-figure Criterion
//! targets.
//!
//! The real experiment runs use `experiments::DEFAULT_EVENTS` per
//! workload; the benches use [`BENCH_EVENTS`] so a full `cargo bench`
//! stays in the minutes range while still exercising every code path
//! of every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Events per workload for benchmark runs.
pub const BENCH_EVENTS: usize = 20_000;

// BENCH_EVENTS must cover several laps of the longest workload
// interleave run (192 events) so all components are exercised; the
// constant is asserted at compile time.
const _: () = assert!(BENCH_EVENTS >= 10_000);
