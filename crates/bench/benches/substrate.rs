//! Microbenchmarks of the simulator substrate: how fast the cache
//! model, the MCT, the 3C oracle, and the full CPU+memory pipeline
//! process references. These are ablations for DESIGN.md's claim that
//! the MCT is cheap (touched only on misses) while the oracle and the
//! MAT-style every-access structures dominate simulation cost.

use cache_model::oracle::ThreeCClassifier;
use cache_model::{BlockOutcome, CacheGeometry, SetAssocCache};
use cpu_model::{BaselineSystem, CpuConfig, OooModel};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mct::{ClassifyingCache, TagBits};
use std::hint::black_box;
use trace_gen::arena::{ArenaKey, TraceArena};
use trace_gen::TraceSource;

const N: usize = 100_000;

fn lines(n: usize) -> Vec<sim_core::LineAddr> {
    let w = workloads::by_name("gcc").expect("gcc analog exists");
    let mut src = w.source(7);
    (0..n)
        .map(|_| src.next_event().access.addr.line(64))
        .collect()
}

fn bench_plain_cache(c: &mut Criterion) {
    let refs = lines(N);
    let mut g = c.benchmark_group("substrate/pipeline");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("plain_cache_probe_fill", |b| {
        b.iter(|| {
            let geom = CacheGeometry::new(16 * 1024, 1, 64).unwrap();
            let mut cache: SetAssocCache<()> = SetAssocCache::new(geom);
            for &line in &refs {
                if cache.probe(line).is_none() {
                    cache.fill(line, ());
                }
            }
            black_box(cache.stats().misses())
        })
    });
    g.finish();
}

fn bench_classifying_cache(c: &mut Criterion) {
    let refs = lines(N);
    let mut g = c.benchmark_group("substrate/pipeline");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("mct_classifying_cache", |b| {
        b.iter(|| {
            let geom = CacheGeometry::new(16 * 1024, 1, 64).unwrap();
            let mut cache = ClassifyingCache::new(geom, TagBits::Full);
            for &line in &refs {
                black_box(cache.access(line));
            }
            black_box(cache.class_counts())
        })
    });
    g.finish();
}

/// The zero-overhead claim behind `sim_core::probe`: the same
/// MCT-classification loop as `mct_classifying_cache`, once with the
/// probe layer disarmed (the shipping default — one relaxed atomic
/// load per emit site) and once with a [`NullSink`] installed (every
/// event constructed and dispatched, then discarded). `disarmed`
/// should match `mct_classifying_cache` within noise; the gap between
/// `disarmed` and `null_sink` is the price of *armed* dispatch, paid
/// only when `--probe` is requested.
fn bench_probe_null(c: &mut Criterion) {
    use sim_core::probe::NullSink;
    use std::cell::RefCell;
    use std::rc::Rc;

    let refs = lines(N);
    let run = |refs: &[sim_core::LineAddr]| {
        let geom = CacheGeometry::new(16 * 1024, 1, 64).unwrap();
        let mut cache = ClassifyingCache::new(geom, TagBits::Full);
        for &line in refs {
            black_box(cache.access(line));
        }
        black_box(cache.class_counts())
    };
    let mut g = c.benchmark_group("substrate/pipeline");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("probe_disarmed", |b| b.iter(|| run(&refs)));
    g.bench_function("probe_null", |b| {
        b.iter(|| {
            let sink = Rc::new(RefCell::new(NullSink));
            sim_core::probe::with_sink(sink, || run(&refs))
        })
    });
    g.finish();
}

/// The zero-overhead claim behind `sim_core::span`, mirroring
/// `bench_probe_null`: the same MCT-classification loop instrumented
/// the way the experiment drivers are — a cell scope around the run
/// and a `replay_block` span per 1024-element chunk — once with the
/// span layer disarmed (the shipping default: one relaxed atomic load
/// per site) and once armed in discard mode under a zero clock (every
/// scope installed, every span opened/closed and dropped at flush).
/// `span_disarmed` should match `mct_classifying_cache` within noise;
/// the `span_null` gap is the price of *armed* tracing, paid only when
/// `--trace-out` is requested.
fn bench_span_null(c: &mut Criterion) {
    let refs = lines(N);
    let run = |refs: &[sim_core::LineAddr]| {
        sim_core::span::scope(
            sim_core::span::ScopeKind::Cell,
            "cell_run",
            "bench",
            String::new,
            || {
                let geom = CacheGeometry::new(16 * 1024, 1, 64).unwrap();
                let mut cache = ClassifyingCache::new(geom, TagBits::Full);
                for chunk in refs.chunks(1024) {
                    let _span = sim_core::span::enter("replay_block");
                    sim_core::span::add_events(chunk.len() as u64);
                    for &line in chunk {
                        black_box(cache.access(line));
                    }
                }
                black_box(cache.class_counts())
            },
        )
    };
    let mut g = c.benchmark_group("substrate/pipeline");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("span_disarmed", |b| b.iter(|| run(&refs)));
    g.bench_function("span_null", |b| {
        fn zero_clock() -> u64 {
            0
        }
        sim_core::span::arm_discard(zero_clock);
        b.iter(|| run(&refs));
        let _ = sim_core::span::disarm();
    });
    g.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let refs = lines(N);
    let mut g = c.benchmark_group("substrate/pipeline");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("three_c_oracle", |b| {
        b.iter(|| {
            let mut oracle = ThreeCClassifier::new(256);
            for &line in &refs {
                black_box(oracle.observe(line));
            }
        })
    });
    g.finish();
}

/// The tentpole comparison: synthesizing a workload's event stream on
/// the fly versus replaying the trace arena's memoized slice. The
/// replay side uses a standalone [`TraceArena`] (not the process
/// global) so the first call materializes and every timed iteration
/// is a pure cache hit — exactly what the experiment drivers see.
fn bench_trace_supply(c: &mut Criterion) {
    let w = workloads::by_name("gcc").expect("gcc analog exists");
    let mut g = c.benchmark_group("substrate/pipeline");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("stream_generate", |b| {
        b.iter(|| {
            let mut src = w.source(7);
            let mut acc = 0u64;
            for _ in 0..N {
                acc ^= src.next_event().access.addr.raw();
            }
            black_box(acc)
        })
    });
    let arena = TraceArena::new();
    g.bench_function("arena_replay", |b| {
        b.iter(|| {
            let trace = arena.get_or_materialize(ArenaKey::new("gcc", 7, N), || w.source(7));
            let mut acc = 0u64;
            for e in trace.iter() {
                acc ^= e.access.addr.raw();
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// The flat SoA cache kernel in isolation: probe-heavy (hot loop is
/// `find_slot` over resident tags) and fill-heavy (hot loop is victim
/// scan + slot replace) over four address patterns — `dense` walks
/// distinct sets sequentially (the spatial-locality best case),
/// `conflict` hammers a single set with `2 × assoc` competing tags
/// (every fill evicts, every probe scans a full set and misses half
/// the time), `uniform` draws seeded pseudo-random lines from 4× the
/// cache's capacity (no reuse, steady-state capacity misses), and
/// `working_set_N` cycles N distinct lines (N = 128 fits — all hits
/// after warmup; N = 512 is 2× capacity — steady conflict-driven
/// thrash). Kernel regressions show up here before they blur into the
/// figure drivers.
fn bench_cache_kernel(c: &mut Criterion) {
    let geom = CacheGeometry::new(16 * 1024, 2, 64).unwrap();
    let num_sets = geom.num_sets() as u64;
    let assoc = u64::from(geom.associativity());
    // Dense: every set touched in turn, one tag per set.
    let dense: Vec<sim_core::LineAddr> = (0..N as u64)
        .map(|i| sim_core::LineAddr::new(i % num_sets))
        .collect();
    // Conflict-heavy: 2×assoc tags all mapping to set 0.
    let conflict: Vec<sim_core::LineAddr> = (0..N as u64)
        .map(|i| sim_core::LineAddr::new((i % (2 * assoc)) * num_sets))
        .collect();

    // Uniform: seeded pseudo-random lines over 4× the cache's line
    // capacity — no reuse locality, so probes settle at the capacity
    // miss rate and fills exercise the whole victim scan.
    let mut rng = sim_core::rng::SplitMix64::new(0x5EED_CAFE);
    let uniform: Vec<sim_core::LineAddr> = (0..N as u64)
        .map(|_| sim_core::LineAddr::new(rng.next_below(num_sets * assoc * 4)))
        .collect();
    // Working sets: cycle W distinct consecutive lines. W = 128 fits
    // the 256-line capacity (pure hit traffic after warmup); W = 512
    // is 2× capacity spread 4-deep over 2-way sets (steady thrash).
    let working_set = |w: u64| -> Vec<sim_core::LineAddr> {
        (0..N as u64)
            .map(|i| sim_core::LineAddr::new(i % w))
            .collect()
    };
    let ws_fit = working_set(128);
    let ws_thrash = working_set(512);

    let mut g = c.benchmark_group("substrate/cache_kernel");
    g.throughput(Throughput::Elements(N as u64));
    for (pattern, refs) in [
        ("dense", &dense),
        ("conflict", &conflict),
        ("uniform", &uniform),
        ("working_set_128", &ws_fit),
        ("working_set_512", &ws_thrash),
    ] {
        g.bench_function(&format!("probe_{pattern}"), |b| {
            // Pre-fill once; the timed loop is pure probe traffic.
            let mut cache: SetAssocCache<()> = SetAssocCache::new(geom);
            for &line in refs.iter() {
                if cache.probe(line).is_none() {
                    cache.fill(line, ());
                }
            }
            b.iter(|| {
                let mut hits = 0u64;
                for &line in refs.iter() {
                    hits += u64::from(cache.probe(black_box(line)).is_some());
                }
                black_box(hits)
            })
        });
        g.bench_function(&format!("fill_{pattern}"), |b| {
            b.iter(|| {
                let mut cache: SetAssocCache<u32> = SetAssocCache::new(geom);
                let mut evictions = 0u64;
                for &line in refs.iter() {
                    if cache.probe(line).is_none() {
                        evictions += u64::from(cache.fill(line, 7).is_some());
                    }
                }
                black_box(evictions)
            })
        });
    }

    // Block-size sweep over the same two patterns: decompose once,
    // then replay the (set, tag) arrays per event (`replay_per_event`,
    // the committed baseline the ≥2× target is measured against) and
    // through `access_block` at each candidate size. The sweep picked
    // `experiments::DEFAULT_REPLAY_BLOCK` — see EXPERIMENTS.md, "Cache
    // kernel round two".
    for (pattern, refs) in [("dense", &dense), ("conflict", &conflict)] {
        let (sets, tags): (Vec<u32>, Vec<u64>) = refs
            .iter()
            .map(|&line| (geom.set_index(line) as u32, geom.tag(line)))
            .unzip();
        g.bench_function(&format!("replay_per_event_{pattern}"), |b| {
            b.iter(|| {
                let mut cache: SetAssocCache<u32> = SetAssocCache::new(geom);
                let mut evictions = 0u64;
                for (&set, &tag) in sets.iter().zip(&tags) {
                    if cache.probe_at(set as usize, tag).is_none() {
                        evictions += u64::from(cache.fill_at(set as usize, tag, 7).is_some());
                    }
                }
                black_box(evictions)
            })
        });
        for block in [64usize, 256, 1024, 4096] {
            g.bench_function(&format!("block{block}_{pattern}"), |b| {
                let mut out = vec![BlockOutcome::Hit; block];
                b.iter(|| {
                    let mut cache: SetAssocCache<u32> = SetAssocCache::new(geom);
                    let mut evictions = 0u64;
                    for (s, t) in sets.chunks(block).zip(tags.chunks(block)) {
                        let outcomes = &mut out[..s.len()];
                        cache.access_block(s, t, outcomes);
                        for &outcome in outcomes.iter() {
                            evictions += u64::from(outcome == BlockOutcome::FilledEvicting);
                        }
                    }
                    black_box(evictions)
                })
            });
        }
    }
    g.finish();
}

/// Round three of the kernel story (EXPERIMENTS.md, "Cache kernel
/// round three"): a 4 MB / 2-way geometry puts 65 536 slots above
/// [`cache_model::SORT_SLOT_THRESHOLD`], so the per-block path
/// (`block1024`, round two's winner) has to sort every block, while
/// the set-partitioned form pays one stable partition at decompose
/// time and then replays whole per-set runs with no per-block
/// scratch. The pattern is spread-conflict: each event lands on a
/// seeded-pseudo-random set with one of `2 × assoc` competing tags,
/// so conflict traffic covers all 32 768 sets and a 1024-event block
/// straddles ~1000 of them — the block sorter's worst case and the
/// MRC-scale shape the partitioned path exists for.
/// `partition_build` prices the up-front pass that `replay_partitioned`
/// amortizes across every replay of the memoized form.
fn bench_cache_kernel_partitioned(c: &mut Criterion) {
    use cache_model::{SetRuns, SORT_SLOT_THRESHOLD};
    use trace_gen::decomposed::{DecomposedTrace, PartitionedTrace};

    let geom = CacheGeometry::new(4 * 1024 * 1024, 2, 64).unwrap();
    assert!(geom.num_lines() > SORT_SLOT_THRESHOLD);
    let num_sets = geom.num_sets() as u64;
    let assoc = u64::from(geom.associativity());
    let mut rng = sim_core::rng::SplitMix64::new(0x9a57_2026_0807);
    let (sets, tags): (Vec<u32>, Vec<u64>) = (0..N)
        .map(|_| (rng.next_below(num_sets) as u32, rng.next_below(2 * assoc)))
        .unzip();
    let trace = DecomposedTrace::from_parts(sets, tags, geom.set_bits());
    let part = PartitionedTrace::partition(&trace);

    let mut g = c.benchmark_group("substrate/cache_kernel");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("replay_per_event_spread", |b| {
        b.iter(|| {
            let mut cache: SetAssocCache<u32> = SetAssocCache::new(geom);
            let mut evictions = 0u64;
            for (&set, &tag) in trace.sets().iter().zip(trace.tags()) {
                if cache.probe_at(set as usize, tag).is_none() {
                    evictions += u64::from(cache.fill_at(set as usize, tag, 7).is_some());
                }
            }
            black_box(evictions)
        })
    });
    g.bench_function("block1024_spread", |b| {
        let block = 1024;
        let mut out = vec![BlockOutcome::Hit; block];
        b.iter(|| {
            let mut cache: SetAssocCache<u32> = SetAssocCache::new(geom);
            let mut evictions = 0u64;
            for (s, t) in trace.sets().chunks(block).zip(trace.tags().chunks(block)) {
                let outcomes = &mut out[..s.len()];
                cache.access_block(s, t, outcomes);
                for &outcome in outcomes.iter() {
                    evictions += u64::from(outcome == BlockOutcome::FilledEvicting);
                }
            }
            black_box(evictions)
        })
    });
    g.bench_function("partitioned_spread", |b| {
        let mut out = vec![BlockOutcome::Hit; trace.len()];
        b.iter(|| {
            let mut cache: SetAssocCache<u32> = SetAssocCache::new(geom);
            let runs = SetRuns::new(
                part.dir_sets(),
                part.dir_starts(),
                part.indices(),
                part.tags(),
            );
            cache.access_partitioned(runs, &mut out);
            let mut evictions = 0u64;
            for &outcome in out.iter() {
                evictions += u64::from(outcome == BlockOutcome::FilledEvicting);
            }
            black_box(evictions)
        })
    });
    g.bench_function("partition_build_spread", |b| {
        b.iter(|| black_box(PartitionedTrace::partition(black_box(&trace))))
    });
    g.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let w = workloads::by_name("gcc").expect("gcc analog exists");
    let mut src = w.source(7);
    let trace: Vec<_> = (0..N).map(|_| src.next_event()).collect();
    let mut g = c.benchmark_group("substrate/pipeline");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("cpu_plus_baseline_memory", |b| {
        b.iter(|| {
            let mut sys = BaselineSystem::paper_default().unwrap();
            let cpu = OooModel::new(CpuConfig::paper_default());
            black_box(cpu.run(&mut sys, trace.iter().copied()))
        })
    });
    g.finish();
}

fn bench_mrc(c: &mut Criterion) {
    let refs = lines(N);
    let raw: Vec<u64> = refs.iter().map(|l| l.raw()).collect();
    let mut g = c.benchmark_group("substrate/mrc");
    g.throughput(Throughput::Elements(N as u64));
    // The exact engine pays O(log distinct-lines) per event on the
    // order-statistic tree; this is the single-pass cost of a second
    // ground truth next to the 3C oracle above.
    g.bench_function("mrc_exact", |b| {
        b.iter(|| {
            let mut engine = mrc::StackDistanceEngine::new();
            for &line in &raw {
                engine.record_line(line);
            }
            black_box(engine.miss_ratio(256))
        })
    });
    // SHARDS at R=0.01 touches the tree for ~1% of events and keeps
    // ~1% of the index; the gap to mrc_exact is the sampling speedup.
    g.bench_function("mrc_sampled", |b| {
        b.iter(|| {
            let mut engine = mrc::ShardsEngine::new(0.01).expect("valid rate");
            for &line in &raw {
                engine.record_line(line);
            }
            black_box(engine.miss_ratio(256))
        })
    });
    g.finish();
}

criterion_group! {
    name = substrate;
    config = Criterion::default().sample_size(10);
    targets = bench_plain_cache, bench_classifying_cache, bench_probe_null, bench_span_null, bench_oracle, bench_trace_supply, bench_cache_kernel, bench_cache_kernel_partitioned, bench_full_pipeline, bench_mrc,
}
criterion_main!(substrate);
