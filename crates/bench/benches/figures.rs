//! One Criterion target per paper table/figure: each benchmark runs
//! the corresponding experiment driver end to end (all workloads, all
//! policies of that figure) at a reduced event count and reports the
//! wall time of regenerating the artifact.
//!
//! All targets live in the `figure_drivers` group
//! (`figure_drivers/fig1_…`), the end-to-end layer of the bench
//! taxonomy; per-component costs are the `substrate/*` groups in
//! `substrate.rs`.

use bench_suite::BENCH_EVENTS;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_drivers");
    g.bench_function("fig1_accuracy_four_configs", |b| {
        b.iter(|| black_box(experiments::fig1::run(black_box(BENCH_EVENTS))))
    });
    g.bench_function("fig2_tag_bit_sweep", |b| {
        b.iter(|| black_box(experiments::fig2::run(black_box(BENCH_EVENTS))))
    });
    g.bench_function("fig3_tab1_victim_policies", |b| {
        b.iter(|| black_box(experiments::fig3::run(black_box(BENCH_EVENTS))))
    });
    g.bench_function("fig4_prefetch_filters", |b| {
        b.iter(|| black_box(experiments::fig4::run(black_box(BENCH_EVENTS))))
    });
    g.bench_function("fig5_exclusion_policies", |b| {
        b.iter(|| black_box(experiments::fig5::run(black_box(BENCH_EVENTS))))
    });
    g.bench_function("sec54_pseudo_associative", |b| {
        b.iter(|| black_box(experiments::sec54::run(black_box(BENCH_EVENTS))))
    });
    g.bench_function("fig6_fig7_adaptive_miss_buffer", |b| {
        b.iter(|| black_box(experiments::fig6::run(black_box(BENCH_EVENTS))))
    });
    g.bench_function("ablation_depth_window_buffer", |b| {
        b.iter(|| black_box(experiments::ablation::run(black_box(BENCH_EVENTS / 2))))
    });
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_figures,
}
criterion_main!(figures);
