//! One Criterion target per paper table/figure: each benchmark runs
//! the corresponding experiment driver end to end (all workloads, all
//! policies of that figure) at a reduced event count and reports the
//! wall time of regenerating the artifact.

use bench_suite::BENCH_EVENTS;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig1_accuracy(c: &mut Criterion) {
    c.bench_function("fig1_accuracy_four_configs", |b| {
        b.iter(|| black_box(experiments::fig1::run(black_box(BENCH_EVENTS))))
    });
}

fn bench_fig2_tag_bits(c: &mut Criterion) {
    c.bench_function("fig2_tag_bit_sweep", |b| {
        b.iter(|| black_box(experiments::fig2::run(black_box(BENCH_EVENTS))))
    });
}

fn bench_fig3_victim(c: &mut Criterion) {
    c.bench_function("fig3_tab1_victim_policies", |b| {
        b.iter(|| black_box(experiments::fig3::run(black_box(BENCH_EVENTS))))
    });
}

fn bench_fig4_prefetch(c: &mut Criterion) {
    c.bench_function("fig4_prefetch_filters", |b| {
        b.iter(|| black_box(experiments::fig4::run(black_box(BENCH_EVENTS))))
    });
}

fn bench_fig5_exclusion(c: &mut Criterion) {
    c.bench_function("fig5_exclusion_policies", |b| {
        b.iter(|| black_box(experiments::fig5::run(black_box(BENCH_EVENTS))))
    });
}

fn bench_sec54_pseudo(c: &mut Criterion) {
    c.bench_function("sec54_pseudo_associative", |b| {
        b.iter(|| black_box(experiments::sec54::run(black_box(BENCH_EVENTS))))
    });
}

fn bench_fig6_amb(c: &mut Criterion) {
    c.bench_function("fig6_fig7_adaptive_miss_buffer", |b| {
        b.iter(|| black_box(experiments::fig6::run(black_box(BENCH_EVENTS))))
    });
}

fn bench_ablation(c: &mut Criterion) {
    c.bench_function("ablation_depth_window_buffer", |b| {
        b.iter(|| black_box(experiments::ablation::run(black_box(BENCH_EVENTS / 2))))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig1_accuracy,
        bench_fig2_tag_bits,
        bench_fig3_victim,
        bench_fig4_prefetch,
        bench_fig5_exclusion,
        bench_sec54_pseudo,
        bench_fig6_amb,
        bench_ablation,
}
criterion_main!(figures);
