//! Differential property tests for block replay at the MCT layer:
//! [`ClassifyingCache::access_parts_block`] and
//! [`AccuracyEvaluator::observe_block`] must produce exactly the
//! classifications, statistics, and accuracy reports of their
//! per-event counterparts for arbitrary geometries, tag widths,
//! shadow-directory depths, and (torn) block sizes.

use cache_model::CacheGeometry;
use mct::accuracy::AccuracyEvaluator;
use mct::{BlockClass, ClassifyingCache, ShadowDirectory, TagBits};
use proptest::prelude::*;
use sim_core::LineAddr;

/// Small enough to force set conflicts and MCT re-references at every
/// generated geometry.
const LINE_UNIVERSE: u64 = 64;

fn geometry_from(sets_log: u32, assoc_log: u32) -> CacheGeometry {
    let assoc = 1u32 << assoc_log;
    let sets = 1u64 << sets_log;
    CacheGeometry::new(sets * u64::from(assoc) * 64, assoc, 64).expect("power-of-two geometry")
}

fn tag_bits_from(index: u8) -> TagBits {
    [TagBits::Full, TagBits::Low(4), TagBits::Low(8)][index as usize % 3]
}

/// Splits raw line addresses into the parallel `(set, tag)` arrays
/// block replay consumes.
fn decompose(geom: &CacheGeometry, raws: &[u64]) -> (Vec<u32>, Vec<u64>) {
    raws.iter()
        .map(|&raw| {
            let line = LineAddr::new(raw);
            (geom.set_index(line) as u32, geom.tag(line))
        })
        .unzip()
}

fn class_of(outcome: mct::AccessOutcome) -> BlockClass {
    match outcome {
        mct::AccessOutcome::Hit { .. } => BlockClass::Hit,
        mct::AccessOutcome::Miss(detail) if detail.class.is_conflict() => BlockClass::Conflict,
        mct::AccessOutcome::Miss(_) => BlockClass::Capacity,
    }
}

/// Block replay of a classifying cache in chunks of `block` pairs,
/// with a torn final block whenever `block` does not divide the trace
/// length.
fn classify_blocked(
    cache: &mut ClassifyingCache,
    sets: &[u32],
    tags: &[u64],
    block: usize,
) -> Vec<BlockClass> {
    let mut classes = vec![BlockClass::Hit; sets.len()];
    for ((s, t), o) in sets
        .chunks(block)
        .zip(tags.chunks(block))
        .zip(classes.chunks_mut(block))
    {
        cache.access_parts_block(s, t, o);
    }
    classes
}

proptest! {
    /// `access_parts_block` classifies every event exactly as the
    /// per-event `access_parts` loop would, and leaves identical
    /// hit/miss statistics and class counters behind.
    #[test]
    fn classifying_block_matches_access_parts(
        sets_log in 0u32..5,
        assoc_log in 0u32..3,
        tag_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..400),
        block in 1usize..48,
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let tag_bits = tag_bits_from(tag_index);
        let (sets, tags) = decompose(&geom, &raws);

        let mut legacy = ClassifyingCache::new(geom, tag_bits);
        let expected: Vec<BlockClass> = sets
            .iter()
            .zip(&tags)
            .map(|(&set, &tag)| class_of(legacy.access_parts(set as usize, tag)))
            .collect();

        let mut batched = ClassifyingCache::new(geom, tag_bits);
        let classes = classify_blocked(&mut batched, &sets, &tags, block);

        prop_assert_eq!(classes, expected);
        prop_assert_eq!(*batched.stats(), *legacy.stats());
        prop_assert_eq!(batched.class_counts(), legacy.class_counts());
    }

    /// `observe_block` produces the identical accuracy report to the
    /// per-event `observe_parts` loop — oracle agreement included —
    /// for every tag width and block size.
    #[test]
    fn evaluator_block_matches_observe_parts(
        sets_log in 0u32..5,
        assoc_log in 0u32..3,
        tag_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..400),
        block in 1usize..48,
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let tag_bits = tag_bits_from(tag_index);
        let (sets, tags) = decompose(&geom, &raws);

        let mut legacy = AccuracyEvaluator::new(geom, tag_bits);
        for (&set, &tag) in sets.iter().zip(&tags) {
            legacy.observe_parts(set as usize, tag);
        }

        let mut batched = AccuracyEvaluator::new(geom, tag_bits);
        for (s, t) in sets.chunks(block).zip(tags.chunks(block)) {
            batched.observe_block(s, t);
        }

        prop_assert_eq!(batched.report(), legacy.report());
    }

    /// The block path composes with any [`mct::EvictionClassifier`]:
    /// a shadow directory deeper than one entry classifies each block
    /// event exactly as it classifies the per-event stream.
    #[test]
    fn shadow_directory_block_matches_observe_parts(
        sets_log in 0u32..4,
        assoc_log in 0u32..3,
        depth in 1usize..4,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..300),
        block in 1usize..48,
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let (sets, tags) = decompose(&geom, &raws);

        let shadow = |geom: &CacheGeometry| {
            ShadowDirectory::new(geom.num_sets(), TagBits::Full, depth)
        };

        let mut legacy = AccuracyEvaluator::with_classifier(geom, shadow(&geom));
        for (&set, &tag) in sets.iter().zip(&tags) {
            legacy.observe_parts(set as usize, tag);
        }

        let mut batched = AccuracyEvaluator::with_classifier(geom, shadow(&geom));
        for (s, t) in sets.chunks(block).zip(tags.chunks(block)) {
            batched.observe_block(s, t);
        }

        prop_assert_eq!(batched.report(), legacy.report());
    }
}
