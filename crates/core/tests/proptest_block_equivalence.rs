//! Differential property tests for block replay at the MCT layer:
//! [`ClassifyingCache::access_parts_block`] and
//! [`AccuracyEvaluator::observe_block`] must produce exactly the
//! classifications, statistics, and accuracy reports of their
//! per-event counterparts for arbitrary geometries, tag widths,
//! shadow-directory depths, and (torn) block sizes. The partitioned
//! entry point ([`AccuracyEvaluator::observe_partitioned`]) carries
//! the same obligation with the trace pre-grouped by set.

use cache_model::{CacheGeometry, SetRuns};
use mct::accuracy::AccuracyEvaluator;
use mct::{BlockClass, ClassifyingCache, ShadowDirectory, TagBits};
use proptest::prelude::*;
use sim_core::LineAddr;

/// Small enough to force set conflicts and MCT re-references at every
/// generated geometry.
const LINE_UNIVERSE: u64 = 64;

fn geometry_from(sets_log: u32, assoc_log: u32) -> CacheGeometry {
    let assoc = 1u32 << assoc_log;
    let sets = 1u64 << sets_log;
    CacheGeometry::new(sets * u64::from(assoc) * 64, assoc, 64).expect("power-of-two geometry")
}

fn tag_bits_from(index: u8) -> TagBits {
    [TagBits::Full, TagBits::Low(4), TagBits::Low(8)][index as usize % 3]
}

/// Splits raw line addresses into the parallel `(set, tag)` arrays
/// block replay consumes.
fn decompose(geom: &CacheGeometry, raws: &[u64]) -> (Vec<u32>, Vec<u64>) {
    raws.iter()
        .map(|&raw| {
            let line = LineAddr::new(raw);
            (geom.set_index(line) as u32, geom.tag(line))
        })
        .unzip()
}

fn class_of(outcome: mct::AccessOutcome) -> BlockClass {
    match outcome {
        mct::AccessOutcome::Hit { .. } => BlockClass::Hit,
        mct::AccessOutcome::Miss(detail) if detail.class.is_conflict() => BlockClass::Conflict,
        mct::AccessOutcome::Miss(_) => BlockClass::Capacity,
    }
}

/// Block replay of a classifying cache in chunks of `block` pairs,
/// with a torn final block whenever `block` does not divide the trace
/// length.
fn classify_blocked(
    cache: &mut ClassifyingCache,
    sets: &[u32],
    tags: &[u64],
    block: usize,
) -> Vec<BlockClass> {
    let mut classes = vec![BlockClass::Hit; sets.len()];
    for ((s, t), o) in sets
        .chunks(block)
        .zip(tags.chunks(block))
        .zip(classes.chunks_mut(block))
    {
        cache.access_parts_block(s, t, o);
    }
    classes
}

/// The naive stable partition: sort event positions by set with a
/// stable sort, then build the CSR run directory [`SetRuns`] expects.
/// Independent of `trace_gen`'s chunked counting sort.
fn naive_partition(sets: &[u32], tags: &[u64]) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u64>) {
    let mut order: Vec<u32> = (0..sets.len() as u32).collect();
    order.sort_by_key(|&i| sets[i as usize]);
    let mut dir_sets = Vec::new();
    let mut dir_starts = Vec::new();
    let mut indices = Vec::with_capacity(order.len());
    let mut run_tags = Vec::with_capacity(order.len());
    for &i in &order {
        let set = sets[i as usize];
        if dir_sets.last() != Some(&set) {
            dir_sets.push(set);
            dir_starts.push(indices.len() as u32);
        }
        indices.push(i);
        run_tags.push(tags[i as usize]);
    }
    dir_starts.push(indices.len() as u32);
    (dir_sets, dir_starts, indices, run_tags)
}

proptest! {
    /// `access_parts_block` classifies every event exactly as the
    /// per-event `access_parts` loop would, and leaves identical
    /// hit/miss statistics and class counters behind.
    #[test]
    fn classifying_block_matches_access_parts(
        sets_log in 0u32..5,
        assoc_log in 0u32..3,
        tag_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..400),
        block in 1usize..48,
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let tag_bits = tag_bits_from(tag_index);
        let (sets, tags) = decompose(&geom, &raws);

        let mut legacy = ClassifyingCache::new(geom, tag_bits);
        let expected: Vec<BlockClass> = sets
            .iter()
            .zip(&tags)
            .map(|(&set, &tag)| class_of(legacy.access_parts(set as usize, tag)))
            .collect();

        let mut batched = ClassifyingCache::new(geom, tag_bits);
        let classes = classify_blocked(&mut batched, &sets, &tags, block);

        prop_assert_eq!(classes, expected);
        prop_assert_eq!(*batched.stats(), *legacy.stats());
        prop_assert_eq!(batched.class_counts(), legacy.class_counts());
    }

    /// `observe_block` produces the identical accuracy report to the
    /// per-event `observe_parts` loop — oracle agreement included —
    /// for every tag width and block size.
    #[test]
    fn evaluator_block_matches_observe_parts(
        sets_log in 0u32..5,
        assoc_log in 0u32..3,
        tag_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..400),
        block in 1usize..48,
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let tag_bits = tag_bits_from(tag_index);
        let (sets, tags) = decompose(&geom, &raws);

        let mut legacy = AccuracyEvaluator::new(geom, tag_bits);
        for (&set, &tag) in sets.iter().zip(&tags) {
            legacy.observe_parts(set as usize, tag);
        }

        let mut batched = AccuracyEvaluator::new(geom, tag_bits);
        for (s, t) in sets.chunks(block).zip(tags.chunks(block)) {
            batched.observe_block(s, t);
        }

        prop_assert_eq!(batched.report(), legacy.report());
    }

    /// `access_parts_partitioned` scatters each event's class back to
    /// its trace position and leaves identical statistics behind,
    /// even though set visits happen out of trace order.
    #[test]
    fn classifying_partitioned_matches_access_parts(
        sets_log in 0u32..5,
        assoc_log in 0u32..3,
        tag_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..400),
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let tag_bits = tag_bits_from(tag_index);
        let (sets, tags) = decompose(&geom, &raws);

        let mut legacy = ClassifyingCache::new(geom, tag_bits);
        let expected: Vec<BlockClass> = sets
            .iter()
            .zip(&tags)
            .map(|(&set, &tag)| class_of(legacy.access_parts(set as usize, tag)))
            .collect();

        let (dir_sets, dir_starts, indices, run_tags) = naive_partition(&sets, &tags);
        let runs = SetRuns::new(&dir_sets, &dir_starts, &indices, &run_tags);
        let mut partitioned = ClassifyingCache::new(geom, tag_bits);
        let mut classes = vec![BlockClass::Hit; sets.len()];
        partitioned.access_parts_partitioned(runs, &mut classes);

        prop_assert_eq!(classes, expected);
        prop_assert_eq!(*partitioned.stats(), *legacy.stats());
        prop_assert_eq!(partitioned.class_counts(), legacy.class_counts());
    }

    /// `observe_partitioned` produces the identical accuracy report —
    /// oracle agreement included — to the per-event `observe_parts`
    /// loop over the same trace in original order.
    #[test]
    fn evaluator_partitioned_matches_observe_parts(
        sets_log in 0u32..5,
        assoc_log in 0u32..3,
        tag_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..400),
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let tag_bits = tag_bits_from(tag_index);
        let (sets, tags) = decompose(&geom, &raws);

        let mut legacy = AccuracyEvaluator::new(geom, tag_bits);
        for (&set, &tag) in sets.iter().zip(&tags) {
            legacy.observe_parts(set as usize, tag);
        }

        let (dir_sets, dir_starts, indices, run_tags) = naive_partition(&sets, &tags);
        let runs = SetRuns::new(&dir_sets, &dir_starts, &indices, &run_tags);
        let mut partitioned = AccuracyEvaluator::new(geom, tag_bits);
        partitioned.observe_partitioned(&sets, &tags, runs);

        prop_assert_eq!(partitioned.report(), legacy.report());
    }

    /// The block path composes with any [`mct::EvictionClassifier`]:
    /// a shadow directory deeper than one entry classifies each block
    /// event exactly as it classifies the per-event stream.
    #[test]
    fn shadow_directory_block_matches_observe_parts(
        sets_log in 0u32..4,
        assoc_log in 0u32..3,
        depth in 1usize..4,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..300),
        block in 1usize..48,
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let (sets, tags) = decompose(&geom, &raws);

        let shadow = |geom: &CacheGeometry| {
            ShadowDirectory::new(geom.num_sets(), TagBits::Full, depth)
        };

        let mut legacy = AccuracyEvaluator::with_classifier(geom, shadow(&geom));
        for (&set, &tag) in sets.iter().zip(&tags) {
            legacy.observe_parts(set as usize, tag);
        }

        let mut batched = AccuracyEvaluator::with_classifier(geom, shadow(&geom));
        for (s, t) in sets.chunks(block).zip(tags.chunks(block)) {
            batched.observe_block(s, t);
        }

        prop_assert_eq!(batched.report(), legacy.report());
    }
}
