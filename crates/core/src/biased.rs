//! Conflict-aware replacement for set-associative caches
//! (paper §5.6, "Highly associative caches"; also Stone/Pomerene's
//! shadow-directory suggestion).
//!
//! In a 4-way-or-wider cache that still sees conflict misses, the MCT
//! can steer the replacement policy: lines that entered on capacity
//! misses (streaming data, used briefly) should leave the set quickly,
//! while lines with conflict evidence have demonstrated reuse under
//! contention and deserve protection. [`BiasedCache`] implements that
//! policy: the victim is the LRU line *among those without a conflict
//! bit* when any exist, otherwise plain LRU with the kept lines'
//! bits cleared (so protection is temporary, as in §5.4).

use cache_model::{CacheGeometry, CacheStats};
use sim_core::LineAddr;

use crate::{MissClassificationTable, TagBits};

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    conflict_bit: bool,
    last_use: u64,
}

/// A set-associative cache whose replacement is biased against
/// capacity-miss lines, using the MCT's classification.
///
/// # Examples
///
/// ```
/// use cache_model::CacheGeometry;
/// use mct::{BiasedCache, TagBits};
/// use sim_core::LineAddr;
///
/// let geom = CacheGeometry::new(16 * 1024, 4, 64)?;
/// let mut cache = BiasedCache::new(geom, TagBits::Full);
/// cache.access(LineAddr::new(0));
/// assert!(cache.contains(LineAddr::new(0)));
/// # Ok::<(), cache_model::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BiasedCache {
    geom: CacheGeometry,
    sets: Vec<Vec<Line>>,
    table: MissClassificationTable,
    clock: u64,
    stats: CacheStats,
    /// Disables the bias (plain LRU) for ablation comparisons.
    biased: bool,
}

impl BiasedCache {
    /// Creates an empty biased cache.
    #[must_use]
    pub fn new(geom: CacheGeometry, tag_bits: TagBits) -> Self {
        BiasedCache {
            geom,
            sets: vec![Vec::with_capacity(geom.associativity() as usize); geom.num_sets()],
            table: MissClassificationTable::new(geom.num_sets(), tag_bits),
            clock: 0,
            stats: CacheStats::default(),
            biased: true,
        }
    }

    /// Same structure with the bias disabled — a plain LRU cache that
    /// still pays the MCT bookkeeping, for apples-to-apples ablations.
    #[must_use]
    pub fn unbiased(geom: CacheGeometry, tag_bits: TagBits) -> Self {
        BiasedCache {
            biased: false,
            ..Self::new(geom, tag_bits)
        }
    }

    /// Whether the replacement bias is active.
    #[must_use]
    pub const fn is_biased(&self) -> bool {
        self.biased
    }

    /// Hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// `true` if the line is resident (no side effects).
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.geom.set_index(line);
        let tag = self.geom.tag(line);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// One access: hit updates recency; miss classifies, fills, and
    /// applies the biased replacement. Returns `true` on a hit.
    pub fn access(&mut self, line: LineAddr) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set_index = self.geom.set_index(line);
        let tag = self.geom.tag(line);

        if let Some(l) = self.sets[set_index].iter_mut().find(|l| l.tag == tag) {
            l.last_use = clock;
            self.stats.record_hit();
            return true;
        }
        self.stats.record_miss();

        let incoming_bit = self.table.classify(set_index, tag).is_conflict();
        let new_line = Line {
            tag,
            conflict_bit: incoming_bit,
            last_use: clock,
        };
        let assoc = self.geom.associativity() as usize;
        let set = &mut self.sets[set_index];
        if set.len() < assoc {
            set.push(new_line);
            return false;
        }

        // Choose a victim: LRU among unprotected lines if the bias is
        // on and any exist; otherwise plain LRU with bits cleared.
        // Both scans are total (they default to way 0 on the empty
        // set that cannot occur here), keeping this access path free
        // of panicking calls.
        let unprotected = self.biased && set.iter().any(|l| !l.conflict_bit);
        let mut victim_idx = 0;
        let mut oldest = u64::MAX;
        for (i, l) in set.iter().enumerate() {
            if (!unprotected || !l.conflict_bit) && l.last_use < oldest {
                oldest = l.last_use;
                victim_idx = i;
            }
        }
        if !unprotected && self.biased {
            // Protection is temporary: once every line is protected,
            // the bits reset so streams cannot be locked out forever.
            for l in set.iter_mut() {
                l.conflict_bit = false;
            }
        }
        let evicted = set[victim_idx];
        self.table.record_eviction(set_index, evicted.tag);
        set[victim_idx] = new_line;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_way() -> CacheGeometry {
        // 4-way, 4 sets.
        CacheGeometry::new(1024, 4, 64).unwrap()
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn basic_hit_miss() {
        let mut c = BiasedCache::new(four_way(), TagBits::Full);
        assert!(!c.access(line(0)));
        assert!(c.access(line(0)));
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = BiasedCache::new(four_way(), TagBits::Full);
        for n in 0..200 {
            c.access(line(n));
        }
        let resident = (0..200).filter(|&n| c.contains(line(n))).count();
        assert!(resident <= c.geometry().num_lines());
    }

    #[test]
    fn bias_protects_contended_hot_lines_from_streams() {
        // Set 0 of a 4-set, 4-way cache. Six hot lines accessed in
        // random order contend for the four ways: their misses often
        // re-reference the most recently evicted line, so they acquire
        // conflict bits. A one-shot stream passes through the same
        // set; plain LRU lets it evict hot lines, the bias does not.
        let run = |biased: bool| -> f64 {
            let mut c = if biased {
                BiasedCache::new(four_way(), TagBits::Full)
            } else {
                BiasedCache::unbiased(four_way(), TagBits::Full)
            };
            let hot: Vec<LineAddr> = (0..6).map(|k| line(4 * k)).collect();
            let mut rng = sim_core::rng::SplitMix64::new(42);
            let mut hits = 0u64;
            let mut total = 0u64;
            for round in 0u64..6_000 {
                // Two hot accesses, then one fresh stream line.
                for _ in 0..2 {
                    total += 1;
                    hits += u64::from(c.access(hot[rng.next_below(6) as usize]));
                }
                c.access(line(4 * (1_000 + round)));
            }
            hits as f64 / total as f64
        };
        let biased = run(true);
        let plain = run(false);
        assert!(
            biased > plain + 0.05,
            "biased {biased:.3} should beat plain LRU {plain:.3}"
        );
    }

    #[test]
    fn protection_is_temporary_when_all_lines_protected() {
        let geom = CacheGeometry::new(256, 2, 64).unwrap(); // 2 sets, 2-way
        let mut c = BiasedCache::new(geom, TagBits::Full);
        // Make both ways of set 0 protected: ping-pong three lines so
        // evictions + re-misses set conflict bits.
        for _ in 0..10 {
            c.access(line(0));
            c.access(line(2));
            c.access(line(4));
        }
        // A new line must still be able to get in (plain LRU fallback).
        c.access(line(6));
        assert!(c.contains(line(6)));
    }

    #[test]
    fn unbiased_matches_reference_lru() {
        // The ablation baseline must behave exactly like SetAssocCache.
        let geom = CacheGeometry::new(512, 2, 64).unwrap();
        let mut biased = BiasedCache::unbiased(geom, TagBits::Full);
        let mut reference: cache_model::SetAssocCache<()> = cache_model::SetAssocCache::new(geom);
        let mut rng = sim_core::rng::SplitMix64::new(11);
        for _ in 0..5_000 {
            let l = line(rng.next_below(32));
            let hit_ref = if reference.probe(l).is_some() {
                true
            } else {
                reference.fill(l, ());
                false
            };
            assert_eq!(biased.access(l), hit_ref);
        }
    }
}
