//! The Miss Classification Table proper.

use core::fmt;

use sim_core::probe;

use crate::MissClass;

/// How many bits of the evicted line's tag the MCT stores per entry.
///
/// Figure 2 of the paper sweeps this parameter: with fewer bits, more
/// misses alias to the stored tag and the classification errs toward
/// conflict; with 8–12 bits it is nearly as accurate as the full tag.
///
/// # Examples
///
/// ```
/// use mct::TagBits;
///
/// assert_eq!(TagBits::Full.mask(), u64::MAX);
/// assert_eq!(TagBits::Low(8).mask(), 0xff);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TagBits {
    /// Store the complete tag (exact matching).
    Full,
    /// Store only the low *n* bits of the tag, `1 ..= 63`.
    Low(u32),
}

impl TagBits {
    /// The mask applied to tags before storing/comparing.
    ///
    /// # Panics
    ///
    /// Panics if a `Low` width is 0 or ≥ 64 (use `Full` for a complete
    /// tag).
    #[must_use]
    pub fn mask(self) -> u64 {
        match self {
            TagBits::Full => u64::MAX,
            TagBits::Low(n) => {
                assert!(
                    (1..64).contains(&n),
                    "partial tag width must be 1..=63, got {n}"
                );
                (1u64 << n) - 1
            }
        }
    }
}

impl fmt::Display for TagBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagBits::Full => f.write_str("full tag"),
            TagBits::Low(n) => write!(f, "{n}-bit tag"),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct MctEntry {
    tag: u64,
    /// The untruncated evicted tag, kept only so the probe layer can
    /// distinguish a genuine conflict match from a partial-tag alias.
    /// Classification never reads this — hardware would not store it.
    full_tag: u64,
    valid: bool,
}

/// The Miss Classification Table: one entry per cache set, holding the
/// (possibly truncated) tag of the set's most recently evicted line.
///
/// The table is direct-mapped by set index regardless of the cache's
/// associativity, is read only on cache misses, and is updated only on
/// evictions — it never sits on the cache's critical path.
///
/// The intended protocol for each miss to set *s* with tag *t*:
///
/// 1. [`classify`](Self::classify)`(s, t)` — compare against the
///    stored evicted tag **before** any update;
/// 2. when the miss's fill displaces a line with tag *v*, call
///    [`record_eviction`](Self::record_eviction)`(s, v)`.
///
/// [`ClassifyingCache`](crate::ClassifyingCache) drives this protocol
/// automatically; the raw table is exposed for architectures with
/// custom indexing, such as the pseudo-associative cache.
///
/// # Examples
///
/// ```
/// use mct::{MissClass, MissClassificationTable, TagBits};
///
/// let mut table = MissClassificationTable::new(256, TagBits::Low(8));
/// // Line B (tag 7) evicts line A (tag 3) from set 5.
/// table.record_eviction(5, 3);
/// // Next miss to set 5 is A again: conflict.
/// assert_eq!(table.classify(5, 3), MissClass::Conflict);
/// // A miss with an unrelated tag: capacity.
/// assert_eq!(table.classify(5, 9), MissClass::Capacity);
/// ```
#[derive(Debug, Clone)]
pub struct MissClassificationTable {
    entries: Vec<MctEntry>,
    mask: u64,
    tag_bits: TagBits,
}

impl MissClassificationTable {
    /// Creates a table with `num_sets` entries storing `tag_bits` of
    /// each evicted tag.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is zero or `tag_bits` is an invalid width.
    #[must_use]
    pub fn new(num_sets: usize, tag_bits: TagBits) -> Self {
        assert!(num_sets > 0, "MCT needs at least one set");
        MissClassificationTable {
            entries: vec![MctEntry::default(); num_sets],
            mask: tag_bits.mask(),
            tag_bits,
        }
    }

    /// Number of entries (= cache sets).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.entries.len()
    }

    /// The configured tag width.
    #[must_use]
    pub const fn tag_bits(&self) -> TagBits {
        self.tag_bits
    }

    /// Classifies a miss to `set` with tag `tag`.
    ///
    /// Must be called **before** [`Self::record_eviction`] for the
    /// same miss: the comparison is against the *previously* evicted
    /// line.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn classify(&self, set: usize, tag: u64) -> MissClass {
        let e = &self.entries[set];
        let matched = e.valid && e.tag == (tag & self.mask);
        if probe::active() {
            let lookup = if !e.valid {
                probe::MctLookup::Empty
            } else if !matched {
                probe::MctLookup::Stale
            } else if e.full_tag == tag {
                probe::MctLookup::Match
            } else {
                probe::MctLookup::Alias
            };
            probe::emit(probe::ProbeEvent::Classify {
                set: set as u32,
                conflict: matched,
                lookup,
            });
        }
        if matched {
            MissClass::Conflict
        } else {
            MissClass::Capacity
        }
    }

    /// Records that a line with tag `tag` was evicted from `set`,
    /// replacing the previously remembered tag.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn record_eviction(&mut self, set: usize, tag: u64) {
        self.entries[set] = MctEntry {
            tag: tag & self.mask,
            full_tag: tag,
            valid: true,
        };
    }

    /// Clears one entry (used by tests and by architectures that
    /// consume a classification, e.g. to avoid double-counting).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn clear_entry(&mut self, set: usize) {
        self.entries[set] = MctEntry::default();
    }

    /// Storage cost of the table in bits: entries × (tag bits + valid
    /// bit), using `full_tag_bits` for [`TagBits::Full`].
    ///
    /// Matches the paper's sizing argument (10 bits per entry on a
    /// 64 KB direct-mapped cache ⇒ 1.25 KB of storage).
    #[must_use]
    pub fn storage_bits(&self, full_tag_bits: u32) -> u64 {
        let width = match self.tag_bits {
            TagBits::Full => full_tag_bits,
            TagBits::Low(n) => n.min(full_tag_bits),
        };
        self.entries.len() as u64 * (u64::from(width) + 1)
    }
}

impl crate::EvictionClassifier for MissClassificationTable {
    fn classify(&self, set: usize, tag: u64) -> MissClass {
        MissClassificationTable::classify(self, set, tag)
    }

    fn record_eviction(&mut self, set: usize, tag: u64) {
        MissClassificationTable::record_eviction(self, set, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_classifies_capacity() {
        let t = MissClassificationTable::new(16, TagBits::Full);
        for set in 0..16 {
            assert_eq!(t.classify(set, 0), MissClass::Capacity);
        }
    }

    #[test]
    fn paper_scenario_b_evicts_a_then_a_misses() {
        let mut t = MissClassificationTable::new(4, TagBits::Full);
        // B's fill evicts A (tag 0xA) from set 2.
        t.record_eviction(2, 0xA);
        assert_eq!(t.classify(2, 0xA), MissClass::Conflict);
        // Same tag, different set: not a conflict.
        assert_eq!(t.classify(1, 0xA), MissClass::Capacity);
    }

    #[test]
    fn only_most_recent_eviction_is_remembered() {
        let mut t = MissClassificationTable::new(4, TagBits::Full);
        t.record_eviction(0, 1);
        t.record_eviction(0, 2);
        assert_eq!(t.classify(0, 1), MissClass::Capacity);
        assert_eq!(t.classify(0, 2), MissClass::Conflict);
    }

    #[test]
    fn partial_tags_alias() {
        let mut t = MissClassificationTable::new(4, TagBits::Low(4));
        t.record_eviction(0, 0x5);
        // 0x15 and 0x5 share their low 4 bits: false conflict hit.
        assert_eq!(t.classify(0, 0x15), MissClass::Conflict);
        // Differ in the low bits: capacity.
        assert_eq!(t.classify(0, 0x6), MissClass::Capacity);
    }

    #[test]
    fn single_bit_tag_is_legal_and_coarse() {
        let mut t = MissClassificationTable::new(4, TagBits::Low(1));
        t.record_eviction(0, 0b10); // low bit 0
        assert_eq!(t.classify(0, 0b100), MissClass::Conflict); // low bit 0 aliases
        assert_eq!(t.classify(0, 0b1), MissClass::Capacity);
    }

    #[test]
    fn clear_entry_forgets() {
        let mut t = MissClassificationTable::new(4, TagBits::Full);
        t.record_eviction(3, 9);
        t.clear_entry(3);
        assert_eq!(t.classify(3, 9), MissClass::Capacity);
    }

    #[test]
    fn storage_matches_paper_sizing() {
        // 64 KB DM cache, 64-byte lines => 1024 sets; 10-bit entries
        // => 1024 * (10 + 1) bits ≈ 1.4 KB with valid bits; the paper
        // quotes 1.25 KB for the 10 tag bits alone.
        let t = MissClassificationTable::new(1024, TagBits::Low(10));
        let bits = t.storage_bits(18);
        assert_eq!(bits, 1024 * 11);
        let tag_only_kb: f64 = (1024.0 * 10.0) / 8.0 / 1024.0;
        assert!((tag_only_kb - 1.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "partial tag width")]
    fn zero_width_rejected() {
        let _ = MissClassificationTable::new(4, TagBits::Low(0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_set_panics() {
        let t = MissClassificationTable::new(4, TagBits::Full);
        let _ = t.classify(4, 0);
    }
}
