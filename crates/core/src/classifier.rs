//! The classification interface shared by the MCT and its variants.

use crate::MissClass;

/// Anything that classifies misses from the set's eviction history.
///
/// Implemented by [`MissClassificationTable`](crate::MissClassificationTable)
/// (the paper's one-tag-per-set structure) and
/// [`ShadowDirectory`](crate::ShadowDirectory) (the multi-tag
/// extension). [`ClassifyingCache`](crate::ClassifyingCache) is
/// generic over this trait, so every architecture can swap the
/// classifier without code changes.
///
/// The protocol, per miss to set `set` with tag `tag`:
///
/// 1. [`classify`](Self::classify) **before** any update;
/// 2. [`record_eviction`](Self::record_eviction) with the displaced
///    line's tag once the fill chooses a victim.
pub trait EvictionClassifier {
    /// Classifies a miss against the set's remembered evictions.
    fn classify(&self, set: usize, tag: u64) -> MissClass;

    /// Records that a line with `tag` was evicted from `set`.
    fn record_eviction(&mut self, set: usize, tag: u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MissClassificationTable, ShadowDirectory, TagBits};

    fn exercise(c: &mut dyn EvictionClassifier) {
        c.record_eviction(0, 7);
        assert_eq!(c.classify(0, 7), MissClass::Conflict);
        assert_eq!(c.classify(0, 8), MissClass::Capacity);
    }

    #[test]
    fn trait_objects_work_for_both_implementations() {
        exercise(&mut MissClassificationTable::new(4, TagBits::Full));
        exercise(&mut ShadowDirectory::new(4, TagBits::Full, 3));
    }
}
