//! A set-associative cache with an attached Miss Classification Table
//! and per-line conflict bits.

use cache_model::{BlockSink, CacheGeometry, CacheStats, SetAssocCache, SetRuns};
use sim_core::probe;
use sim_core::LineAddr;

use crate::{ConflictFilter, EvictionClassifier, MissClass, MissClassificationTable, TagBits};

/// The classification of one event in a block replay
/// ([`ClassifyingCache::access_parts_block`]).
///
/// The compressed form of [`AccessOutcome`] the block path scatters
/// into a plain outcome array: bulk consumers need only the
/// hit/conflict/capacity split, not the per-miss eviction detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockClass {
    /// The line was resident.
    #[default]
    Hit,
    /// The miss was classified as a conflict miss.
    Conflict,
    /// The miss was classified as a capacity (or compulsory) miss.
    Capacity,
}

/// The block sink that runs the MCT protocol per event: classify
/// **before** the fill, carry the conflict bit as line metadata,
/// record the eviction.
struct MctSink<'a, T> {
    table: &'a mut T,
    conflict_misses: &'a mut u64,
    capacity_misses: &'a mut u64,
    out: &'a mut [BlockClass],
}

impl<T: EvictionClassifier> BlockSink<bool> for MctSink<'_, T> {
    #[inline]
    fn hit(&mut self, index: usize, _conflict_bit: &mut bool) {
        self.out[index] = BlockClass::Hit;
    }

    #[inline]
    fn miss(&mut self, index: usize, set: usize, tag: u64) -> bool {
        let class = self.table.classify(set, tag);
        match class {
            MissClass::Conflict => *self.conflict_misses += 1,
            MissClass::Capacity => *self.capacity_misses += 1,
        }
        self.out[index] = if class.is_conflict() {
            BlockClass::Conflict
        } else {
            BlockClass::Capacity
        };
        class.is_conflict()
    }

    #[inline]
    fn evicted(&mut self, _index: usize, set: usize, evicted_tag: u64, _conflict_bit: bool) {
        self.table.record_eviction(set, evicted_tag);
    }
}

/// The line displaced by a fill, together with its conflict bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Address of the displaced line.
    pub line: LineAddr,
    /// Whether the displaced line originally entered the cache on a
    /// conflict miss (the paper's per-line *conflict bit*).
    pub conflict_bit: bool,
}

/// Everything known about one classified miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissDetail {
    /// The MCT's classification of the incoming miss.
    pub class: MissClass,
    /// The displaced line, if the fill evicted one.
    pub evicted: Option<EvictedLine>,
}

impl MissDetail {
    /// Evaluates one of the paper's eviction-time filters for this
    /// miss. With no eviction, the evicted conflict bit reads as
    /// `false`.
    #[must_use]
    pub fn filter_fires(&self, filter: ConflictFilter) -> bool {
        filter.fires(
            self.class.is_conflict(),
            self.evicted.is_some_and(|e| e.conflict_bit),
        )
    }
}

/// The outcome of one access to a [`ClassifyingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident; its current conflict bit is reported.
    Hit {
        /// The resident line's conflict bit.
        conflict_bit: bool,
    },
    /// The line missed and was filled; the classification and any
    /// eviction are reported.
    Miss(MissDetail),
}

impl AccessOutcome {
    /// `true` on a hit.
    #[must_use]
    pub const fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit { .. })
    }

    /// The miss detail, if this was a miss.
    #[must_use]
    pub const fn miss(&self) -> Option<&MissDetail> {
        match self {
            AccessOutcome::Hit { .. } => None,
            AccessOutcome::Miss(d) => Some(d),
        }
    }
}

/// A cache whose every miss is classified by an MCT, and whose lines
/// carry conflict bits (paper §3).
///
/// [`ClassifyingCache::access`] drives the full protocol: probe,
/// classify **before** updating, fill with the conflict bit, record
/// the eviction. Architectures that need to make placement decisions
/// between those steps (cache exclusion decides whether to fill at
/// all) use the lower-level [`classify_miss`](Self::classify_miss) /
/// [`fill`](Self::fill) / [`note_bypass`](Self::note_bypass) methods.
///
/// # Examples
///
/// ```
/// use cache_model::CacheGeometry;
/// use mct::{ClassifyingCache, MissClass, TagBits};
/// use sim_core::LineAddr;
///
/// let geom = CacheGeometry::new(256, 1, 64)?; // 4 sets, direct-mapped
/// let mut c = ClassifyingCache::new(geom, TagBits::Full);
/// c.access(LineAddr::new(1));     // compulsory
/// c.access(LineAddr::new(5));     // evicts line 1 (same set)
/// let outcome = c.access(LineAddr::new(1));
/// assert_eq!(outcome.miss().unwrap().class, MissClass::Conflict);
/// # Ok::<(), cache_model::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClassifyingCache<T = MissClassificationTable> {
    cache: SetAssocCache<bool>,
    table: T,
    conflict_misses: u64,
    capacity_misses: u64,
}

impl ClassifyingCache {
    /// Creates an empty classifying cache with the paper's one-entry
    /// MCT.
    #[must_use]
    pub fn new(geom: CacheGeometry, tag_bits: TagBits) -> Self {
        let table = MissClassificationTable::new(geom.num_sets(), tag_bits);
        Self::with_classifier(geom, table)
    }
}

impl<T: EvictionClassifier> ClassifyingCache<T> {
    /// Creates a classifying cache around any eviction classifier
    /// (e.g. a [`ShadowDirectory`](crate::ShadowDirectory) with depth
    /// greater than one).
    #[must_use]
    pub fn with_classifier(geom: CacheGeometry, table: T) -> Self {
        let mut cache = SetAssocCache::new(geom);
        // The classifying cache is always the unit an experiment
        // measures, so it reports per-set fill/evict probe events.
        cache.enable_set_probes();
        ClassifyingCache {
            cache,
            table,
            conflict_misses: 0,
            capacity_misses: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        self.cache.geometry()
    }

    /// Hit/miss statistics of the underlying cache.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Counts of misses classified (conflict, capacity) by
    /// [`Self::access`].
    #[must_use]
    pub const fn class_counts(&self) -> (u64, u64) {
        (self.conflict_misses, self.capacity_misses)
    }

    /// Read access to the attached classifier.
    #[must_use]
    pub fn table(&self) -> &T {
        &self.table
    }

    /// One full access: probe, and on a miss classify + fill + record
    /// the eviction.
    pub fn access(&mut self, line: LineAddr) -> AccessOutcome {
        let geom = *self.cache.geometry();
        self.access_parts(geom.set_index(line), geom.tag(line))
    }

    /// [`Self::access`] with the line already split into set index and
    /// tag — the decomposed-replay fast path. Equivalent to
    /// `access(geometry.line_from_parts(tag, set))`, without
    /// re-deriving the parts.
    pub fn access_parts(&mut self, set: usize, tag: u64) -> AccessOutcome {
        if let Some(bit) = self.cache.probe_at(set, tag) {
            let conflict_bit = *bit;
            probe::emit(probe::ProbeEvent::Access { hit: true });
            return AccessOutcome::Hit { conflict_bit };
        }
        probe::emit(probe::ProbeEvent::Access { hit: false });
        let class = self.table.classify(set, tag);
        match class {
            MissClass::Conflict => self.conflict_misses += 1,
            MissClass::Capacity => self.capacity_misses += 1,
        }
        let evicted = self.fill_parts(set, tag, class.is_conflict());
        AccessOutcome::Miss(MissDetail { class, evicted })
    }

    /// Replays a block of decomposed accesses, scattering each
    /// event's classification into `out`.
    ///
    /// Equivalent to calling [`Self::access_parts`] per event and
    /// recording `Hit`/`Conflict`/`Capacity`, but the underlying
    /// kernel replays the block as same-set runs — bucketed by set
    /// index on large geometries
    /// ([`SetAssocCache::access_block_with`]) so consecutive probes
    /// stay on resident rows. The MCT protocol is unchanged: each
    /// miss is classified against pre-fill state and each eviction is
    /// recorded — both are per-set operations, so set-bucketed order
    /// cannot change any classification.
    ///
    /// With a probe sink armed the whole block falls back to
    /// per-event [`Self::access_parts`], keeping the emitted event
    /// stream byte-identical to unbatched replay.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a set index is out of
    /// range for the geometry.
    pub fn access_parts_block(&mut self, sets: &[u32], tags: &[u64], out: &mut [BlockClass]) {
        if probe::active() {
            for (i, (&set, &tag)) in sets.iter().zip(tags).enumerate() {
                out[i] = match self.access_parts(set as usize, tag) {
                    AccessOutcome::Hit { .. } => BlockClass::Hit,
                    AccessOutcome::Miss(detail) if detail.class.is_conflict() => {
                        BlockClass::Conflict
                    }
                    AccessOutcome::Miss(_) => BlockClass::Capacity,
                };
            }
            return;
        }
        let mut sink = MctSink {
            table: &mut self.table,
            conflict_misses: &mut self.conflict_misses,
            capacity_misses: &mut self.capacity_misses,
            out,
        };
        self.cache.access_block_with(sets, tags, &mut sink);
    }

    /// Replays a whole set-partitioned trace
    /// ([`cache_model::SetRuns`]), scattering each event's
    /// classification into `out` by *original trace index*.
    ///
    /// Equivalent to [`Self::access_parts`] per event in trace order:
    /// the kernel consumes presorted per-set runs directly
    /// ([`SetAssocCache::access_partitioned_with`]) and the MCT
    /// protocol — classify against pre-fill state, record every
    /// eviction — is per-set, so run order cannot change any
    /// classification. Partitioned replay cannot reproduce a
    /// per-event probe stream; callers must fall back to trace-order
    /// replay while a probe sink is armed (this cache always reports
    /// set probes).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the trace or a set index is
    /// out of range for the geometry.
    pub fn access_parts_partitioned(&mut self, runs: SetRuns<'_>, out: &mut [BlockClass]) {
        assert_eq!(runs.len(), out.len(), "runs/out length mismatch");
        let mut sink = MctSink {
            table: &mut self.table,
            conflict_misses: &mut self.conflict_misses,
            capacity_misses: &mut self.capacity_misses,
            out,
        };
        self.cache.access_partitioned_with(runs, &mut sink);
    }

    /// Classifies a miss on `line` without changing any state.
    ///
    /// Valid only when the line is *not* resident (the MCT is read on
    /// misses); resident lines were classified when they were filled.
    #[must_use]
    pub fn classify_miss(&self, line: LineAddr) -> MissClass {
        let geom = self.cache.geometry();
        self.table.classify(geom.set_index(line), geom.tag(line))
    }

    /// Probes without filling: updates recency and hit/miss counters,
    /// returning the conflict bit on a hit.
    pub fn probe(&mut self, line: LineAddr) -> Option<bool> {
        self.cache.probe(line).map(|b| *b)
    }

    /// Whether the line is resident (no side effects).
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.cache.contains(line)
    }

    /// The resident line's conflict bit, if resident (no side
    /// effects).
    #[must_use]
    pub fn conflict_bit(&self, line: LineAddr) -> Option<bool> {
        self.cache.peek(line).copied()
    }

    /// Fills `line` with the given conflict bit; any displaced line is
    /// recorded in the MCT and returned.
    pub fn fill(&mut self, line: LineAddr, conflict_bit: bool) -> Option<EvictedLine> {
        let geom = *self.cache.geometry();
        self.fill_parts(geom.set_index(line), geom.tag(line), conflict_bit)
    }

    /// [`Self::fill`] with the line already split into set index and
    /// tag. The displaced line (always from the same set) is recorded
    /// in the MCT and returned.
    pub fn fill_parts(&mut self, set: usize, tag: u64, conflict_bit: bool) -> Option<EvictedLine> {
        debug_assert!(
            self.cache.peek_at(set, tag).is_none(),
            "double fill of set {set} tag {tag:#x}"
        );
        if conflict_bit && probe::active() {
            probe::emit(probe::ProbeEvent::ConflictBit {
                set: set as u32,
                set_bit: true,
            });
        }
        let evicted = self.cache.fill_at(set, tag, conflict_bit);
        evicted.map(|ev| {
            let evicted_tag = self.cache.geometry().tag(ev.line);
            if ev.meta && probe::active() {
                probe::emit(probe::ProbeEvent::ConflictBit {
                    set: set as u32,
                    set_bit: false,
                });
            }
            self.table.record_eviction(set, evicted_tag);
            EvictedLine {
                line: ev.line,
                conflict_bit: ev.meta,
            }
        })
    }

    /// Removes a line (for victim-cache swaps), returning its conflict
    /// bit. Does **not** touch the MCT: whether a swap counts as an
    /// eviction is an architecture policy, expressed via
    /// [`Self::record_eviction_of`].
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        self.cache.invalidate(line)
    }

    /// Manually records `line` as the most recent eviction of its set.
    pub fn record_eviction_of(&mut self, line: LineAddr) {
        let geom = self.cache.geometry();
        let set = geom.set_index(line);
        let tag = geom.tag(line);
        self.table.record_eviction(set, tag);
    }

    /// The paper's bypass fix-up (§5.3): when a miss is excluded into
    /// a bypass buffer instead of the cache, install its tag in the
    /// MCT entry of the set it *would* have occupied, so a later miss
    /// on it can still be classified as a conflict.
    pub fn note_bypass(&mut self, line: LineAddr) {
        self.record_eviction_of(line);
    }

    /// The line a fill of `line` would displace right now, if any.
    #[must_use]
    pub fn eviction_candidate(&self, line: LineAddr) -> Option<LineAddr> {
        self.cache.eviction_candidate(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm4() -> ClassifyingCache {
        // 4 sets, direct-mapped, 64-byte lines.
        ClassifyingCache::new(CacheGeometry::new(256, 1, 64).unwrap(), TagBits::Full)
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn compulsory_miss_is_capacity_class() {
        let mut c = dm4();
        let out = c.access(line(0));
        assert_eq!(out.miss().unwrap().class, MissClass::Capacity);
        assert_eq!(c.class_counts(), (0, 1));
    }

    #[test]
    fn classic_conflict_scenario() {
        let mut c = dm4();
        c.access(line(1)); // A
        c.access(line(5)); // B evicts A, MCT remembers A
        let out = c.access(line(1)); // A again: conflict
        let detail = out.miss().unwrap();
        assert_eq!(detail.class, MissClass::Conflict);
        // The fill evicted B, whose conflict bit was clear (B came in
        // on a capacity miss).
        let ev = detail.evicted.unwrap();
        assert_eq!(ev.line, line(5));
        assert!(!ev.conflict_bit);
    }

    #[test]
    fn conflict_bit_travels_with_line() {
        let mut c = dm4();
        c.access(line(1));
        c.access(line(5));
        c.access(line(1)); // conflict: line 1 resident with bit set
        assert_eq!(c.conflict_bit(line(1)), Some(true));
        // Evicting line 1 now exposes its conflict bit.
        let out = c.access(line(9));
        let ev = out.miss().unwrap().evicted.unwrap();
        assert_eq!(ev.line, line(1));
        assert!(ev.conflict_bit);
    }

    #[test]
    fn hit_reports_conflict_bit() {
        let mut c = dm4();
        c.access(line(1));
        c.access(line(5));
        c.access(line(1));
        match c.access(line(1)) {
            AccessOutcome::Hit { conflict_bit } => assert!(conflict_bit),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn classification_happens_before_mct_update() {
        let mut c = dm4();
        c.access(line(1)); // A
                           // B evicts A; if the MCT were updated before classifying, B
                           // itself could never be classified against A's tag.
        let out = c.access(line(5));
        assert_eq!(out.miss().unwrap().class, MissClass::Capacity);
        // And a miss on B after C evicts it must be a conflict.
        c.access(line(9)); // C evicts B
        let out = c.access(line(5));
        assert_eq!(out.miss().unwrap().class, MissClass::Conflict);
    }

    #[test]
    fn note_bypass_enables_later_conflict_classification() {
        let mut c = dm4();
        // Line 1 is excluded to a bypass buffer: never filled, but its
        // tag is installed in the MCT.
        assert_eq!(c.classify_miss(line(1)), MissClass::Capacity);
        c.note_bypass(line(1));
        assert_eq!(c.classify_miss(line(1)), MissClass::Conflict);
    }

    #[test]
    fn filter_evaluation_on_miss_detail() {
        let detail = MissDetail {
            class: MissClass::Conflict,
            evicted: Some(EvictedLine {
                line: line(0),
                conflict_bit: false,
            }),
        };
        assert!(detail.filter_fires(ConflictFilter::OutConflict));
        assert!(detail.filter_fires(ConflictFilter::OrConflict));
        assert!(!detail.filter_fires(ConflictFilter::InConflict));
        assert!(!detail.filter_fires(ConflictFilter::AndConflict));
    }

    #[test]
    fn filter_with_no_eviction_reads_bit_as_false() {
        let detail = MissDetail {
            class: MissClass::Capacity,
            evicted: None,
        };
        for f in ConflictFilter::ALL {
            assert!(!detail.filter_fires(f), "{f}");
        }
    }

    #[test]
    fn invalidate_does_not_touch_mct() {
        let mut c = dm4();
        c.access(line(1));
        c.invalidate(line(1));
        // No eviction was recorded, so a miss on line 1 is capacity.
        assert_eq!(c.classify_miss(line(1)), MissClass::Capacity);
    }

    #[test]
    fn two_way_cache_classifies_with_dm_mct() {
        // 2-way, 2 sets: MCT still one entry per set.
        let geom = CacheGeometry::new(256, 2, 64).unwrap();
        let mut c = ClassifyingCache::new(geom, TagBits::Full);
        assert_eq!(c.table().num_sets(), 2);
        c.access(line(0));
        c.access(line(2)); // same set, second way
        c.access(line(4)); // evicts line 0 (LRU)
        let out = c.access(line(0));
        assert_eq!(out.miss().unwrap().class, MissClass::Conflict);
    }
}
