//! The **Miss Classification Table** (MCT) — the primary contribution
//! of Collins & Tullsen, *Hardware Identification of Cache Conflict
//! Misses*, MICRO-32 (1999).
//!
//! The MCT stores, for each cache set, all or part of the tag of the
//! line most recently evicted from that set. When the next miss to the
//! set carries a matching tag, the miss is identified as a **conflict
//! miss** — it would have hit in a slightly more associative cache.
//! Any other miss is a **capacity miss** (compulsory misses are
//! grouped with capacity). The structure is tiny (8–10 bits per set
//! suffice) and is consulted only on cache misses, off the critical
//! path.
//!
//! This crate provides:
//!
//! * [`MissClassificationTable`] — the raw table, with full or partial
//!   tags ([`TagBits`]);
//! * [`MissClass`] — the two-way classification;
//! * [`ConflictFilter`] — the paper's four eviction-time filters
//!   (*in-*, *out-*, *and-*, *or-conflict*), built from the incoming
//!   miss's class and the evicted line's *conflict bit*;
//! * [`ClassifyingCache`] — a set-associative cache with an attached
//!   MCT and per-line conflict bits, the building block every
//!   cache-assist architecture in the paper starts from;
//! * [`accuracy`] — evaluation of the MCT against the classic three-C
//!   oracle (Figures 1 and 2).
//!
//! # Examples
//!
//! ```
//! use cache_model::CacheGeometry;
//! use mct::{ClassifyingCache, MissClass, TagBits};
//! use sim_core::Addr;
//!
//! // The paper's 16 KB direct-mapped L1.
//! let geom = CacheGeometry::new(16 * 1024, 1, 64)?;
//! let mut cache = ClassifyingCache::new(geom, TagBits::Full);
//!
//! let a = Addr::new(0x0_0000).line(64);
//! let b = Addr::new(0x4_0000).line(64); // same set as `a`
//!
//! cache.access(a);                       // compulsory: capacity class
//! cache.access(b);                       // evicts a, remembers its tag
//! let outcome = cache.access(a);         // the paper's scenario:
//! assert_eq!(outcome.miss().unwrap().class, MissClass::Conflict);
//! # Ok::<(), cache_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
mod biased;
mod classified;
mod classifier;
mod filter;
mod shadow;
mod table;

pub use biased::BiasedCache;
pub use classified::{AccessOutcome, BlockClass, ClassifyingCache, EvictedLine, MissDetail};
pub use classifier::EvictionClassifier;
pub use filter::{ConflictFilter, MissClass};
pub use shadow::ShadowDirectory;
pub use table::{MissClassificationTable, TagBits};
