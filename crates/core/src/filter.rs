//! Miss classes and the paper's four eviction-time filters.

use core::fmt;

/// The MCT's two-way classification of a cache miss.
///
/// The paper groups compulsory misses with capacity misses, so every
/// miss is exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MissClass {
    /// The missing line's tag matched the most recently evicted tag of
    /// its set: a slightly more associative cache would have hit.
    Conflict,
    /// Everything else (including compulsory misses).
    Capacity,
}

impl MissClass {
    /// `true` for [`MissClass::Conflict`].
    #[must_use]
    pub const fn is_conflict(self) -> bool {
        matches!(self, MissClass::Conflict)
    }
}

impl fmt::Display for MissClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MissClass::Conflict => f.write_str("conflict"),
            MissClass::Capacity => f.write_str("capacity"),
        }
    }
}

/// The four filters the paper defines over an eviction event
/// (paper §3).
///
/// On a miss, two facts are available: whether the **evicted** line
/// originally entered the cache on a conflict miss (its *conflict
/// bit*), and whether the **incoming** miss was just classified as a
/// conflict miss. The filters combine them:
///
/// | filter | fires when |
/// |--------|------------|
/// | `InConflict`  | evicted line's conflict bit is set |
/// | `OutConflict` | the incoming miss is a conflict miss |
/// | `AndConflict` | both |
/// | `OrConflict`  | either |
///
/// `OutConflict` is the paper's usual default because it does not need
/// the per-line conflict bits; `OrConflict` is the most liberal
/// identification of conflict misses, `AndConflict` the most
/// conservative.
///
/// # Examples
///
/// ```
/// use mct::ConflictFilter;
///
/// // An eviction where the incoming miss was a conflict miss but the
/// // evicted line had entered on a capacity miss:
/// let (incoming_conflict, evicted_bit) = (true, false);
/// assert!(!ConflictFilter::InConflict.fires(incoming_conflict, evicted_bit));
/// assert!(ConflictFilter::OutConflict.fires(incoming_conflict, evicted_bit));
/// assert!(!ConflictFilter::AndConflict.fires(incoming_conflict, evicted_bit));
/// assert!(ConflictFilter::OrConflict.fires(incoming_conflict, evicted_bit));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ConflictFilter {
    /// The evicted line originally came in as a conflict miss.
    InConflict,
    /// The evicted line is being forced out by a conflict miss.
    OutConflict,
    /// Both the incoming and evicted lines were conflict misses.
    AndConflict,
    /// Either the incoming or evicted line was a conflict miss.
    OrConflict,
}

impl ConflictFilter {
    /// All four filters, in the order the paper's figures present them.
    pub const ALL: [ConflictFilter; 4] = [
        ConflictFilter::InConflict,
        ConflictFilter::OutConflict,
        ConflictFilter::AndConflict,
        ConflictFilter::OrConflict,
    ];

    /// Evaluates the filter for one eviction event.
    ///
    /// `incoming_conflict` — the incoming miss was classified
    /// conflict; `evicted_conflict_bit` — the displaced line's
    /// conflict bit.
    #[must_use]
    pub const fn fires(self, incoming_conflict: bool, evicted_conflict_bit: bool) -> bool {
        match self {
            ConflictFilter::InConflict => evicted_conflict_bit,
            ConflictFilter::OutConflict => incoming_conflict,
            ConflictFilter::AndConflict => incoming_conflict && evicted_conflict_bit,
            ConflictFilter::OrConflict => incoming_conflict || evicted_conflict_bit,
        }
    }

    /// Whether evaluating this filter requires the per-line conflict
    /// bits (everything except `OutConflict` does).
    #[must_use]
    pub const fn needs_conflict_bits(self) -> bool {
        !matches!(self, ConflictFilter::OutConflict)
    }
}

impl fmt::Display for ConflictFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictFilter::InConflict => f.write_str("in-conflict"),
            ConflictFilter::OutConflict => f.write_str("out-conflict"),
            ConflictFilter::AndConflict => f.write_str("and-conflict"),
            ConflictFilter::OrConflict => f.write_str("or-conflict"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_table() {
        use ConflictFilter::*;
        // (incoming, evicted_bit) -> (in, out, and, or)
        let cases = [
            ((false, false), (false, false, false, false)),
            ((false, true), (true, false, false, true)),
            ((true, false), (false, true, false, true)),
            ((true, true), (true, true, true, true)),
        ];
        for ((inc, ev), (i, o, a, r)) in cases {
            assert_eq!(InConflict.fires(inc, ev), i, "in {inc} {ev}");
            assert_eq!(OutConflict.fires(inc, ev), o, "out {inc} {ev}");
            assert_eq!(AndConflict.fires(inc, ev), a, "and {inc} {ev}");
            assert_eq!(OrConflict.fires(inc, ev), r, "or {inc} {ev}");
        }
    }

    #[test]
    fn or_is_most_liberal_and_is_most_conservative() {
        use ConflictFilter::*;
        for inc in [false, true] {
            for ev in [false, true] {
                if AndConflict.fires(inc, ev) {
                    assert!(InConflict.fires(inc, ev));
                    assert!(OutConflict.fires(inc, ev));
                }
                if InConflict.fires(inc, ev) || OutConflict.fires(inc, ev) {
                    assert!(OrConflict.fires(inc, ev));
                }
            }
        }
    }

    #[test]
    fn only_out_conflict_avoids_conflict_bits() {
        for f in ConflictFilter::ALL {
            assert_eq!(f.needs_conflict_bits(), f != ConflictFilter::OutConflict);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ConflictFilter::OrConflict.to_string(), "or-conflict");
        assert_eq!(MissClass::Conflict.to_string(), "conflict");
        assert_eq!(MissClass::Capacity.to_string(), "capacity");
    }
}
