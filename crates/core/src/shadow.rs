//! The multi-tag extension the paper mentions but does not evaluate:
//! *"we could store multiple evicted tags per set to identify
//! higher-order conflict misses, but we do not consider that
//! optimization"* (§3). Stone attributes the idea — a **shadow
//! directory** of recently evicted line addresses per set — to
//! J. Pomerene.
//!
//! [`ShadowDirectory`] keeps the last *depth* evicted tags per set
//! instead of one. Depth 1 is exactly the paper's MCT; deeper
//! directories catch conflicts that need more than one extra way —
//! e.g. a three-line round-robin in one set, invisible to the MCT
//! (the next miss never matches the *most recent* eviction), is caught
//! at depth ≥ 2. The ablation experiment (`repro ablation`) measures
//! what that buys on the workload suite.

use crate::{EvictionClassifier, MissClass, TagBits};

/// A per-set FIFO of the last `depth` evicted tags.
///
/// # Examples
///
/// ```
/// use mct::{EvictionClassifier, MissClass, ShadowDirectory, TagBits};
///
/// let mut dir = ShadowDirectory::new(4, TagBits::Full, 2);
/// dir.record_eviction(0, 10);
/// dir.record_eviction(0, 11);
/// // Both recent evictions classify as conflicts...
/// assert_eq!(dir.classify(0, 10), MissClass::Conflict);
/// assert_eq!(dir.classify(0, 11), MissClass::Conflict);
/// // ...until enough later evictions push them out.
/// dir.record_eviction(0, 12);
/// dir.record_eviction(0, 13);
/// assert_eq!(dir.classify(0, 10), MissClass::Capacity);
/// ```
#[derive(Debug, Clone)]
pub struct ShadowDirectory {
    /// `depth` slots per set, most recent first; `u64::MAX` = empty.
    tags: Vec<u64>,
    depth: usize,
    mask: u64,
    tag_bits: TagBits,
}

/// Sentinel for an empty slot. Real tags are masked, so with partial
/// tags they can never equal `u64::MAX`; with full tags a line would
/// need an address beyond any simulated footprint.
const EMPTY: u64 = u64::MAX;

impl ShadowDirectory {
    /// Creates a directory with `depth` evicted tags per set.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `depth` is zero, or `tag_bits` is an
    /// invalid width.
    #[must_use]
    pub fn new(num_sets: usize, tag_bits: TagBits, depth: usize) -> Self {
        assert!(num_sets > 0, "shadow directory needs at least one set");
        assert!(depth > 0, "depth must be at least 1");
        ShadowDirectory {
            tags: vec![EMPTY; num_sets * depth],
            depth,
            mask: tag_bits.mask(),
            tag_bits,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.tags.len() / self.depth
    }

    /// Evicted tags remembered per set.
    #[must_use]
    pub const fn depth(&self) -> usize {
        self.depth
    }

    /// The configured tag width.
    #[must_use]
    pub const fn tag_bits(&self) -> TagBits {
        self.tag_bits
    }

    /// Storage cost in bits: sets × depth × (tag width + valid bit).
    #[must_use]
    pub fn storage_bits(&self, full_tag_bits: u32) -> u64 {
        let width = match self.tag_bits {
            TagBits::Full => full_tag_bits,
            TagBits::Low(n) => n.min(full_tag_bits),
        };
        self.tags.len() as u64 * (u64::from(width) + 1)
    }

    fn slots(&self, set: usize) -> &[u64] {
        &self.tags[set * self.depth..(set + 1) * self.depth]
    }
}

impl EvictionClassifier for ShadowDirectory {
    fn classify(&self, set: usize, tag: u64) -> MissClass {
        let masked = tag & self.mask;
        if self.slots(set).contains(&masked) {
            MissClass::Conflict
        } else {
            MissClass::Capacity
        }
    }

    fn record_eviction(&mut self, set: usize, tag: u64) {
        let masked = tag & self.mask;
        let slots = &mut self.tags[set * self.depth..(set + 1) * self.depth];
        // If the tag is already remembered, refresh it to the front;
        // otherwise shift everything down and drop the oldest.
        let from = slots
            .iter()
            .position(|&t| t == masked)
            .unwrap_or(slots.len() - 1);
        slots[..=from].rotate_right(1);
        slots[0] = masked;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_one_equals_the_mct() {
        use crate::MissClassificationTable;
        let mut shallow = ShadowDirectory::new(8, TagBits::Full, 1);
        let mut mct = MissClassificationTable::new(8, TagBits::Full);
        let mut rng = sim_core::rng::SplitMix64::new(5);
        for _ in 0..2_000 {
            let set = rng.next_below(8) as usize;
            let tag = rng.next_below(16);
            if rng.chance(0.5) {
                shallow.record_eviction(set, tag);
                mct.record_eviction(set, tag);
            } else {
                assert_eq!(shallow.classify(set, tag), mct.classify(set, tag));
            }
        }
    }

    #[test]
    fn deeper_directory_catches_round_robin() {
        // Three tags cycling through one set: each miss re-references
        // the tag evicted two steps ago.
        let mut d1 = ShadowDirectory::new(1, TagBits::Full, 1);
        let mut d2 = ShadowDirectory::new(1, TagBits::Full, 2);
        let mut resident: Option<u64> = None;
        for round in 0..9u64 {
            let tag = round % 3;
            if round >= 3 {
                // After warmup: depth 1 never matches (the most recent
                // eviction is the *previous* access, not this one),
                // depth 2 always does.
                assert_eq!(d1.classify(0, tag), MissClass::Capacity, "round {round}");
                assert_eq!(d2.classify(0, tag), MissClass::Conflict, "round {round}");
            }
            // The miss evicts whatever was resident (the previous
            // access), then the new line moves in.
            if let Some(evicted) = resident {
                d1.record_eviction(0, evicted);
                d2.record_eviction(0, evicted);
            }
            resident = Some(tag);
        }
    }

    #[test]
    fn refresh_moves_tag_to_front() {
        let mut d = ShadowDirectory::new(1, TagBits::Full, 2);
        d.record_eviction(0, 1);
        d.record_eviction(0, 2);
        d.record_eviction(0, 1); // refresh, not duplicate
        d.record_eviction(0, 3);
        // 1 was refreshed, so {1, 3} survive and 2 is gone.
        assert_eq!(d.classify(0, 1), MissClass::Conflict);
        assert_eq!(d.classify(0, 3), MissClass::Conflict);
        assert_eq!(d.classify(0, 2), MissClass::Capacity);
    }

    #[test]
    fn partial_tags_alias_like_the_mct() {
        let mut d = ShadowDirectory::new(1, TagBits::Low(4), 2);
        d.record_eviction(0, 0x5);
        assert_eq!(d.classify(0, 0x15), MissClass::Conflict); // aliases
        assert_eq!(d.classify(0, 0x6), MissClass::Capacity);
    }

    #[test]
    fn storage_scales_with_depth() {
        let d1 = ShadowDirectory::new(256, TagBits::Low(10), 1);
        let d4 = ShadowDirectory::new(256, TagBits::Low(10), 4);
        assert_eq!(d4.storage_bits(18), 4 * d1.storage_bits(18));
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn zero_depth_rejected() {
        let _ = ShadowDirectory::new(4, TagBits::Full, 0);
    }
}
