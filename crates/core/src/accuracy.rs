//! Scoring the MCT against the classic three-C oracle
//! (paper Figures 1 and 2).
//!
//! For every miss of the real (set-associative) cache, the oracle says
//! whether it was a conflict miss in the classic sense (a
//! fully-associative LRU cache of equal capacity would have hit) or a
//! non-conflict miss (capacity/compulsory). The MCT's on-the-fly label
//! is compared against that ground truth:
//!
//! * **conflict accuracy** — fraction of oracle-conflict misses the
//!   MCT also labels conflict;
//! * **capacity accuracy** — fraction of oracle-non-conflict misses
//!   the MCT labels capacity.
//!
//! # Examples
//!
//! ```
//! use cache_model::CacheGeometry;
//! use mct::accuracy::AccuracyEvaluator;
//! use mct::TagBits;
//! use sim_core::LineAddr;
//!
//! let geom = CacheGeometry::new(1024, 1, 64)?; // 16 sets DM
//! let mut eval = AccuracyEvaluator::new(geom, TagBits::Full);
//! // Two lines fighting over one set: classic conflict behaviour.
//! for _ in 0..100 {
//!     eval.observe(LineAddr::new(0));
//!     eval.observe(LineAddr::new(16));
//! }
//! let report = eval.finish();
//! assert!(report.conflict.value() > 0.9);
//! # Ok::<(), cache_model::ConfigError>(())
//! ```

use cache_model::oracle::ThreeCClassifier;
use cache_model::CacheGeometry;
use sim_core::probe;
use sim_core::stats::Ratio;
use sim_core::LineAddr;

use crate::{
    BlockClass, ClassifyingCache, EvictionClassifier, MissClass, MissClassificationTable, TagBits,
};

/// Accuracy of the MCT over one reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccuracyReport {
    /// Oracle-conflict misses the MCT labelled conflict.
    pub conflict: Ratio,
    /// Oracle-non-conflict (capacity + compulsory) misses the MCT
    /// labelled capacity.
    pub capacity: Ratio,
    /// Total references observed.
    pub accesses: u64,
    /// Total real-cache misses observed.
    pub misses: u64,
}

impl AccuracyReport {
    /// Fraction of all misses classified in agreement with the oracle.
    #[must_use]
    pub fn overall(&self) -> f64 {
        let agree = self.conflict.numerator() + self.capacity.numerator();
        let total = self.conflict.denominator() + self.capacity.denominator();
        if total == 0 {
            0.0
        } else {
            agree as f64 / total as f64
        }
    }

    /// Merges another report's tallies into this one (suite
    /// averaging).
    pub fn merge(&mut self, other: &AccuracyReport) {
        self.conflict.merge(other.conflict);
        self.capacity.merge(other.capacity);
        self.accesses += other.accesses;
        self.misses += other.misses;
    }
}

/// Runs a [`ClassifyingCache`] and a [`ThreeCClassifier`] side by side
/// over one reference stream.
#[derive(Debug, Clone)]
pub struct AccuracyEvaluator<T = MissClassificationTable> {
    cache: ClassifyingCache<T>,
    oracle: ThreeCClassifier,
    report: AccuracyReport,
    /// Scratch for [`Self::observe_block`]: per-event oracle conflict
    /// flags, reused across blocks.
    oracle_conflict: Vec<bool>,
    /// Scratch for [`Self::observe_block`]: per-event MCT
    /// classifications, reused across blocks.
    classes: Vec<BlockClass>,
}

impl AccuracyEvaluator {
    /// Creates an evaluator for the given cache shape and MCT tag
    /// width. The oracle's shadow cache gets the same line capacity.
    #[must_use]
    pub fn new(geom: CacheGeometry, tag_bits: TagBits) -> Self {
        Self::with_classifier(
            geom,
            MissClassificationTable::new(geom.num_sets(), tag_bits),
        )
    }
}

impl<T: EvictionClassifier> AccuracyEvaluator<T> {
    /// Creates an evaluator around any eviction classifier (the
    /// shadow-directory depth ablation uses this).
    #[must_use]
    pub fn with_classifier(geom: CacheGeometry, table: T) -> Self {
        let oracle = ThreeCClassifier::new(geom.num_lines());
        AccuracyEvaluator {
            cache: ClassifyingCache::with_classifier(geom, table),
            oracle,
            report: AccuracyReport::default(),
            oracle_conflict: Vec::new(),
            classes: Vec::new(),
        }
    }

    /// Observes one reference (the oracle must see hits too).
    pub fn observe(&mut self, line: LineAddr) {
        let geom = *self.cache.geometry();
        self.observe_parts(geom.set_index(line), geom.tag(line));
    }

    /// [`Self::observe`] with the line already split into set index
    /// and tag (decomposed replay). The oracle still sees the whole
    /// line, reconstructed with `line_from_parts` — identical to the
    /// address the parts came from.
    pub fn observe_parts(&mut self, set: usize, tag: u64) {
        self.report.accesses += 1;
        let line = self.cache.geometry().line_from_parts(tag, set);
        let oracle_class = self.oracle.observe(line);
        let outcome = self.cache.access_parts(set, tag);
        let Some(miss) = outcome.miss() else { return };
        self.report.misses += 1;
        let agree = if oracle_class.is_conflict() {
            miss.class == MissClass::Conflict
        } else {
            miss.class == MissClass::Capacity
        };
        probe::emit(probe::ProbeEvent::Oracle {
            oracle_conflict: oracle_class.is_conflict(),
            agree,
        });
        if oracle_class.is_conflict() {
            self.report.conflict.record(agree);
        } else {
            self.report.capacity.record(agree);
        }
    }

    /// Observes a block of decomposed references
    /// ([`Self::observe_parts`] in bulk — the block replay path).
    ///
    /// The three-C oracle is *globally* order-sensitive (its shadow
    /// fully-associative cache sees every reference), so it runs
    /// first, sequentially in trace order, into a scratch flag array.
    /// The MCT cache then replays the same block set-bucketed
    /// ([`ClassifyingCache::access_parts_block`]) — its state is
    /// disjoint from the oracle's — and the two outcome arrays are
    /// merged index by index, which reproduces the per-event report
    /// exactly.
    ///
    /// With a probe sink armed the whole block falls back to
    /// per-event [`Self::observe_parts`], so the emitted event stream
    /// (`Access`, `Classify`, `ConflictBit`, `Oracle` interleaved per
    /// event) is byte-identical to unbatched replay.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a set index is out of
    /// range for the geometry.
    pub fn observe_block(&mut self, sets: &[u32], tags: &[u64]) {
        if probe::active() {
            for (&set, &tag) in sets.iter().zip(tags) {
                self.observe_parts(set as usize, tag);
            }
            return;
        }
        let geom = *self.cache.geometry();
        self.report.accesses += sets.len() as u64;
        self.oracle_conflict.clear();
        for (&set, &tag) in sets.iter().zip(tags) {
            let line = geom.line_from_parts(tag, set as usize);
            self.oracle_conflict
                .push(self.oracle.observe(line).is_conflict());
        }
        self.classes.clear();
        self.classes.resize(sets.len(), BlockClass::Hit);
        // The scratch vectors are disjoint fields, but the borrow
        // checker cannot split them through `self`; move `classes`
        // out for the duration of the cache pass.
        let mut classes = std::mem::take(&mut self.classes);
        self.cache.access_parts_block(sets, tags, &mut classes);
        self.classes = classes;
        self.merge_oracle_and_classes();
    }

    /// Observes a whole set-partitioned trace
    /// ([`Self::observe_parts`] in bulk — the decompose-time-sorted
    /// replay path).
    ///
    /// `sets`/`tags` are the trace-order arrays (the oracle's shadow
    /// fully-associative cache is globally order-sensitive, so it
    /// replays them sequentially first); `runs` is the same trace
    /// regrouped by set, which the MCT cache consumes run-by-run
    /// ([`ClassifyingCache::access_parts_partitioned`]) with results
    /// scattered back to trace order through the stored original
    /// indices. The merged report is identical to per-event replay.
    ///
    /// With a probe sink armed the whole trace falls back to
    /// per-event [`Self::observe_parts`] over the trace-order arrays
    /// (partitioned replay cannot reproduce the per-event probe
    /// stream), so emitted events stay byte-identical to unbatched
    /// replay.
    ///
    /// # Panics
    ///
    /// Panics if the trace-order arrays and `runs` disagree in
    /// length, or a set index is out of range for the geometry.
    pub fn observe_partitioned(
        &mut self,
        sets: &[u32],
        tags: &[u64],
        runs: cache_model::SetRuns<'_>,
    ) {
        assert_eq!(sets.len(), tags.len(), "sets/tags length mismatch");
        assert_eq!(
            sets.len(),
            runs.len(),
            "trace-order arrays and partitioned runs disagree in length"
        );
        if probe::active() {
            for (&set, &tag) in sets.iter().zip(tags) {
                self.observe_parts(set as usize, tag);
            }
            return;
        }
        let geom = *self.cache.geometry();
        self.report.accesses += sets.len() as u64;
        self.oracle_conflict.clear();
        for (&set, &tag) in sets.iter().zip(tags) {
            let line = geom.line_from_parts(tag, set as usize);
            self.oracle_conflict
                .push(self.oracle.observe(line).is_conflict());
        }
        self.classes.clear();
        self.classes.resize(sets.len(), BlockClass::Hit);
        // Same borrow split as `observe_block`.
        let mut classes = std::mem::take(&mut self.classes);
        self.cache.access_parts_partitioned(runs, &mut classes);
        self.classes = classes;
        self.merge_oracle_and_classes();
    }

    /// Merges the scratch oracle flags and MCT classifications —
    /// parallel arrays in trace order — into the report.
    fn merge_oracle_and_classes(&mut self) {
        for (&oracle_conflict, &class) in self.oracle_conflict.iter().zip(&self.classes) {
            if class == BlockClass::Hit {
                continue;
            }
            self.report.misses += 1;
            let agree = if oracle_conflict {
                class == BlockClass::Conflict
            } else {
                class == BlockClass::Capacity
            };
            // No Oracle probe events here: this path runs only with
            // probes disarmed (armed replay took the per-event branch
            // above), where emit would be a no-op anyway.
            if oracle_conflict {
                self.report.conflict.record(agree);
            } else {
                self.report.capacity.record(agree);
            }
        }
    }

    /// Observes a whole stream.
    pub fn observe_all<I>(&mut self, lines: I)
    where
        I: IntoIterator<Item = LineAddr>,
    {
        for line in lines {
            self.observe(line);
        }
    }

    /// Returns the accumulated report.
    #[must_use]
    pub fn finish(self) -> AccuracyReport {
        self.report
    }

    /// The report so far, without consuming the evaluator.
    #[must_use]
    pub fn report(&self) -> &AccuracyReport {
        &self.report
    }

    /// The underlying classifying cache (for hit-rate inspection).
    #[must_use]
    pub fn cache(&self) -> &ClassifyingCache<T> {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn dm(sets: u64) -> CacheGeometry {
        CacheGeometry::new(sets * 64, 1, 64).unwrap()
    }

    #[test]
    fn pure_conflict_stream_scores_high_conflict_accuracy() {
        // 16-set DM cache; lines 0 and 16 collide but the total
        // working set (2 lines) is far below capacity (16 lines):
        // every non-compulsory miss is an oracle conflict miss.
        let mut eval = AccuracyEvaluator::new(dm(16), TagBits::Full);
        for _ in 0..1000 {
            eval.observe(line(0));
            eval.observe(line(16));
        }
        let r = eval.finish();
        assert!(r.conflict.denominator() > 1500);
        assert!(
            r.conflict.value() > 0.99,
            "conflict accuracy {}",
            r.conflict.value()
        );
    }

    #[test]
    fn pure_capacity_stream_scores_high_capacity_accuracy() {
        // Cyclic sweep over 64 lines through a 16-line cache: every
        // miss (after warmup) is a capacity miss for both models.
        let mut eval = AccuracyEvaluator::new(dm(16), TagBits::Full);
        for _ in 0..50 {
            for n in 0..64 {
                eval.observe(line(n));
            }
        }
        let r = eval.finish();
        assert!(r.capacity.denominator() > 1000);
        assert!(
            r.capacity.value() > 0.95,
            "capacity accuracy {}",
            r.capacity.value()
        );
        // No oracle conflict misses should exist at all in a pure
        // cyclic sweep of a direct-mapped cache (FA LRU misses too).
        assert!(r.conflict.denominator() < r.misses / 10);
    }

    #[test]
    fn hits_do_not_enter_the_report() {
        let mut eval = AccuracyEvaluator::new(dm(4), TagBits::Full);
        eval.observe(line(0));
        for _ in 0..99 {
            eval.observe(line(0));
        }
        let r = eval.finish();
        assert_eq!(r.accesses, 100);
        assert_eq!(r.misses, 1);
        assert_eq!(r.conflict.denominator() + r.capacity.denominator(), 1);
    }

    #[test]
    fn overall_combines_both_classes() {
        let r = AccuracyReport {
            conflict: Ratio::from_counts(8, 10),
            capacity: Ratio::from_counts(9, 10),
            ..AccuracyReport::default()
        };
        assert!((r.overall() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AccuracyReport {
            conflict: Ratio::from_counts(1, 2),
            capacity: Ratio::from_counts(3, 4),
            accesses: 10,
            misses: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.conflict.denominator(), 4);
        assert_eq!(a.capacity.denominator(), 8);
        assert_eq!(a.accesses, 20);
        assert_eq!(a.misses, 12);
    }
}
