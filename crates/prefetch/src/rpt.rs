//! A Chen & Baer reference prediction table (RPT) stride prefetcher.
//!
//! The comparison point the paper mentions in §5.2: per-instruction
//! stride prediction with the classic four-state entry automaton
//! (initial → transient → steady; no-pred on breakdown). Unlike the
//! next-line scheme, the RPT must be read and updated on **every**
//! memory access — the hardware cost the MCT-based filter avoids.

use assist_buffer::{AssistBuffer, BufferPorts};
use cache_model::{CacheGeometry, ConfigError};
use cpu_model::{MemResponse, MemorySystem, Plumbing};
use mct::{ClassifyingCache, MissClass, TagBits};
use sim_core::{Cycle, LineAddr};
use trace_gen::MemoryAccess;

use crate::PrefetchStats;

/// RPT entry states (Chen & Baer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Initial,
    Transient,
    Steady,
    NoPred,
}

#[derive(Debug, Clone, Copy)]
struct RptEntry {
    tag: u64,
    last_addr: u64,
    stride: i64,
    state: State,
}

/// Configuration of an [`RptSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RptConfig {
    /// Entries in the (direct-mapped, PC-indexed) prediction table.
    pub table_entries: usize,
    /// Prefetch buffer entries.
    pub buffer_entries: usize,
    /// The paper's §5.2 suggestion: "the RPT scheme can potentially
    /// benefit from miss classification by removing the noise from
    /// the access stream created by the conflict misses". When set,
    /// accesses that miss as conflicts do not update the RPT, so a
    /// contended structure cannot corrupt the stride state of the
    /// streams sharing its PC.
    pub filter_conflict_noise: bool,
}

impl RptConfig {
    /// A typical configuration: 512-entry table, 8-entry buffer, no
    /// filtering.
    #[must_use]
    pub const fn default_config() -> Self {
        RptConfig {
            table_entries: 512,
            buffer_entries: 8,
            filter_conflict_noise: false,
        }
    }

    /// Same, with MCT conflict-noise filtering enabled.
    #[must_use]
    pub const fn filtered() -> Self {
        RptConfig {
            filter_conflict_noise: true,
            ..Self::default_config()
        }
    }
}

impl Default for RptConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// L1 + RPT stride prefetcher.
#[derive(Debug)]
pub struct RptSystem {
    cfg: RptConfig,
    l1: ClassifyingCache,
    table: Vec<Option<RptEntry>>,
    buffer: AssistBuffer<Cycle>,
    ports: BufferPorts,
    plumbing: Plumbing,
    stats: PrefetchStats,
}

impl RptSystem {
    /// Creates the system over an explicit geometry and miss path.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is zero.
    #[must_use]
    pub fn new(cfg: RptConfig, l1_geometry: CacheGeometry, plumbing: Plumbing) -> Self {
        assert!(cfg.table_entries > 0, "RPT needs entries");
        RptSystem {
            cfg,
            l1: ClassifyingCache::new(l1_geometry, TagBits::Full),
            table: vec![None; cfg.table_entries],
            buffer: AssistBuffer::new(cfg.buffer_entries),
            ports: BufferPorts::new(),
            plumbing,
            stats: PrefetchStats::default(),
        }
    }

    /// The paper's L1 over the default miss path.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_default(cfg: RptConfig) -> Result<Self, ConfigError> {
        Ok(Self::new(
            cfg,
            CacheGeometry::new(16 * 1024, 1, 64)?,
            Plumbing::paper_default()?,
        ))
    }

    /// The effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Updates the table for one access and returns a predicted next
    /// address if the entry is confident.
    fn predict(&mut self, access: MemoryAccess) -> Option<u64> {
        let idx = (access.pc.raw() >> 2) as usize % self.cfg.table_entries;
        let tag = access.pc.raw();
        let addr = access.addr.raw();
        let entry = &mut self.table[idx];
        match entry {
            Some(e) if e.tag == tag => {
                let observed = addr as i64 - e.last_addr as i64;
                let correct = observed == e.stride;
                e.state = match (e.state, correct) {
                    (State::Initial, true) => State::Steady,
                    (State::Initial, false) => State::Transient,
                    (State::Transient, true) => State::Steady,
                    (State::Transient, false) => State::NoPred,
                    (State::Steady, true) => State::Steady,
                    (State::Steady, false) => State::Initial,
                    (State::NoPred, true) => State::Transient,
                    (State::NoPred, false) => State::NoPred,
                };
                if !correct && e.state != State::Steady {
                    e.stride = observed;
                }
                e.last_addr = addr;
                if e.state == State::Steady && e.stride != 0 {
                    return Some((addr as i64 + e.stride) as u64);
                }
                None
            }
            _ => {
                *entry = Some(RptEntry {
                    tag,
                    last_addr: addr,
                    stride: 0,
                    state: State::Initial,
                });
                None
            }
        }
    }

    fn issue_prefetch(&mut self, line: LineAddr, now: Cycle) {
        if self.l1.contains(line) || self.buffer.contains(line) {
            return;
        }
        match self.plumbing.fetch_prefetch(line, now) {
            None => self.stats.discarded += 1,
            Some(ready) => {
                self.stats.issued += 1;
                let _ = self.ports.line_write(ready);
                if self.buffer.insert(line, ready).is_some() {
                    self.stats.wasted += 1;
                }
            }
        }
    }
}

impl MemorySystem for RptSystem {
    fn access(&mut self, access: MemoryAccess, now: Cycle) -> MemResponse {
        let line_size = self.l1.geometry().line_size();
        let line = access.addr.line(line_size);
        self.stats.accesses += 1;

        let grant = self.plumbing.l1_grant(line, now);
        let l1_done = grant + self.plumbing.timings().l1_latency;

        // Conflict-noise filtering: a miss classified as conflict is
        // hidden from the RPT so it cannot corrupt stride state.
        let resident = self.l1.contains(line);
        let is_conflict_miss = !resident && self.l1.classify_miss(line) == MissClass::Conflict;
        let predicted = if self.cfg.filter_conflict_noise && is_conflict_miss {
            self.stats.filtered += 1;
            None
        } else {
            // The RPT is consulted on every (unfiltered) access — its
            // cost relative to the miss-only MCT is the paper's point.
            self.predict(access)
        };

        let response = if self.l1.probe(line).is_some() {
            self.stats.d_hits += 1;
            MemResponse::at(l1_done)
        } else if let Some(arrival) = self.buffer.probe_remove(line) {
            self.stats.buffer_hits += 1;
            let word = self.ports.word_read(l1_done);
            let ready = (word + self.plumbing.timings().buffer_extra).max(arrival);
            let promote = self.ports.line_read(ready);
            self.plumbing.l1_occupy(line, promote, 2);
            let class = self.l1.classify_miss(line);
            let _ = self.l1.fill(line, class.is_conflict());
            MemResponse::at(ready)
        } else {
            self.stats.demand_misses += 1;
            let ready = self.plumbing.fetch_demand(line, grant);
            let class = self.l1.classify_miss(line);
            let _ = self.l1.fill(line, class.is_conflict());
            MemResponse::at(ready)
        };

        if let Some(addr) = predicted {
            let target = sim_core::Addr::new(addr).line(line_size);
            if target != line {
                self.issue_prefetch(target, now);
            }
        }
        response
    }

    fn label(&self) -> String {
        if self.cfg.filter_conflict_noise {
            "RPT stride prefetch (MCT-filtered)".to_owned()
        } else {
            "RPT stride prefetch".to_owned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_model::{CpuConfig, OooModel};
    use sim_core::Addr;
    use trace_gen::pattern::{PointerChase, StridedStream};
    use trace_gen::{TraceEvent, TraceSource};

    fn run(trace: Vec<TraceEvent>) -> RptSystem {
        let mut sys = RptSystem::paper_default(RptConfig::default_config()).unwrap();
        let cpu = OooModel::new(CpuConfig::paper_default());
        cpu.run(&mut sys, trace);
        sys
    }

    #[test]
    fn steady_stride_is_predicted() {
        // One PC striding by 128 bytes: classic RPT case.
        let trace: Vec<_> = StridedStream::new(Addr::new(0), 1 << 22, 128)
            .with_work(4)
            .take_events(4_000)
            .collect();
        let sys = run(trace);
        let s = sys.stats();
        assert!(s.coverage() > 0.8, "coverage {}", s.coverage());
        assert!(s.accuracy() > 0.8, "accuracy {}", s.accuracy());
    }

    #[test]
    fn pointer_chase_defeats_stride_prediction() {
        let trace: Vec<_> = PointerChase::new(Addr::new(0), 1 << 20, 64, 9)
            .with_work(4)
            .take_events(4_000)
            .collect();
        let sys = run(trace);
        // Random strides: the automaton never reaches steady for long.
        assert!(
            sys.stats().coverage() < 0.1,
            "coverage {}",
            sys.stats().coverage()
        );
    }

    #[test]
    fn conflict_noise_filtering_preserves_stride_state() {
        // One PC serves both a steady 128-byte stride and a
        // ping-ponging pair in one set. Unfiltered, the pair's
        // conflict misses keep knocking the RPT entry out of steady
        // state; with MCT filtering the stride stream keeps
        // prefetching.
        let build_trace = || {
            let mut events = Vec::new();
            let pc = Addr::new(0x400);
            let pair = [Addr::new(0), Addr::new(16 * 1024)];
            for i in 0..6_000u64 {
                // stride access
                events.push(trace_gen::MemoryAccess::load(
                    Addr::new((1 << 30) + i * 128),
                    pc,
                ));
                // conflict access at the same PC
                events.push(trace_gen::MemoryAccess::load(pair[(i % 2) as usize], pc));
            }
            events
        };
        let run = |cfg: RptConfig| {
            let mut sys = RptSystem::paper_default(cfg).unwrap();
            let mut now = Cycle::ZERO;
            for a in build_trace() {
                now = sys.access(a, now).ready;
            }
            sys
        };
        let plain = run(RptConfig::default_config());
        let filtered = run(RptConfig::filtered());
        assert!(
            filtered.stats().issued > plain.stats().issued * 2,
            "filtered {} vs plain {}",
            filtered.stats().issued,
            plain.stats().issued
        );
        assert!(
            filtered.stats().coverage() > plain.stats().coverage() + 0.1,
            "filtered {} vs plain {}",
            filtered.stats().coverage(),
            plain.stats().coverage()
        );
    }

    #[test]
    fn automaton_recovers_after_stride_change() {
        let mut sys = RptSystem::paper_default(RptConfig::default_config()).unwrap();
        let pc = Addr::new(0x400);
        let mut now = Cycle::ZERO;
        // Stride 256 for a while...
        for i in 0..50u64 {
            let r = sys.access(MemoryAccess::load(Addr::new(i * 256), pc), now);
            now = r.ready + 1;
        }
        let issued_first = sys.stats().issued;
        assert!(
            issued_first > 30,
            "steady stride should prefetch, issued {issued_first}"
        );
        // ...then switch to stride 512 from a new base: it re-learns.
        for i in 0..50u64 {
            let r = sys.access(MemoryAccess::load(Addr::new(1 << 30 | (i * 512)), pc), now);
            now = r.ready + 1;
        }
        assert!(
            sys.stats().issued > issued_first + 20,
            "issued {}",
            sys.stats().issued
        );
    }
}
