//! Hardware prefetching with miss-classification filtering
//! (paper §5.2).
//!
//! The paper's observation: a next-line prefetcher has high coverage
//! on "messy" codes but wastes many prefetches, and conflict misses
//! are poor prefetch candidates — the next line of a conflict miss is
//! rarely the next thing needed. Filtering prefetches by the MCT's
//! classification (don't prefetch on conflict misses) raises prefetch
//! accuracy substantially at little cost in coverage.
//!
//! Two prefetchers are provided:
//!
//! * [`NextLineSystem`] — the paper's subject: prefetch line+1 on a
//!   miss, optionally filtered by any [`mct::ConflictFilter`];
//! * [`RptSystem`] — a Chen & Baer reference prediction table (stride)
//!   prefetcher, the "more sophisticated" comparison point the paper
//!   mentions; it must be read and updated on *every* access, which is
//!   exactly the hardware cost the MCT-filtered next-line scheme
//!   avoids.
//!
//! # Examples
//!
//! ```
//! use prefetcher::{NextLineSystem, PrefetchConfig};
//! use cpu_model::{CpuConfig, OooModel};
//! use trace_gen::pattern::SequentialSweep;
//! use trace_gen::TraceSource;
//! use sim_core::Addr;
//!
//! // Streaming: next-line prefetching's best case.
//! let trace: Vec<_> = SequentialSweep::new(Addr::new(0), 1 << 20, 64)
//!     .take_events(4_000)
//!     .collect();
//! let mut sys = NextLineSystem::paper_default(PrefetchConfig::unfiltered())?;
//! OooModel::new(CpuConfig::paper_default()).run(&mut sys, trace);
//! assert!(sys.stats().coverage() > 0.8);
//! # Ok::<(), cache_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod next_line;
mod rpt;

pub use next_line::{NextLineSystem, PrefetchConfig, PrefetchStats};
pub use rpt::{RptConfig, RptSystem};
