//! The next-line prefetcher with conflict filtering.

use assist_buffer::{AssistBuffer, BufferPorts};
use cache_model::{CacheGeometry, ConfigError, L2MemoryConfig};
use cpu_model::{MemResponse, MemTimings, MemorySystem, Plumbing};
use mct::{ClassifyingCache, ConflictFilter, TagBits};
use sim_core::probe;
use sim_core::{Cycle, LineAddr};
use trace_gen::MemoryAccess;

/// Configuration of a [`NextLineSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Skip the prefetch when this filter fires on the triggering miss
    /// (`None` = the conventional unfiltered prefetcher, Figure 4's
    /// first bar).
    pub filter: Option<ConflictFilter>,
    /// Prefetch buffer entries (paper: 8).
    pub entries: usize,
    /// MCT tag width.
    pub tag_bits: TagBits,
}

impl PrefetchConfig {
    /// The conventional next-line prefetcher (no filtering).
    #[must_use]
    pub const fn unfiltered() -> Self {
        PrefetchConfig {
            filter: None,
            entries: 8,
            tag_bits: TagBits::Full,
        }
    }

    /// A filtered prefetcher: don't prefetch when `filter` fires.
    #[must_use]
    pub const fn filtered(filter: ConflictFilter) -> Self {
        PrefetchConfig {
            filter: Some(filter),
            entries: 8,
            tag_bits: TagBits::Full,
        }
    }
}

/// Prefetch effectiveness counters (Figure 4's metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrefetchStats {
    /// Total accesses.
    pub accesses: u64,
    /// L1 hits.
    pub d_hits: u64,
    /// Misses served from the prefetch buffer (useful prefetches).
    pub buffer_hits: u64,
    /// Misses served from L2/memory.
    pub demand_misses: u64,
    /// Prefetches issued to the memory system.
    pub issued: u64,
    /// Prefetches displaced from the buffer before any use.
    pub wasted: u64,
    /// Prefetches dropped because the MSHR file was full (the paper:
    /// "prefetches are discarded").
    pub discarded: u64,
    /// Prefetches suppressed by the conflict filter.
    pub filtered: u64,
}

impl PrefetchStats {
    /// Useful prefetches over issued prefetches.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / self.issued as f64
        }
    }

    /// Fraction of L1 misses covered by the prefetch buffer.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let misses = self.buffer_hits + self.demand_misses;
        if misses == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / misses as f64
        }
    }

    /// L1 hit rate.
    #[must_use]
    pub fn d_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.d_hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Arrival {
    ready: Cycle,
}

/// L1 + next-line prefetch buffer.
///
/// On a miss, the next sequential line is fetched into the buffer
/// (unless filtered, already resident, in flight, or the MSHRs are
/// full). On a buffer hit the line moves into the cache and the
/// next line is prefetched — the buffer behaves like a one-deep
/// stream buffer per miss.
#[derive(Debug)]
pub struct NextLineSystem {
    cfg: PrefetchConfig,
    l1: ClassifyingCache,
    buffer: AssistBuffer<Arrival>,
    ports: BufferPorts,
    plumbing: Plumbing,
    stats: PrefetchStats,
}

impl NextLineSystem {
    /// Creates the system over an explicit geometry and miss path.
    #[must_use]
    pub fn new(cfg: PrefetchConfig, l1_geometry: CacheGeometry, plumbing: Plumbing) -> Self {
        NextLineSystem {
            cfg,
            l1: ClassifyingCache::new(l1_geometry, cfg.tag_bits),
            buffer: AssistBuffer::new(cfg.entries),
            ports: BufferPorts::new(),
            plumbing,
            stats: PrefetchStats::default(),
        }
    }

    /// The paper's L1 over the default miss path.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_default(cfg: PrefetchConfig) -> Result<Self, ConfigError> {
        Ok(Self::new(
            cfg,
            CacheGeometry::new(16 * 1024, 1, 64)?,
            Plumbing::paper_default()?,
        ))
    }

    /// The paper's prefetch-study variant: same system but with the
    /// slower L1↔L2 bus that makes wasted prefetch traffic costly.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_slow_bus(cfg: PrefetchConfig) -> Result<Self, ConfigError> {
        let plumbing = Plumbing::new(
            MemTimings::paper_default(),
            L2MemoryConfig::paper_slow_bus()?,
        );
        Ok(Self::new(
            cfg,
            CacheGeometry::new(16 * 1024, 1, 64)?,
            plumbing,
        ))
    }

    /// The effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PrefetchConfig {
        &self.cfg
    }

    /// The shared miss path (L2 stats, demand-latency histogram).
    #[must_use]
    pub fn plumbing(&self) -> &Plumbing {
        &self.plumbing
    }

    fn issue_prefetch(&mut self, line: LineAddr, now: Cycle) {
        if self.l1.contains(line) || self.buffer.contains(line) {
            return;
        }
        match self.plumbing.fetch_prefetch(line, now) {
            None => self.stats.discarded += 1,
            Some(ready) => {
                self.stats.issued += 1;
                let _ = self.ports.line_write(ready);
                if self.buffer.insert(line, Arrival { ready }).is_some() {
                    // The displaced entry never saw a hit (hits remove
                    // their entry), so it was a wasted prefetch.
                    self.stats.wasted += 1;
                }
            }
        }
    }
}

impl MemorySystem for NextLineSystem {
    fn access(&mut self, access: MemoryAccess, now: Cycle) -> MemResponse {
        let line_size = self.l1.geometry().line_size();
        let line = access.addr.line(line_size);
        self.stats.accesses += 1;

        let grant = self.plumbing.l1_grant(line, now);
        let l1_done = grant + self.plumbing.timings().l1_latency;
        if self.l1.probe(line).is_some() {
            self.stats.d_hits += 1;
            probe::emit(probe::ProbeEvent::Access { hit: true });
            return MemResponse::at(l1_done);
        }

        let class = self.l1.classify_miss(line);

        if let Some(arrival) = self.buffer.probe_remove(line) {
            // Prefetch buffer hit: the line moves into the cache and
            // the next line is prefetched (paper §5.2).
            self.stats.buffer_hits += 1;
            probe::emit(probe::ProbeEvent::Access { hit: true });
            let word = self.ports.word_read(l1_done);
            let ready = (word + self.plumbing.timings().buffer_extra).max(arrival.ready);
            let promote = self.ports.line_read(ready);
            self.plumbing.l1_occupy(line, promote, 2);
            let _ = self.l1.fill(line, class.is_conflict());
            // Issue the next prefetch as soon as the hit is detected,
            // not when the data returns — lookahead is the whole point.
            self.issue_prefetch(line.next(), word);
            return MemResponse::at(ready);
        }

        // Demand miss.
        self.stats.demand_misses += 1;
        probe::emit(probe::ProbeEvent::Access { hit: false });
        let ready = self.plumbing.fetch_demand(line, grant);
        let evicted = self.l1.fill(line, class.is_conflict());
        let suppressed = self
            .cfg
            .filter
            .is_some_and(|f| f.fires(class.is_conflict(), evicted.is_some_and(|e| e.conflict_bit)));
        if self.cfg.filter.is_some() {
            probe::emit(probe::ProbeEvent::Filter {
                unit: probe::FilterUnit::Prefetch,
                fired: suppressed,
            });
        }
        if suppressed {
            self.stats.filtered += 1;
        } else {
            self.issue_prefetch(line.next(), grant);
        }
        MemResponse::at(ready)
    }

    fn label(&self) -> String {
        match self.cfg.filter {
            None => "next-line prefetch".to_owned(),
            Some(f) => format!("next-line prefetch (ignore {f})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_model::{CpuConfig, OooModel};
    use sim_core::Addr;
    use trace_gen::pattern::{SequentialSweep, SetConflict};
    use trace_gen::{TraceEvent, TraceSource};

    const CACHE: u64 = 16 * 1024;

    fn run(cfg: PrefetchConfig, trace: Vec<TraceEvent>) -> (NextLineSystem, cpu_model::CpuReport) {
        let mut sys = NextLineSystem::paper_default(cfg).unwrap();
        let cpu = OooModel::new(CpuConfig::paper_default());
        let report = cpu.run(&mut sys, trace);
        (sys, report)
    }

    fn stream(n: usize) -> Vec<TraceEvent> {
        SequentialSweep::new(Addr::new(0), 1 << 21, 64)
            .with_work(4)
            .take_events(n)
            .collect()
    }

    fn ping_pong(n: usize) -> Vec<TraceEvent> {
        SetConflict::new(Addr::new(0), 2, CACHE, 1)
            .with_work(4)
            .take_events(n)
            .collect()
    }

    #[test]
    fn streaming_gets_high_coverage_and_accuracy() {
        let (sys, _) = run(PrefetchConfig::unfiltered(), stream(4_000));
        let s = sys.stats();
        assert!(s.coverage() > 0.9, "coverage {}", s.coverage());
        assert!(s.accuracy() > 0.9, "accuracy {}", s.accuracy());
    }

    #[test]
    fn conflict_stream_wastes_unfiltered_prefetches() {
        let (sys, _) = run(PrefetchConfig::unfiltered(), ping_pong(2_000));
        let s = sys.stats();
        // Next lines of ping-ponging misses are never referenced.
        assert!(s.accuracy() < 0.1, "accuracy {}", s.accuracy());
        assert!(s.issued > 0);
    }

    #[test]
    fn filtering_suppresses_conflict_prefetches() {
        let (sys, _) = run(
            PrefetchConfig::filtered(ConflictFilter::OrConflict),
            ping_pong(2_000),
        );
        let s = sys.stats();
        // After warmup every miss classifies conflict: nothing issued.
        assert!(s.issued < 20, "issued {}", s.issued);
        assert!(s.filtered > 1_500, "filtered {}", s.filtered);
    }

    #[test]
    fn filtering_cuts_useless_traffic_on_mixed_streams() {
        // Interleave streaming (prefetchable) with eight ping-pong
        // pairs (whose next lines are never referenced and churn the
        // buffer).
        let mut trace = Vec::new();
        let mut a = SequentialSweep::new(Addr::new(1 << 30), 1 << 21, 64).with_work(4);
        let mut pairs: Vec<_> = (0..8)
            .map(|i| SetConflict::new(Addr::new(i * 128), 2, CACHE, 1).with_work(4))
            .collect();
        for i in 0..8_000usize {
            if i % 2 == 0 {
                trace.push(a.next_event());
            } else {
                trace.push(pairs[(i / 2) % 8].next_event());
            }
        }
        let (unfiltered, _) = run(PrefetchConfig::unfiltered(), trace.clone());
        let (filtered, _) = run(PrefetchConfig::filtered(ConflictFilter::OrConflict), trace);
        // The filter removes a large share of the (useless) traffic...
        assert!(
            (filtered.stats().issued as f64) < 0.7 * unfiltered.stats().issued as f64,
            "filtered issued {} vs unfiltered {}",
            filtered.stats().issued,
            unfiltered.stats().issued
        );
        // ...which shows up as higher accuracy...
        assert!(
            filtered.stats().accuracy() > unfiltered.stats().accuracy() + 0.05,
            "filtered {} vs unfiltered {}",
            filtered.stats().accuracy(),
            unfiltered.stats().accuracy()
        );
        // ...at little cost in coverage (conflict prefetches were
        // useless anyway).
        assert!(filtered.stats().coverage() > unfiltered.stats().coverage() - 0.1);
    }

    #[test]
    fn prefetching_speeds_up_work_heavy_streaming() {
        // 8 accesses per line (8-byte elements) and 8 instructions per
        // access: the window covers ~one line, so the baseline has no
        // miss overlap to exploit while the prefetcher runs one line
        // ahead — the conditions under which next-line prefetching
        // wins (cf. swim in Figure 4).
        let trace: Vec<_> = SequentialSweep::new(Addr::new(0), 512 * 1024, 8)
            .with_work(7)
            .take_events(32_000)
            .collect();
        let cpu = OooModel::new(CpuConfig::paper_default());
        let mut base = cpu_model::BaselineSystem::paper_default().unwrap();
        let base_report = cpu.run(&mut base, trace.clone());
        let (_, pf_report) = run(PrefetchConfig::unfiltered(), trace);
        assert!(
            pf_report.speedup_over(&base_report) > 1.1,
            "speedup {}",
            pf_report.speedup_over(&base_report)
        );
    }

    #[test]
    fn prefetched_lines_prefill_l2() {
        // Even wasted prefetches land in L2 (paper §5.5's observation).
        let (sys, _) = run(PrefetchConfig::unfiltered(), ping_pong(500));
        assert!(sys.stats().issued > 0);
        // The next line of contender 0 was prefetched and never used,
        // but it now sits in L2.
        let next = Addr::new(0).line(64).next();
        assert!(sys.plumbing.l2().l2_contains(next));
    }

    #[test]
    fn buffer_hit_promotes_line_into_cache() {
        let mut sys = NextLineSystem::paper_default(PrefetchConfig::unfiltered()).unwrap();
        let pc = Addr::new(0);
        // Miss on line 0 triggers prefetch of line 1.
        let a = MemoryAccess::load(Addr::new(0), pc);
        let r = sys.access(a, Cycle::ZERO);
        // Touch line 1 after it has arrived: buffer hit, then resident.
        let b = MemoryAccess::load(Addr::new(64), pc);
        let r2 = sys.access(b, r.ready + 200);
        assert_eq!(sys.stats().buffer_hits, 1);
        assert!(sys.l1.contains(Addr::new(64).line(64)));
        // And served faster than a demand L2 hit would be.
        assert!(r2.ready - (r.ready + 200) < 20);
    }

    #[test]
    fn no_prefetch_for_resident_next_line() {
        let mut sys = NextLineSystem::paper_default(PrefetchConfig::unfiltered()).unwrap();
        let pc = Addr::new(0);
        // Make line 1 resident first (this itself prefetches line 2).
        sys.access(MemoryAccess::load(Addr::new(64), pc), Cycle::ZERO);
        let issued_before = sys.stats().issued;
        assert_eq!(issued_before, 1);
        // Miss on line 0: next line (1) already resident, no prefetch.
        sys.access(MemoryAccess::load(Addr::new(0), pc), Cycle::new(500));
        assert_eq!(sys.stats().issued, issued_before);
    }
}
