//! The **Adaptive Miss Buffer** (paper §5.5).
//!
//! The paper's payoff: with the MCT identifying each miss's type on
//! the fly, one small buffer can apply *the most appropriate
//! optimization to each miss individually* —
//!
//! * **conflict misses** → victim-cache the displaced line (and serve
//!   victim hits without swapping);
//! * **capacity misses** → prefetch the next line, and/or exclude the
//!   missing line into the buffer instead of polluting the cache.
//!
//! All policies share a single fully-associative buffer (8 entries by
//! default, 16 in the larger configuration) whose entries are tagged
//! with the *role* they entered under; roles can transition (a
//! prefetched line hit under an exclusion policy becomes an exclusion
//! line). Multi-policy decisions use the *out-conflict* filter, per
//! the paper.
//!
//! The headline result this crate reproduces: the combined `VictPref`
//! policy more than doubles the gain of any single policy with the
//! same 8-entry buffer, and the do-everything `VicPreExc` becomes
//! attractive at 16 entries (Figure 6); the gain comes from covering
//! both miss classes at once (Figure 7).
//!
//! # Examples
//!
//! ```
//! use amb::{AmbConfig, AmbPolicy, AmbSystem};
//! use cpu_model::{CpuConfig, OooModel};
//! use trace_gen::pattern::SetConflict;
//! use trace_gen::TraceSource;
//! use sim_core::Addr;
//!
//! let trace: Vec<_> = SetConflict::new(Addr::new(0), 2, 16 * 1024, 1)
//!     .take_events(2_000)
//!     .collect();
//! let mut sys = AmbSystem::paper_default(AmbConfig::new(AmbPolicy::VictPref))?;
//! OooModel::new(CpuConfig::paper_default()).run(&mut sys, trace);
//! assert!(sys.stats().victim_hit_rate() > 0.4);
//! # Ok::<(), cache_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use assist_buffer::{AssistBuffer, BufferPorts};
use cache_model::{CacheGeometry, ConfigError};
use cpu_model::{MemResponse, MemorySystem, Plumbing};
use mct::{ClassifyingCache, MissClass, TagBits};
use sim_core::probe;
use sim_core::{Cycle, LineAddr};
use trace_gen::MemoryAccess;

/// The Figure 6 policy combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AmbPolicy {
    /// Victim caching only (best single-policy variant: no swap on
    /// conflict hits, fill on conflict evictions only).
    Vict,
    /// Next-line prefetching only (best variant: capacity misses
    /// only).
    Pref,
    /// Cache exclusion only (best variant: exclude capacity misses).
    Excl,
    /// Victim-cache conflict misses, prefetch capacity misses — the
    /// paper's best combination at 8 entries.
    VictPref,
    /// Prefetch and exclude capacity misses.
    PrefExcl,
    /// Victim-cache conflict misses, exclude capacity misses.
    VictExcl,
    /// Everything: victim conflicts, prefetch + exclude capacity —
    /// the policy that wins with a 16-entry buffer.
    VicPreExc,
}

impl AmbPolicy {
    /// All policies in the paper's figure order.
    pub const ALL: [AmbPolicy; 7] = [
        AmbPolicy::Vict,
        AmbPolicy::Pref,
        AmbPolicy::Excl,
        AmbPolicy::VictPref,
        AmbPolicy::PrefExcl,
        AmbPolicy::VictExcl,
        AmbPolicy::VicPreExc,
    ];

    const fn victims(self) -> bool {
        matches!(
            self,
            AmbPolicy::Vict | AmbPolicy::VictPref | AmbPolicy::VictExcl | AmbPolicy::VicPreExc
        )
    }

    const fn prefetches(self) -> bool {
        matches!(
            self,
            AmbPolicy::Pref | AmbPolicy::VictPref | AmbPolicy::PrefExcl | AmbPolicy::VicPreExc
        )
    }

    const fn excludes(self) -> bool {
        matches!(
            self,
            AmbPolicy::Excl | AmbPolicy::PrefExcl | AmbPolicy::VictExcl | AmbPolicy::VicPreExc
        )
    }
}

impl std::fmt::Display for AmbPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            AmbPolicy::Vict => "Vict",
            AmbPolicy::Pref => "Pref",
            AmbPolicy::Excl => "Excl",
            AmbPolicy::VictPref => "VictPref",
            AmbPolicy::PrefExcl => "PrefExcl",
            AmbPolicy::VictExcl => "VictExcl",
            AmbPolicy::VicPreExc => "VicPreExc",
        };
        f.write_str(name)
    }
}

/// How a line entered the buffer (the "extra bits" of §5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Role {
    /// Displaced from the cache by a conflict miss.
    Victim,
    /// Brought in by a next-line prefetch.
    Prefetch,
    /// Excluded from the cache on a capacity miss.
    Exclusion,
}

/// Configuration of an [`AmbSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmbConfig {
    /// The policy combination.
    pub policy: AmbPolicy,
    /// Buffer entries (8 in Figure 6's main result, 16 in the large
    /// variant).
    pub entries: usize,
    /// MCT tag width.
    pub tag_bits: TagBits,
}

impl AmbConfig {
    /// The paper's 8-entry configuration.
    #[must_use]
    pub const fn new(policy: AmbPolicy) -> Self {
        AmbConfig {
            policy,
            entries: 8,
            tag_bits: TagBits::Full,
        }
    }

    /// The 16-entry configuration.
    #[must_use]
    pub const fn large(policy: AmbPolicy) -> Self {
        AmbConfig {
            policy,
            entries: 16,
            tag_bits: TagBits::Full,
        }
    }
}

/// The Figure 7 hit-rate components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AmbStats {
    /// Total accesses.
    pub accesses: u64,
    /// L1 hits.
    pub d_hits: u64,
    /// Buffer hits on victim-role entries.
    pub victim_hits: u64,
    /// Buffer hits on prefetch-role entries.
    pub prefetch_hits: u64,
    /// Buffer hits on exclusion-role entries.
    pub exclusion_hits: u64,
    /// Misses served from L2/memory.
    pub demand_misses: u64,
    /// Prefetches issued.
    pub prefetches_issued: u64,
    /// Prefetches dropped (MSHRs full).
    pub prefetches_discarded: u64,
}

impl AmbStats {
    fn rate(&self, n: u64) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            n as f64 / self.accesses as f64
        }
    }

    /// L1 hit rate.
    #[must_use]
    pub fn d_hit_rate(&self) -> f64 {
        self.rate(self.d_hits)
    }

    /// Victim-component buffer hit rate.
    #[must_use]
    pub fn victim_hit_rate(&self) -> f64 {
        self.rate(self.victim_hits)
    }

    /// Prefetch-component buffer hit rate.
    #[must_use]
    pub fn prefetch_hit_rate(&self) -> f64 {
        self.rate(self.prefetch_hits)
    }

    /// Exclusion-component buffer hit rate.
    #[must_use]
    pub fn exclusion_hit_rate(&self) -> f64 {
        self.rate(self.exclusion_hits)
    }

    /// All buffer hits.
    #[must_use]
    pub fn buffer_hits(&self) -> u64 {
        self.victim_hits + self.prefetch_hits + self.exclusion_hits
    }

    /// Combined hit rate (cache + buffer), the Figure 7 total.
    #[must_use]
    pub fn total_hit_rate(&self) -> f64 {
        self.rate(self.d_hits + self.buffer_hits())
    }

    /// Miss rate after the buffer.
    #[must_use]
    pub fn effective_miss_rate(&self) -> f64 {
        self.rate(self.demand_misses)
    }
}

#[derive(Debug, Clone, Copy)]
struct AmbMeta {
    role: Role,
    ready: Cycle,
}

/// The Adaptive Miss Buffer system: one classifying L1, one shared
/// buffer, per-miss policy dispatch.
#[derive(Debug)]
pub struct AmbSystem {
    cfg: AmbConfig,
    l1: ClassifyingCache,
    buffer: AssistBuffer<AmbMeta>,
    ports: BufferPorts,
    plumbing: Plumbing,
    stats: AmbStats,
}

impl AmbSystem {
    /// Creates the system over an explicit geometry and miss path.
    #[must_use]
    pub fn new(cfg: AmbConfig, l1_geometry: CacheGeometry, plumbing: Plumbing) -> Self {
        AmbSystem {
            cfg,
            l1: ClassifyingCache::new(l1_geometry, cfg.tag_bits),
            buffer: AssistBuffer::new(cfg.entries),
            ports: BufferPorts::new(),
            plumbing,
            stats: AmbStats::default(),
        }
    }

    /// The paper's 16 KB direct-mapped L1 over the default miss path.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_default(cfg: AmbConfig) -> Result<Self, ConfigError> {
        Ok(Self::new(
            cfg,
            CacheGeometry::new(16 * 1024, 1, 64)?,
            Plumbing::paper_default()?,
        ))
    }

    /// The Figure 7 counters.
    #[must_use]
    pub fn stats(&self) -> &AmbStats {
        &self.stats
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &AmbConfig {
        &self.cfg
    }

    /// The shared miss path (L2 stats, demand-latency histogram).
    #[must_use]
    pub fn plumbing(&self) -> &Plumbing {
        &self.plumbing
    }

    fn issue_prefetch(&mut self, line: LineAddr, now: Cycle) {
        if self.l1.contains(line) || self.buffer.contains(line) {
            return;
        }
        match self.plumbing.fetch_prefetch(line, now) {
            None => self.stats.prefetches_discarded += 1,
            Some(ready) => {
                self.stats.prefetches_issued += 1;
                let _ = self.ports.line_write(ready);
                probe::emit(probe::ProbeEvent::AmbPartition {
                    role: probe::AmbRole::Prefetch,
                });
                self.buffer.insert(
                    line,
                    AmbMeta {
                        role: Role::Prefetch,
                        ready,
                    },
                );
            }
        }
    }

    /// Handles a buffer hit; returns when the data is available.
    fn buffer_hit(
        &mut self,
        line: LineAddr,
        meta: AmbMeta,
        class: MissClass,
        l1_done: Cycle,
    ) -> Cycle {
        let word = self.ports.word_read(l1_done);
        let base_ready = word + self.plumbing.timings().buffer_extra;
        let ready = match meta.role {
            Role::Prefetch => base_ready.max(meta.ready),
            _ => base_ready,
        };
        match meta.role {
            Role::Victim => {
                self.stats.victim_hits += 1;
                if class == MissClass::Conflict {
                    // Serve without swapping (the no-swap policy): the
                    // line keeps its buffer slot.
                    let _ = self.buffer.probe(line);
                } else {
                    // A capacity re-reference: promote into the cache.
                    let _ = self.buffer.probe_remove(line);
                    self.promote(line, class, ready);
                }
            }
            Role::Prefetch => {
                self.stats.prefetch_hits += 1;
                if self.cfg.policy.excludes() {
                    // §5.5: the hit leaves the line in the buffer but
                    // marks it as an exclusion line.
                    if let Some(m) = self.buffer.probe(line) {
                        m.role = Role::Exclusion;
                        probe::emit(probe::ProbeEvent::AmbPartition {
                            role: probe::AmbRole::Exclusion,
                        });
                    }
                } else {
                    let _ = self.buffer.probe_remove(line);
                    self.promote(line, class, ready);
                }
                if self.cfg.policy.prefetches() {
                    self.issue_prefetch(line.next(), word);
                }
            }
            Role::Exclusion => {
                self.stats.exclusion_hits += 1;
                // Exclusion lines stay until bumped.
                let _ = self.buffer.probe(line);
            }
        }
        ready
    }

    /// Moves a buffer line into the cache (a swap-like operation).
    fn promote(&mut self, line: LineAddr, class: MissClass, at: Cycle) {
        let start = self.ports.swap(at);
        self.plumbing.l1_occupy(line, start, 2);
        if let Some(evicted) = self.l1.fill(line, class.is_conflict()) {
            if self.cfg.policy.victims() && class == MissClass::Conflict {
                probe::emit(probe::ProbeEvent::AmbPartition {
                    role: probe::AmbRole::Victim,
                });
                self.buffer.insert(
                    evicted.line,
                    AmbMeta {
                        role: Role::Victim,
                        ready: at,
                    },
                );
            }
        }
    }
}

impl MemorySystem for AmbSystem {
    fn access(&mut self, access: MemoryAccess, now: Cycle) -> MemResponse {
        let line_size = self.l1.geometry().line_size();
        let line = access.addr.line(line_size);
        self.stats.accesses += 1;

        let grant = self.plumbing.l1_grant(line, now);
        let l1_done = grant + self.plumbing.timings().l1_latency;
        if self.l1.probe(line).is_some() {
            self.stats.d_hits += 1;
            probe::emit(probe::ProbeEvent::Access { hit: true });
            return MemResponse::at(l1_done);
        }

        // All multi-policy decisions use the out-conflict filter: the
        // incoming miss's classification.
        let class = self.l1.classify_miss(line);

        if let Some(&meta) = self.buffer.peek(line) {
            probe::emit(probe::ProbeEvent::Access { hit: true });
            let ready = self.buffer_hit(line, meta, class, l1_done);
            return MemResponse::at(ready);
        }

        self.stats.demand_misses += 1;
        probe::emit(probe::ProbeEvent::Access { hit: false });
        let ready = self.plumbing.fetch_demand(line, grant);

        let exclude = self.cfg.policy.excludes() && class == MissClass::Capacity;
        if self.cfg.policy.excludes() {
            probe::emit(probe::ProbeEvent::Filter {
                unit: probe::FilterUnit::AmbExclude,
                fired: exclude,
            });
        }
        if exclude {
            let _ = self.ports.line_write(ready);
            probe::emit(probe::ProbeEvent::AmbPartition {
                role: probe::AmbRole::Exclusion,
            });
            self.buffer.insert(
                line,
                AmbMeta {
                    role: Role::Exclusion,
                    ready,
                },
            );
            self.l1.note_bypass(line);
        } else {
            if let Some(evicted) = self.l1.fill(line, class.is_conflict()) {
                let keep_victim = self.cfg.policy.victims() && class == MissClass::Conflict;
                if self.cfg.policy.victims() {
                    probe::emit(probe::ProbeEvent::Filter {
                        unit: probe::FilterUnit::AmbVictim,
                        fired: keep_victim,
                    });
                }
                if keep_victim {
                    let _ = self.ports.line_write(ready);
                    probe::emit(probe::ProbeEvent::AmbPartition {
                        role: probe::AmbRole::Victim,
                    });
                    self.buffer.insert(
                        evicted.line,
                        AmbMeta {
                            role: Role::Victim,
                            ready,
                        },
                    );
                }
            }
        }
        if self.cfg.policy.prefetches() {
            probe::emit(probe::ProbeEvent::Filter {
                unit: probe::FilterUnit::AmbPrefetch,
                fired: class == MissClass::Capacity,
            });
            if class == MissClass::Capacity {
                self.issue_prefetch(line.next(), grant);
            }
        }
        MemResponse::at(ready)
    }

    fn label(&self) -> String {
        format!("AMB {} ({} entries)", self.cfg.policy, self.cfg.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_model::{BaselineSystem, CpuConfig, OooModel};
    use sim_core::Addr;
    use trace_gen::pattern::{SequentialSweep, SetConflict};
    use trace_gen::{TraceEvent, TraceSource};

    const CACHE: u64 = 16 * 1024;

    fn run(cfg: AmbConfig, trace: Vec<TraceEvent>) -> (AmbSystem, cpu_model::CpuReport) {
        let mut sys = AmbSystem::paper_default(cfg).unwrap();
        let cpu = OooModel::new(CpuConfig::paper_default());
        let report = cpu.run(&mut sys, trace);
        (sys, report)
    }

    /// A workload with both miss classes: ping-pong conflicts plus a
    /// work-heavy stream (the conditions of §5.5).
    fn mixed(n: usize) -> Vec<TraceEvent> {
        let mut pair = SetConflict::new(Addr::new(64), 2, CACHE, 1).with_work(7);
        let mut stream = SequentialSweep::new(Addr::new(1 << 30), 512 * 1024, 8).with_work(7);
        (0..n)
            .map(|i| {
                if i % 4 == 0 {
                    pair.next_event()
                } else {
                    stream.next_event()
                }
            })
            .collect()
    }

    #[test]
    fn victim_component_covers_conflicts() {
        let trace: Vec<_> = SetConflict::new(Addr::new(0), 2, CACHE, 1)
            .with_work(4)
            .take_events(2_000)
            .collect();
        let (sys, _) = run(AmbConfig::new(AmbPolicy::Vict), trace);
        assert!(
            sys.stats().victim_hit_rate() > 0.4,
            "victim HR {}",
            sys.stats().victim_hit_rate()
        );
        assert_eq!(sys.stats().prefetch_hits, 0);
        assert_eq!(sys.stats().exclusion_hits, 0);
    }

    #[test]
    fn prefetch_component_covers_streams() {
        let trace: Vec<_> = SequentialSweep::new(Addr::new(0), 1 << 21, 64)
            .with_work(4)
            .take_events(4_000)
            .collect();
        let (sys, _) = run(AmbConfig::new(AmbPolicy::Pref), trace);
        assert!(
            sys.stats().prefetch_hit_rate() > 0.8,
            "prefetch HR {}",
            sys.stats().prefetch_hit_rate()
        );
    }

    #[test]
    fn exclusion_component_serves_bypassed_lines() {
        // Streaming with 8 accesses per line: the first access
        // excludes the line, the next seven hit it in the buffer.
        let trace: Vec<_> = SequentialSweep::new(Addr::new(0), 1 << 20, 8)
            .with_work(4)
            .take_events(8_000)
            .collect();
        let (sys, _) = run(AmbConfig::new(AmbPolicy::Excl), trace);
        assert!(
            sys.stats().exclusion_hit_rate() > 0.5,
            "exclusion HR {}",
            sys.stats().exclusion_hit_rate()
        );
    }

    #[test]
    fn victpref_covers_both_miss_classes() {
        let (sys, _) = run(AmbConfig::new(AmbPolicy::VictPref), mixed(16_000));
        let s = sys.stats();
        assert!(s.victim_hits > 100, "victim hits {}", s.victim_hits);
        assert!(s.prefetch_hits > 100, "prefetch hits {}", s.prefetch_hits);
    }

    #[test]
    fn figure6_combination_beats_singles() {
        // The paper's headline: the combined policy outperforms every
        // single policy on a workload with both miss classes.
        let trace = mixed(24_000);
        let cpu = OooModel::new(CpuConfig::paper_default());
        let mut base = BaselineSystem::paper_default().unwrap();
        let base_report = cpu.run(&mut base, trace.clone());

        let gain = |policy| {
            let (_, report) = run(AmbConfig::new(policy), trace.clone());
            report.speedup_over(&base_report)
        };
        let vict = gain(AmbPolicy::Vict);
        let pref = gain(AmbPolicy::Pref);
        let excl = gain(AmbPolicy::Excl);
        let victpref = gain(AmbPolicy::VictPref);
        let best_single = vict.max(pref).max(excl);
        assert!(
            victpref > best_single,
            "VictPref {victpref:.3} must beat singles (vict {vict:.3}, pref {pref:.3}, excl {excl:.3})"
        );
        assert!(
            victpref > 1.05,
            "VictPref should show a real gain, got {victpref:.3}"
        );
    }

    #[test]
    fn prefetch_hit_transitions_to_exclusion_role() {
        let mut sys = AmbSystem::paper_default(AmbConfig::new(AmbPolicy::PrefExcl)).unwrap();
        let pc = Addr::new(0);
        // Capacity miss on line 0: excluded AND next line prefetched.
        let r = sys.access(MemoryAccess::load(Addr::new(0), pc), Cycle::ZERO);
        assert_eq!(sys.stats().prefetches_issued, 1);
        // Hit the prefetched line: it stays in the buffer, now an
        // exclusion line.
        let r2 = sys.access(MemoryAccess::load(Addr::new(64), pc), r.ready + 200);
        assert_eq!(sys.stats().prefetch_hits, 1);
        let line1 = Addr::new(64).line(64);
        assert!(sys.buffer.contains(line1));
        assert_eq!(sys.buffer.peek(line1).unwrap().role, Role::Exclusion);
        // And a further touch counts as an exclusion hit.
        sys.access(MemoryAccess::load(Addr::new(64), pc), r2.ready + 10);
        assert_eq!(sys.stats().exclusion_hits, 1);
    }

    #[test]
    fn sixteen_entries_help_the_do_everything_policy() {
        let trace = mixed(24_000);
        let (small, small_report) = run(AmbConfig::new(AmbPolicy::VicPreExc), trace.clone());
        let (large, large_report) = run(AmbConfig::large(AmbPolicy::VicPreExc), trace);
        assert!(
            large.stats().total_hit_rate() >= small.stats().total_hit_rate(),
            "16-entry {} vs 8-entry {}",
            large.stats().total_hit_rate(),
            small.stats().total_hit_rate()
        );
        assert!(large_report.cycles <= small_report.cycles);
    }

    #[test]
    fn out_conflict_dispatch_no_victim_fill_on_capacity_miss() {
        let mut sys = AmbSystem::paper_default(AmbConfig::new(AmbPolicy::Vict)).unwrap();
        let pc = Addr::new(0);
        // Two capacity (compulsory) misses to the same set: the
        // displaced line must NOT be victim-cached.
        let r = sys.access(MemoryAccess::load(Addr::new(0), pc), Cycle::ZERO);
        sys.access(MemoryAccess::load(Addr::new(CACHE), pc), r.ready);
        assert_eq!(sys.buffer.len(), 0);
    }

    #[test]
    fn victexcl_converges_to_buffer_service_for_ping_pong() {
        // Under VictExcl, the ping-pong pair's *first* (compulsory)
        // misses classify capacity and are excluded into the buffer,
        // where constant re-hits keep them MRU — so the pair settles
        // as exclusion lines and the victim path never needs to
        // engage. The conflicts are covered all the same.
        let (sys, _) = run(AmbConfig::new(AmbPolicy::VictExcl), mixed(16_000));
        let s = sys.stats();
        assert!(
            s.exclusion_hits > 1_000,
            "exclusion hits {}",
            s.exclusion_hits
        );
        assert_eq!(s.prefetches_issued, 0);
        assert!(
            s.total_hit_rate() > 0.8,
            "total hit rate {}",
            s.total_hit_rate()
        );
    }

    #[test]
    fn victim_role_capacity_rereference_promotes_to_cache() {
        let mut sys = AmbSystem::paper_default(AmbConfig::new(AmbPolicy::Vict)).unwrap();
        let pc = Addr::new(0);
        let mut t = Cycle::ZERO;
        // Build a conflict so line 0 lands in the buffer as a victim:
        // 0 -> CACHE (evicts 0? no: compulsory; no victim fill on
        // capacity) ... force it: 0, CACHE, 0 (conflict, evicts CACHE
        // with bit unset? out-conflict: class of miss on 0 is
        // conflict => victim-cache the evicted line CACHE).
        for addr in [0u64, CACHE, 0, CACHE] {
            t = sys.access(MemoryAccess::load(Addr::new(addr), pc), t).ready + 1;
        }
        // One of the pair now sits in the buffer with the Victim role.
        assert!(!sys.buffer.is_empty());
        let buffered = sys.buffer.iter().next().map(|(l, _)| l).unwrap();
        // Flood unrelated sets so the next miss on the buffered line
        // classifies capacity (MCT entry overwritten by... same set
        // is required; instead overwrite the MCT entry of its set
        // with an unrelated third line).
        let third = (buffered.raw() * 64) ^ (5 * CACHE);
        t = sys
            .access(MemoryAccess::load(Addr::new(third), pc), t)
            .ready
            + 1;
        let before = sys.stats().victim_hits;
        t = sys
            .access(MemoryAccess::load(buffered.base_addr(64), pc), t)
            .ready
            + 1;
        let _ = t;
        // Buffer hit happened; whether it promoted depends on the
        // classification, but the hit must be counted either way.
        assert_eq!(sys.stats().victim_hits, before + 1);
    }

    #[test]
    fn stats_components_are_disjoint() {
        let (sys, _) = run(AmbConfig::new(AmbPolicy::VicPreExc), mixed(8_000));
        let s = sys.stats();
        assert_eq!(
            s.accesses,
            s.d_hits + s.victim_hits + s.prefetch_hits + s.exclusion_hits + s.demand_misses
        );
    }
}
