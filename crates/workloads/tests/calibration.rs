//! Calibration tests: each analog must land in its intended miss-rate
//! band on the paper's 16 KB direct-mapped L1, so the suite presents
//! the conflict/capacity mixes the paper's experiments rely on.
//!
//! Run with `-- --nocapture` to see the measured table.

use cache_model::{CacheGeometry, SetAssocCache};
use workloads::{by_name, full_suite};

const EVENTS: usize = 200_000;

/// Measures the L1 miss rate of a workload on the paper's L1.
fn miss_rate(name: &str) -> f64 {
    let w = by_name(name).unwrap_or_else(|| panic!("workload {name} missing"));
    let mut cache: SetAssocCache<()> =
        SetAssocCache::new(CacheGeometry::new(16 * 1024, 1, 64).unwrap());
    let mut src = w.source(1);
    for _ in 0..EVENTS {
        let line = src.next_event().access.addr.line(64);
        if cache.probe(line).is_none() {
            cache.fill(line, ());
        }
    }
    cache.stats().miss_rate()
}

#[test]
fn suite_miss_rates_are_in_band() {
    // (name, lo, hi): deliberately loose bands; the point is the
    // *ordering* — tomcatv/turb3d memory-critical, fpppp nearly
    // hit-only, the rest in between.
    let bands = [
        ("tomcatv", 0.20, 0.55),
        ("swim", 0.05, 0.25),
        ("su2cor", 0.15, 0.60),
        ("hydro2d", 0.05, 0.30),
        ("mgrid", 0.10, 0.50),
        ("applu", 0.05, 0.35),
        ("turb3d", 0.15, 0.60),
        ("apsi", 0.02, 0.30),
        ("wave5", 0.15, 0.60),
        ("fpppp", 0.0, 0.02),
        ("go", 0.02, 0.25),
        ("m88ksim", 0.02, 0.30),
        ("gcc", 0.05, 0.40),
        ("compress", 0.20, 0.60),
        ("li", 0.10, 0.60),
        ("ijpeg", 0.02, 0.20),
        ("perl", 0.02, 0.30),
        ("vortex", 0.10, 0.50),
    ];
    assert_eq!(
        bands.len(),
        full_suite().len(),
        "band table out of sync with suite"
    );
    let mut failures = Vec::new();
    for (name, lo, hi) in bands {
        let mr = miss_rate(name);
        println!("{name:10} miss rate {:.2}%", mr * 100.0);
        if !(lo..=hi).contains(&mr) {
            failures.push(format!("{name}: {mr:.4} outside [{lo}, {hi}]"));
        }
    }
    assert!(
        failures.is_empty(),
        "calibration failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn tomcatv_is_the_memory_critical_extreme() {
    // Paper: "tomcatv has a 38% miss rate with no buffer" — the
    // hottest benchmark in the suite.
    let tom = miss_rate("tomcatv");
    for mild in ["swim", "go", "ijpeg", "fpppp"] {
        assert!(tom > miss_rate(mild), "tomcatv must out-miss {mild}");
    }
}
