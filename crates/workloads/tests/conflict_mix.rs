//! Conflict/capacity mix calibration: beyond raw miss rates, the §5
//! suite needs benchmarks across the conflict-share spectrum — some
//! dominated by conflicts (victim-cache / pseudo-assoc targets), some
//! by capacity (prefetch / exclusion targets), most mixed.

use cache_model::CacheGeometry;
use mct::{ClassifyingCache, TagBits};
use workloads::by_name;

const EVENTS: usize = 200_000;

/// Fraction of misses the MCT classifies as conflicts on the paper's
/// 16 KB DM L1.
fn conflict_share(name: &str) -> f64 {
    let w = by_name(name).unwrap_or_else(|| panic!("workload {name} missing"));
    let geom = CacheGeometry::new(16 * 1024, 1, 64).unwrap();
    let mut cache = ClassifyingCache::new(geom, TagBits::Full);
    let mut src = w.source(1);
    for _ in 0..EVENTS {
        cache.access(src.next_event().access.addr.line(64));
    }
    let (conflict, capacity) = cache.class_counts();
    conflict as f64 / (conflict + capacity).max(1) as f64
}

#[test]
fn suite_spans_the_conflict_spectrum() {
    let mut shares: Vec<(&str, f64)> = [
        "tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d", "wave5", "gcc",
        "compress", "li", "vortex",
    ]
    .iter()
    .map(|n| (*n, conflict_share(n)))
    .collect();
    shares.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (n, s) in &shares {
        println!("{n:10} conflict share {:.1}%", s * 100.0);
    }
    // The suite must contain capacity-dominated members...
    assert!(
        shares.first().unwrap().1 < 0.10,
        "no capacity-dominated workload"
    );
    // ...conflict-heavy members...
    assert!(
        shares.last().unwrap().1 > 0.45,
        "no conflict-heavy workload"
    );
    // ...and a real middle (at least a third of the suite between
    // 10% and 60% conflict share).
    let mixed = shares
        .iter()
        .filter(|(_, s)| (0.10..0.60).contains(s))
        .count();
    assert!(mixed >= 4, "only {mixed} mixed workloads");
}

#[test]
fn named_extremes_behave_as_designed() {
    // swim is the pure streaming benchmark: essentially no conflicts.
    assert!(
        conflict_share("swim") < 0.02,
        "swim {}",
        conflict_share("swim")
    );
    // tomcatv's colliding lockstep pairs make it conflict-heavy.
    assert!(
        conflict_share("tomcatv") > 0.45,
        "tomcatv {}",
        conflict_share("tomcatv")
    );
    // turb3d's cache-size butterfly strides are conflicts by design.
    assert!(
        conflict_share("turb3d") > 0.25,
        "turb3d {}",
        conflict_share("turb3d")
    );
}
