//! SPEC95-analog synthetic workloads.
//!
//! The paper measures SPEC95 with reference inputs (300 M instructions
//! after a 1 B-instruction warmup). Those traces are not available, so
//! this crate provides deterministic synthetic stand-ins, one per
//! benchmark, each built from the access-pattern primitives in
//! [`trace_gen::pattern`] and shaped to reproduce the *property the
//! paper depends on*: the benchmark's rough miss rate and its mix of
//! conflict vs. capacity misses on the paper's 16 KB direct-mapped L1.
//!
//! What each analog captures is documented on [`Workload`] values and
//! summarized in DESIGN.md. None of them claims instruction-level
//! fidelity to the original program — they are reference generators,
//! the role SPEC95 plays in the paper's methodology.
//!
//! # Examples
//!
//! ```
//! use workloads::{suite, Workload};
//! use trace_gen::TraceSource;
//!
//! let tomcatv = suite().into_iter().find(|w| w.name() == "tomcatv").unwrap();
//! let mut src = tomcatv.source(42);
//! let event = src.next_event();       // deterministic for a seed
//! assert_eq!(event.access.addr, tomcatv.source(42).next_event().access.addr);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod recipes;

use core::fmt;

use trace_gen::TraceSource;

/// Whether the analog models a floating-point or integer benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Category {
    /// SPEC95fp analog (regular, numeric, memory-intensive).
    Fp,
    /// SPEC95int analog (irregular, pointer- and branch-heavy).
    Int,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Fp => f.write_str("fp"),
            Category::Int => f.write_str("int"),
        }
    }
}

/// One SPEC95-analog workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    name: &'static str,
    description: &'static str,
    category: Category,
    kind: recipes::Kind,
}

impl Workload {
    pub(crate) const fn new(
        name: &'static str,
        description: &'static str,
        category: Category,
        kind: recipes::Kind,
    ) -> Self {
        Workload {
            name,
            description,
            category,
            kind,
        }
    }

    /// The benchmark name this analog stands in for.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// What the analog models and why.
    #[must_use]
    pub const fn description(&self) -> &'static str {
        self.description
    }

    /// FP or INT.
    #[must_use]
    pub const fn category(&self) -> Category {
        self.category
    }

    /// Builds the workload's reference generator. The same `seed`
    /// always yields the same stream; the workload's identity is mixed
    /// into the seed so different workloads never share a stream.
    #[must_use]
    pub fn source(&self, seed: u64) -> Box<dyn TraceSource> {
        recipes::build(self.kind, seed)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.category)
    }
}

/// The full analog suite, including the "uninteresting" benchmarks the
/// paper drops after the accuracy study (e.g. near-perfect-hit-rate
/// codes). Use for Figures 1–2.
#[must_use]
pub fn full_suite() -> Vec<Workload> {
    recipes::full_suite()
}

/// The subset with "an interesting mix of conflict and capacity
/// behavior" the paper carries into §5. Use for Figures 3–7.
#[must_use]
pub fn suite() -> Vec<Workload> {
    recipes::suite()
}

/// The kernel-taxonomy patterns from ROADMAP item 5 (`uniform`,
/// `working_set_128`, `working_set_512`): the line-address shapes the
/// substrate benches sweep, promoted to workloads so figure drivers
/// and smoke tests can exercise the taxonomy end-to-end. Kept out of
/// [`full_suite`] so the paper figures stay SPEC95-analog-only.
#[must_use]
pub fn taxonomy_suite() -> Vec<Workload> {
    recipes::taxonomy_suite()
}

/// Looks a workload up by name in the full suite or the taxonomy
/// suite.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    full_suite()
        .into_iter()
        .chain(taxonomy_suite())
        .find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_subset_of_full_suite() {
        let full: Vec<_> = full_suite().iter().map(|w| w.name()).collect();
        for w in suite() {
            assert!(
                full.contains(&w.name()),
                "{} missing from full suite",
                w.name()
            );
        }
        assert!(
            suite().len() >= 8,
            "need a real suite, got {}",
            suite().len()
        );
        assert!(full_suite().len() > suite().len());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = full_suite().iter().map(|w| w.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("tomcatv").is_some());
        assert!(by_name("no-such-benchmark").is_none());
    }

    #[test]
    fn taxonomy_suite_is_disjoint_and_deterministic() {
        let names: Vec<_> = taxonomy_suite().iter().map(|w| w.name()).collect();
        assert_eq!(names, ["uniform", "working_set_128", "working_set_512"]);
        let full: Vec<_> = full_suite().iter().map(|w| w.name()).collect();
        for name in &names {
            assert!(!full.contains(name), "{name} leaked into the full suite");
        }
        assert!(by_name("working_set_512").is_some());
        for w in taxonomy_suite() {
            let stream = |mut s: Box<dyn TraceSource>| -> Vec<_> {
                (0..200).map(|_| s.next_event().access.addr).collect()
            };
            assert_eq!(
                stream(w.source(7)),
                stream(w.source(7)),
                "{} not deterministic",
                w.name()
            );
        }
    }

    #[test]
    fn sources_are_deterministic_per_seed() {
        for w in full_suite() {
            let a: Vec<_> = (0..200)
                .map({
                    let mut s = w.source(7);
                    move |_| s.next_event()
                })
                .collect();
            let b: Vec<_> = (0..200)
                .map({
                    let mut s = w.source(7);
                    move |_| s.next_event()
                })
                .collect();
            assert_eq!(a, b, "{} not deterministic", w.name());
        }
    }

    #[test]
    fn different_seeds_differ_for_randomized_workloads() {
        let w = by_name("gcc").unwrap();
        let a: Vec<_> = (0..500)
            .map({
                let mut s = w.source(1);
                move |_| s.next_event().access.addr
            })
            .collect();
        let b: Vec<_> = (0..500)
            .map({
                let mut s = w.source(2);
                move |_| s.next_event().access.addr
            })
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn display_mentions_category() {
        let w = by_name("tomcatv").unwrap();
        assert_eq!(w.to_string(), "tomcatv (fp)");
    }
}
