//! The per-benchmark recipes: which access-pattern primitives, at
//! which scales, compose each SPEC95 analog.
//!
//! Scales are chosen relative to the paper's 16 KB direct-mapped,
//! 64-byte-line L1 (collision modulus 16 KB, 256 sets):
//!
//! * regions larger than 16 KB generate capacity misses;
//! * address pairs a multiple of 16 KB apart generate *near-miss*
//!   conflicts — the kind one extra way would catch, which is exactly
//!   what the MCT identifies;
//! * small hot regions generate hits; their bases are staggered within
//!   the 16 KB modulus so they do not accidentally thrash each other.
//!
//! Each recipe's weights are calibrated (tests/calibration.rs) so the
//! analog lands in the rough miss-rate band of its SPEC95 namesake on
//! the paper's L1, with `tomcatv` the memory-critical extreme (~38 %)
//! and `fpppp` nearly hit-only.

use sim_core::Addr;
use trace_gen::pattern::{
    Burst, Interleave, LockstepArrays, PointerChase, SequentialSweep, SetConflict, StridedStream,
    ZipfAccess,
};
use trace_gen::TraceSource;

use crate::{Category, Workload};

const KB: u64 = 1024;
/// The collision modulus of the paper's L1: addresses this far apart
/// share a cache set.
const CACHE: u64 = 16 * KB;
/// Address-space segment size; each pattern of a workload lives in its
/// own segment. Segments are a multiple of the cache size apart, so a
/// per-component stagger (below) controls which sets small regions
/// occupy.
const SEG: u64 = 1 << 28;

/// Segment `i`, staggered two ways: by `i` quarter-caches so small hot
/// regions of different components land in different sets, and by
/// `73·i` cache sizes so segments differ in the *low* tag bits too —
/// perfectly 2^28-aligned bases would let partial-tag MCTs alias
/// same-offset lines across segments, an artifact real address spaces
/// do not share.
fn seg(i: u64) -> Addr {
    Addr::new((i + 1) * SEG + i * 73 * CACHE + (i % 4) * (CACHE / 4))
}

fn pc(i: u64) -> Addr {
    Addr::new(0x0040_0000 + i * 0x100)
}

/// Identifies a workload recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Kind {
    Tomcatv,
    Swim,
    Su2cor,
    Hydro2d,
    Mgrid,
    Applu,
    Turb3d,
    Apsi,
    Wave5,
    Fpppp,
    Go,
    M88ksim,
    Gcc,
    Compress,
    Li,
    Ijpeg,
    Perl,
    Vortex,
    // Kernel-taxonomy patterns (ROADMAP item 5): the line-address
    // shapes the substrate benches sweep, promoted to workloads so the
    // figure drivers exercise them end-to-end.
    Uniform,
    WorkingSet128,
    WorkingSet512,
}

fn mix_seed(kind: Kind, seed: u64) -> u64 {
    // Give every workload an independent stream for the same user
    // seed.
    (kind as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed
}

type Child = (Box<dyn TraceSource>, f64);

fn interleave(children: Vec<Child>, run: u32, seed: u64) -> Box<dyn TraceSource> {
    Box::new(Interleave::new(children, run, seed))
}

fn boxed<S: TraceSource + 'static>(s: S) -> Box<dyn TraceSource> {
    Box::new(s)
}

/// Builds the generator for a recipe.
pub(crate) fn build(kind: Kind, seed: u64) -> Box<dyn TraceSource> {
    let s = mix_seed(kind, seed);
    match kind {
        // ---- SPEC95fp analogs -------------------------------------
        // tomcatv: mesh generation; large arrays traversed in lockstep
        // with colliding bases — the paper's most memory-critical code
        // (38% miss rate with no buffer). The colliding pair ping-pongs
        // one set per index (pure near-miss conflicts); the sweeps add
        // streaming capacity misses.
        Kind::Tomcatv => interleave(
            vec![
                (
                    boxed(
                        LockstepArrays::new(vec![seg(0), seg(0) + 16 * CACHE], 256 * KB, 8)
                            .with_work(3)
                            .with_pc(pc(1)),
                    ),
                    2.5,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(1), 256 * KB, 8)
                            .with_work(4)
                            .with_pc(pc(2)),
                    ),
                    3.0,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(2), 256 * KB, 8)
                            .with_work(3)
                            .with_store_period(5)
                            .with_pc(pc(3)),
                    ),
                    3.0,
                ),
            ],
            96,
            s,
        ),
        // swim: shallow-water stencil; pure streaming over three big
        // grids — capacity misses, next-line prefetching's best case.
        Kind::Swim => interleave(
            vec![
                (
                    boxed(
                        SequentialSweep::new(seg(0), 384 * KB, 8)
                            .with_work(4)
                            .with_pc(pc(1)),
                    ),
                    3.0,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(1), 384 * KB, 8)
                            .with_work(4)
                            .with_pc(pc(2)),
                    ),
                    3.0,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(2), 384 * KB, 8)
                            .with_work(3)
                            .with_store_period(4)
                            .with_pc(pc(3)),
                    ),
                    2.0,
                ),
            ],
            192,
            s,
        ),
        // su2cor: quantum physics; mostly unit-stride with an
        // occasional long-stride pass and one contended pair.
        Kind::Su2cor => interleave(
            vec![
                (
                    boxed(
                        StridedStream::new(seg(0), 512 * KB, 136)
                            .with_work(4)
                            .with_pc(pc(1)),
                    ),
                    0.3,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(1), 128 * KB, 8)
                            .with_work(4)
                            .with_pc(pc(2)),
                    ),
                    7.5,
                ),
                (
                    boxed(
                        SetConflict::new(seg(2), 2, CACHE, 6)
                            .with_work(4)
                            .with_pc(pc(3)),
                    ),
                    1.0,
                ),
            ],
            64,
            s,
        ),
        // hydro2d: 2-D hydrodynamics; row sweeps plus occasional
        // column sweeps (row pitch 8 KB, so columns ping-pong between
        // two sets).
        Kind::Hydro2d => interleave(
            vec![
                (
                    boxed(
                        SequentialSweep::new(seg(0), 512 * KB, 8)
                            .with_work(4)
                            .with_pc(pc(1)),
                    ),
                    5.0,
                ),
                (
                    boxed(
                        StridedStream::new(seg(0), 512 * KB, 8 * KB)
                            .with_work(3)
                            .with_pc(pc(2)),
                    ),
                    0.4,
                ),
                (
                    boxed(
                        ZipfAccess::new(seg(3), 96, 64, 1.1, s ^ 24)
                            .with_work(5)
                            .with_pc(pc(4)),
                    ),
                    1.5,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(1), 128 * KB, 8)
                            .with_work(3)
                            .with_store_period(3)
                            .with_pc(pc(3)),
                    ),
                    2.0,
                ),
            ],
            128,
            s,
        ),
        // mgrid: multigrid solver; the same data revisited at
        // power-of-two strides (grid levels), with a hot coefficient
        // table.
        Kind::Mgrid => interleave(
            vec![
                (
                    boxed(
                        SequentialSweep::new(seg(0), 256 * KB, 8)
                            .with_work(4)
                            .with_pc(pc(1)),
                    ),
                    3.0,
                ),
                (
                    boxed(
                        StridedStream::new(seg(0), 256 * KB, 16)
                            .with_work(4)
                            .with_pc(pc(2)),
                    ),
                    1.5,
                ),
                (
                    boxed(
                        StridedStream::new(seg(0), 256 * KB, 512)
                            .with_work(4)
                            .with_pc(pc(3)),
                    ),
                    0.3,
                ),
                (
                    boxed(
                        ZipfAccess::new(seg(1), 64, 64, 0.9, s ^ 20)
                            .with_work(5)
                            .with_pc(pc(4)),
                    ),
                    2.5,
                ),
            ],
            96,
            s,
        ),
        // applu: blocked PDE solver; block-reuse bursts, a hot
        // coefficient region, and one contended array pair.
        Kind::Applu => interleave(
            vec![
                (
                    boxed(Burst::new(
                        SequentialSweep::new(seg(0), 512 * KB, 64)
                            .with_work(4)
                            .with_pc(pc(1)),
                        8,
                        64,
                        s ^ 1,
                    )),
                    6.0,
                ),
                (
                    boxed(
                        LockstepArrays::new(vec![seg(1), seg(1) + 8 * CACHE], 128 * KB, 8)
                            .with_work(3)
                            .with_pc(pc(2)),
                    ),
                    0.4,
                ),
                (
                    boxed(
                        ZipfAccess::new(seg(2), 96, 64, 1.1, s ^ 21)
                            .with_work(5)
                            .with_pc(pc(3)),
                    ),
                    3.0,
                ),
            ],
            64,
            s,
        ),
        // turb3d: FFT-based turbulence; butterfly strides equal to the
        // cache size — textbook near-miss conflicts — over a streaming
        // background.
        Kind::Turb3d => interleave(
            vec![
                (
                    boxed(
                        StridedStream::new(seg(0), 2 * CACHE, CACHE)
                            .with_work(4)
                            .with_pc(pc(1)),
                    ),
                    0.8,
                ),
                (
                    boxed(
                        StridedStream::new(seg(1), 4 * CACHE, CACHE)
                            .with_work(4)
                            .with_pc(pc(2)),
                    ),
                    0.25,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(2), 256 * KB, 8)
                            .with_work(4)
                            .with_pc(pc(3)),
                    ),
                    5.0,
                ),
                (
                    boxed(
                        ZipfAccess::new(seg(3), 96, 64, 1.1, s ^ 22)
                            .with_work(5)
                            .with_pc(pc(4)),
                    ),
                    3.0,
                ),
            ],
            48,
            s,
        ),
        // apsi: weather code; several small arrays that mostly fit,
        // plus one medium sweep — modest miss rate.
        Kind::Apsi => interleave(
            vec![
                (
                    boxed(
                        LockstepArrays::new(
                            vec![seg(0), seg(0) + 33 * KB, seg(0) + 66 * KB, seg(0) + 99 * KB],
                            32 * KB,
                            8,
                        )
                        .with_work(4)
                        .with_pc(pc(1)),
                    ),
                    3.0,
                ),
                (
                    boxed(
                        ZipfAccess::new(seg(1), 128, 64, 1.0, s ^ 2)
                            .with_work(5)
                            .with_pc(pc(2)),
                    ),
                    2.0,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(2), 96 * KB, 8)
                            .with_work(4)
                            .with_pc(pc(3)),
                    ),
                    1.0,
                ),
            ],
            64,
            s,
        ),
        // wave5: particle-in-cell; field sweeps plus particle gathers
        // through a permutation (no spatial locality).
        Kind::Wave5 => interleave(
            vec![
                (
                    boxed(
                        PointerChase::new(seg(0), 512 * KB, 64, s ^ 3)
                            .with_work(2)
                            .with_pc(pc(1)),
                    ),
                    1.0,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(1), 256 * KB, 8)
                            .with_work(4)
                            .with_pc(pc(2)),
                    ),
                    4.0,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(2), 64 * KB, 8)
                            .with_work(3)
                            .with_store_period(4)
                            .with_pc(pc(3)),
                    ),
                    1.0,
                ),
                (
                    boxed(
                        ZipfAccess::new(seg(3), 128, 64, 1.1, s ^ 23)
                            .with_work(4)
                            .with_pc(pc(4)),
                    ),
                    2.5,
                ),
            ],
            64,
            s,
        ),
        // fpppp: quantum chemistry; tiny working set, almost no
        // misses — one of the "uninteresting" codes kept for the
        // accuracy study.
        Kind::Fpppp => interleave(
            vec![
                // 64 lines at sets 0–63; the sweep sits at sets 64–127
                // (seg(1) is staggered a quarter cache), so the two
                // never conflict and the working set fully fits.
                (
                    boxed(
                        ZipfAccess::new(seg(0), 64, 64, 1.1, s ^ 4)
                            .with_work(7)
                            .with_pc(pc(1)),
                    ),
                    4.0,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(1), 4 * KB, 8)
                            .with_work(6)
                            .with_pc(pc(2)),
                    ),
                    2.0,
                ),
            ],
            64,
            s,
        ),
        // ---- SPEC95int analogs ------------------------------------
        // go: game tree search; hot board structures plus pointer
        // walks over a medium heap.
        Kind::Go => interleave(
            vec![
                (
                    boxed(
                        ZipfAccess::new(seg(0), 192, 64, 1.2, s ^ 5)
                            .with_work(6)
                            .with_pc(pc(1)),
                    ),
                    6.0,
                ),
                (
                    boxed(
                        PointerChase::new(seg(1), 48 * KB, 64, s ^ 6)
                            .with_work(5)
                            .with_pc(pc(2)),
                    ),
                    0.5,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(2), 24 * KB, 8)
                            .with_work(5)
                            .with_pc(pc(3)),
                    ),
                    0.5,
                ),
            ],
            32,
            s,
        ),
        // m88ksim: CPU simulator; hot tables with one recurring
        // structure collision — low miss rate, conflict-flavored.
        Kind::M88ksim => interleave(
            vec![
                (
                    boxed(
                        ZipfAccess::new(seg(0), 128, 64, 1.1, s ^ 7)
                            .with_work(6)
                            .with_pc(pc(1)),
                    ),
                    6.0,
                ),
                (
                    boxed(
                        SetConflict::new(seg(1), 2, CACHE, 8)
                            .with_work(5)
                            .with_pc(pc(2)),
                    ),
                    1.5,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(2), 16 * KB, 8)
                            .with_work(5)
                            .with_pc(pc(3)),
                    ),
                    0.5,
                ),
            ],
            32,
            s,
        ),
        // gcc: compiler; large irregular footprint, low locality,
        // "messy" mix of everything.
        Kind::Gcc => interleave(
            vec![
                (
                    boxed(
                        ZipfAccess::new(seg(0), 512, 64, 1.2, s ^ 8)
                            .with_work(5)
                            .with_pc(pc(1)),
                    ),
                    6.0,
                ),
                (
                    boxed(
                        PointerChase::new(seg(1), 96 * KB, 64, s ^ 9)
                            .with_work(4)
                            .with_pc(pc(2)),
                    ),
                    0.35,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(2), 64 * KB, 8)
                            .with_work(4)
                            .with_store_period(5)
                            .with_pc(pc(3)),
                    ),
                    2.0,
                ),
            ],
            24,
            s,
        ),
        // compress: dictionary compression; near-uniform hashing into
        // a large table plus a streaming input — capacity-dominated.
        Kind::Compress => interleave(
            vec![
                (
                    boxed(
                        ZipfAccess::new(seg(0), 4096, 64, 0.25, s ^ 10)
                            .with_work(4)
                            .with_store_period(3)
                            .with_pc(pc(1)),
                    ),
                    1.0,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(1), 1024 * KB, 8)
                            .with_work(4)
                            .with_pc(pc(2)),
                    ),
                    6.0,
                ),
            ],
            32,
            s,
        ),
        // li: lisp interpreter; cons-cell chasing over a heap around
        // the cache size, with hot roots and occasional GC sweeps.
        Kind::Li => interleave(
            vec![
                (
                    boxed(
                        PointerChase::new(seg(0), 12 * KB, 64, s ^ 11)
                            .with_work(3)
                            .with_pc(pc(1)),
                    ),
                    4.0,
                ),
                (
                    boxed(
                        PointerChase::new(seg(1), 40 * KB, 64, s ^ 19)
                            .with_work(3)
                            .with_pc(pc(2)),
                    ),
                    0.3,
                ),
                (
                    boxed(
                        ZipfAccess::new(seg(2), 128, 64, 1.2, s ^ 12)
                            .with_work(5)
                            .with_pc(pc(3)),
                    ),
                    3.0,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(1), 40 * KB, 64)
                            .with_work(3)
                            .with_pc(pc(4)),
                    ),
                    0.25,
                ),
            ],
            32,
            s,
        ),
        // ijpeg: image compression; 8×8 block bursts over a large
        // image plus small quantization tables.
        Kind::Ijpeg => interleave(
            vec![
                (
                    boxed(Burst::new(
                        SequentialSweep::new(seg(0), 512 * KB, 64)
                            .with_work(5)
                            .with_pc(pc(1)),
                        8,
                        64,
                        s ^ 13,
                    )),
                    4.0,
                ),
                (
                    boxed(
                        ZipfAccess::new(seg(1), 96, 64, 1.0, s ^ 14)
                            .with_work(6)
                            .with_pc(pc(2)),
                    ),
                    2.0,
                ),
            ],
            64,
            s,
        ),
        // perl: interpreter; hashes and strings, moderate footprint.
        Kind::Perl => interleave(
            vec![
                (
                    boxed(
                        ZipfAccess::new(seg(0), 384, 64, 1.2, s ^ 15)
                            .with_work(5)
                            .with_pc(pc(1)),
                    ),
                    5.0,
                ),
                (
                    boxed(
                        PointerChase::new(seg(1), 32 * KB, 64, s ^ 16)
                            .with_work(4)
                            .with_pc(pc(2)),
                    ),
                    0.5,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(2), 32 * KB, 8)
                            .with_work(5)
                            .with_pc(pc(3)),
                    ),
                    1.0,
                ),
            ],
            24,
            s,
        ),
        // vortex: object database; large skewed object heap, index
        // walks, write-heavy commit streams.
        Kind::Vortex => interleave(
            vec![
                (
                    boxed(
                        ZipfAccess::new(seg(0), 768, 64, 1.2, s ^ 17)
                            .with_work(5)
                            .with_pc(pc(1)),
                    ),
                    6.0,
                ),
                (
                    boxed(
                        PointerChase::new(seg(1), 128 * KB, 64, s ^ 18)
                            .with_work(4)
                            .with_pc(pc(2)),
                    ),
                    0.5,
                ),
                (
                    boxed(
                        SequentialSweep::new(seg(2), 64 * KB, 8)
                            .with_work(4)
                            .with_store_period(4)
                            .with_pc(pc(3)),
                    ),
                    1.5,
                ),
            ],
            32,
            s,
        ),
        // ---- kernel-taxonomy patterns -----------------------------
        // uniform: seeded uniform-random lines over a footprint 16x
        // the paper's L1 — no locality at all, the kernel benches'
        // worst case for any recency-based structure.
        Kind::Uniform => boxed(
            ZipfAccess::new(seg(0), 4096, 64, 0.0, s)
                .with_work(4)
                .with_pc(pc(1)),
        ),
        // working_set_128: cyclic sweep over 128 lines (8 KB) — fits
        // the paper's L1 with room to spare, so steady state is
        // hit-dominated.
        Kind::WorkingSet128 => boxed(
            SequentialSweep::new(seg(0), 128 * 64, 8)
                .with_work(4)
                .with_pc(pc(1)),
        ),
        // working_set_512: cyclic sweep over 512 lines (32 KB) — twice
        // the paper's L1, so steady state is pure capacity thrash.
        Kind::WorkingSet512 => boxed(
            SequentialSweep::new(seg(0), 512 * 64, 8)
                .with_work(4)
                .with_pc(pc(1)),
        ),
    }
}

/// All analogs, for the accuracy study (Figures 1–2).
pub(crate) fn full_suite() -> Vec<Workload> {
    vec![
        Workload::new(
            "tomcatv",
            "mesh generation: colliding lockstep arrays + streaming",
            Category::Fp,
            Kind::Tomcatv,
        ),
        Workload::new(
            "swim",
            "shallow water: pure grid streaming",
            Category::Fp,
            Kind::Swim,
        ),
        Workload::new(
            "su2cor",
            "quantum physics: long strides + one contended pair",
            Category::Fp,
            Kind::Su2cor,
        ),
        Workload::new(
            "hydro2d",
            "hydrodynamics: row sweeps with column ping-pong",
            Category::Fp,
            Kind::Hydro2d,
        ),
        Workload::new(
            "mgrid",
            "multigrid: power-of-two stride revisits",
            Category::Fp,
            Kind::Mgrid,
        ),
        Workload::new(
            "applu",
            "blocked PDE solver: block-reuse bursts + contended pair",
            Category::Fp,
            Kind::Applu,
        ),
        Workload::new(
            "turb3d",
            "FFT turbulence: cache-size butterfly strides",
            Category::Fp,
            Kind::Turb3d,
        ),
        Workload::new(
            "apsi",
            "weather: several small arrays, modest misses",
            Category::Fp,
            Kind::Apsi,
        ),
        Workload::new(
            "wave5",
            "particle-in-cell: gathers + field sweeps",
            Category::Fp,
            Kind::Wave5,
        ),
        Workload::new(
            "fpppp",
            "quantum chemistry: tiny working set, few misses",
            Category::Fp,
            Kind::Fpppp,
        ),
        Workload::new(
            "go",
            "game search: hot structures + heap walks",
            Category::Int,
            Kind::Go,
        ),
        Workload::new(
            "m88ksim",
            "CPU simulator: hot tables + one structure collision",
            Category::Int,
            Kind::M88ksim,
        ),
        Workload::new(
            "gcc",
            "compiler: large irregular footprint",
            Category::Int,
            Kind::Gcc,
        ),
        Workload::new(
            "compress",
            "compression: hash table + input stream",
            Category::Int,
            Kind::Compress,
        ),
        Workload::new(
            "li",
            "lisp: cons-cell chasing over a small heap",
            Category::Int,
            Kind::Li,
        ),
        Workload::new(
            "ijpeg",
            "image compression: 8x8 block bursts",
            Category::Int,
            Kind::Ijpeg,
        ),
        Workload::new(
            "perl",
            "interpreter: hashes and strings",
            Category::Int,
            Kind::Perl,
        ),
        Workload::new(
            "vortex",
            "object database: skewed heap + index walks",
            Category::Int,
            Kind::Vortex,
        ),
    ]
}

/// The kernel-taxonomy patterns (ROADMAP item 5), kept out of
/// [`full_suite`] so the paper figures stay SPEC95-analog-only.
pub(crate) fn taxonomy_suite() -> Vec<Workload> {
    vec![
        Workload::new(
            "uniform",
            "taxonomy: uniform-random lines over 16x the L1",
            Category::Int,
            Kind::Uniform,
        ),
        Workload::new(
            "working_set_128",
            "taxonomy: cyclic 8 KB working set, hit-dominated",
            Category::Fp,
            Kind::WorkingSet128,
        ),
        Workload::new(
            "working_set_512",
            "taxonomy: cyclic 32 KB working set, capacity thrash",
            Category::Fp,
            Kind::WorkingSet512,
        ),
    ]
}

/// The §5 subset: benchmarks with an interesting conflict/capacity
/// mix.
pub(crate) fn suite() -> Vec<Workload> {
    let keep = [
        "tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d", "wave5", "gcc",
        "compress", "li", "vortex",
    ];
    full_suite()
        .into_iter()
        .filter(|w| keep.contains(&w.name()))
        .collect()
}
