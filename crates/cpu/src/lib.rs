//! A trace-driven out-of-order processor timing model.
//!
//! The paper evaluates its cache architectures on SMTSIM, an
//! emulation-driven out-of-order Alpha simulator (7-stage pipeline,
//! 8-wide fetch/issue, two 32-entry instruction queues, four
//! load/store units, non-blocking caches with 16 outstanding misses).
//! This crate substitutes a trace-driven timing model that captures
//! what drives the paper's *relative* results: memory-latency overlap
//! bounded by the instruction window and MSHRs, load/store-unit
//! and cache-bank contention, and the instruction-throughput cost of
//! pipeline work between accesses.
//!
//! The three pieces:
//!
//! * [`MemorySystem`] — the interface every cache-assist architecture
//!   implements (victim cache, prefetcher, exclusion, AMB, …);
//! * [`OooModel`] — the processor: runs a trace against any
//!   `MemorySystem` and reports cycles/IPC;
//! * [`Plumbing`] / [`BaselineSystem`] — the shared L1 miss path
//!   (banked ports, MSHR file, L2 + memory) and the no-assist
//!   baseline built from it.
//!
//! # Examples
//!
//! ```
//! use cpu_model::{BaselineSystem, CpuConfig, MemTimings, OooModel};
//! use trace_gen::pattern::SequentialSweep;
//! use trace_gen::TraceSource;
//! use sim_core::Addr;
//!
//! let mut mem = BaselineSystem::paper_default()?;
//! let cpu = OooModel::new(CpuConfig::paper_default());
//! let trace = SequentialSweep::new(Addr::new(0), 256 * 1024, 8).take_events(10_000);
//! let report = cpu.run(&mut mem, trace);
//! assert!(report.ipc() > 0.1 && report.ipc() < 8.0);
//! # Ok::<(), cache_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod model;
mod plumbing;
mod smt;
mod system;

pub use baseline::BaselineSystem;
pub use model::{CpuConfig, CpuReport, OooModel};
pub use plumbing::{MemTimings, Plumbing};
pub use smt::{SmtModel, SmtReport};
pub use system::{MemResponse, MemorySystem};
