//! Simultaneous multithreading: several threads sharing one core and
//! one memory system.
//!
//! The paper's simulator (SMTSIM) is a simultaneous multithreading
//! simulator, and §5.6 points out that multithreaded processors "are
//! particularly prone to high levels of conflict, even with
//! associative caches", because the conflicts are produced by
//! competition between threads that software cannot see.
//! [`SmtModel`] extends the single-thread [`OooModel`](crate::OooModel)
//! approximation: threads share the fetch/dispatch bandwidth and the
//! load/store units, each thread has its own instruction window, and a
//! thread stalled on a load miss donates its dispatch slots to the
//! others — the latency hiding SMT exists for.

use std::collections::VecDeque;

use sim_core::Cycle;
use trace_gen::{AccessKind, TraceEvent};

use crate::{CpuConfig, CpuReport, MemResponse, MemorySystem};

/// The result of a multithreaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmtReport {
    /// Per-thread instruction counts and the cycle each retired its
    /// last instruction.
    pub per_thread: Vec<CpuReport>,
    /// Total cycles until every thread finished.
    pub cycles: u64,
}

impl SmtReport {
    /// Combined throughput: all threads' instructions over total
    /// cycles.
    #[must_use]
    pub fn throughput_ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let instructions: u64 = self.per_thread.iter().map(|r| r.instructions).sum();
        instructions as f64 / self.cycles as f64
    }
}

struct Thread {
    events: std::vec::IntoIter<TraceEvent>,
    /// (instruction index, completion cycle) of in-flight loads.
    inflight: VecDeque<(u64, u64)>,
    instructions: u64,
    last_completion: u64,
    /// Earliest cycle this thread may dispatch again.
    ready: u64,
    finished_at: u64,
    done: bool,
}

/// A multithreaded variant of the out-of-order timing model.
///
/// # Examples
///
/// ```
/// use cpu_model::{BaselineSystem, CpuConfig, SmtModel};
/// use trace_gen::pattern::SequentialSweep;
/// use trace_gen::TraceSource;
/// use sim_core::Addr;
///
/// let cpu = SmtModel::new(CpuConfig::paper_default());
/// let t0: Vec<_> = SequentialSweep::new(Addr::new(0), 1 << 20, 8).take_events(5_000).collect();
/// let t1: Vec<_> = SequentialSweep::new(Addr::new(1 << 30), 1 << 20, 8).take_events(5_000).collect();
/// let mut mem = BaselineSystem::paper_default()?;
/// let report = cpu.run(&mut mem, vec![t0, t1]);
/// assert_eq!(report.per_thread.len(), 2);
/// assert!(report.throughput_ipc() > 0.0);
/// # Ok::<(), cache_model::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SmtModel {
    cfg: CpuConfig,
}

impl SmtModel {
    /// Creates a model with the given core parameters (shared by all
    /// threads; the window is per thread, as in SMTSIM's per-thread
    /// queues).
    #[must_use]
    pub const fn new(cfg: CpuConfig) -> Self {
        SmtModel { cfg }
    }

    /// Runs the threads to completion against one shared memory
    /// system.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn run<M: MemorySystem>(&self, mem: &mut M, traces: Vec<Vec<TraceEvent>>) -> SmtReport {
        assert!(!traces.is_empty(), "need at least one thread");
        let width = u64::from(self.cfg.fetch_width.max(1));
        let mut threads: Vec<Thread> = traces
            .into_iter()
            .map(|t| Thread {
                events: t.into_iter(),
                inflight: VecDeque::new(),
                instructions: 0,
                last_completion: 0,
                ready: self.cfg.pipeline_depth,
                finished_at: self.cfg.pipeline_depth,
                done: false,
            })
            .collect();
        let mut lsu = cache_model::BankedPorts::new(self.cfg.lsu_count);
        // Shared front end: dispatch slot k becomes available at
        // pipeline_depth + k/width, regardless of which thread uses
        // it.
        let mut shared_slots: u64 = 0;

        loop {
            // Pick the runnable thread that can dispatch earliest
            // (ICOUNT-like: ties go to the least-advanced thread).
            let slot_time = self.cfg.pipeline_depth + shared_slots / width;
            let next = threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.done)
                .min_by_key(|(_, t)| (t.ready.max(slot_time), t.instructions))
                .map(|(i, _)| i);
            let Some(idx) = next else { break };

            let slot_time = self.cfg.pipeline_depth + shared_slots / width;
            let thread = &mut threads[idx];
            let now = thread.ready.max(slot_time);

            let Some(event) = thread.events.next() else {
                thread.done = true;
                thread.finished_at = thread
                    .inflight
                    .back()
                    .map_or(now, |&(_, ready)| ready.max(now));
                continue;
            };

            let cost = u64::from(event.work) + 1;
            thread.instructions += cost;
            shared_slots += cost;

            // Per-thread window limit.
            let mut stall = now;
            while let Some(&(i, ready)) = thread.inflight.front() {
                if thread.instructions.saturating_sub(i) < self.cfg.window {
                    break;
                }
                stall = stall.max(ready);
                thread.inflight.pop_front();
            }

            // Shared load/store units.
            let grant = lsu.acquire_any(Cycle::new(stall), 1);
            let MemResponse { ready } = mem.access(event.access, grant);
            debug_assert!(ready >= grant, "memory answered in the past");
            if event.access.kind == AccessKind::Load {
                let completion = ready.raw().max(thread.last_completion);
                thread.last_completion = completion;
                thread.inflight.push_back((thread.instructions, completion));
            }
            thread.ready = stall;
        }

        let per_thread: Vec<CpuReport> = threads
            .iter()
            .map(|t| CpuReport {
                cycles: t.finished_at,
                instructions: t.instructions,
            })
            .collect();
        let cycles = per_thread.iter().map(|r| r.cycles).max().unwrap_or(0);
        SmtReport { per_thread, cycles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaselineSystem, OooModel};
    use sim_core::Addr;
    use trace_gen::pattern::{SequentialSweep, SetConflict, ZipfAccess};
    use trace_gen::TraceSource;

    fn compute_bound(n: usize, base: u64) -> Vec<TraceEvent> {
        // Tiny working set, lots of work: barely touches memory.
        // Callers pick bases that do not collide mod 16 KB, so two
        // compute threads can coexist in the shared DM L1.
        ZipfAccess::new(Addr::new(base), 32, 64, 1.0, 3)
            .with_work(7)
            .take_events(n)
            .collect()
    }

    fn memory_bound(n: usize, base: u64) -> Vec<TraceEvent> {
        SequentialSweep::new(Addr::new(base), 1 << 21, 64)
            .with_work(1)
            .take_events(n)
            .collect()
    }

    #[test]
    fn single_thread_matches_the_ooo_model_closely() {
        let trace = memory_bound(5_000, 0);
        let cfg = CpuConfig::paper_default();
        let mut mem1 = BaselineSystem::paper_default().unwrap();
        let solo = OooModel::new(cfg).run(&mut mem1, trace.clone());
        let mut mem2 = BaselineSystem::paper_default().unwrap();
        let smt = SmtModel::new(cfg).run(&mut mem2, vec![trace]);
        let ratio = smt.cycles as f64 / solo.cycles as f64;
        assert!(
            (0.9..1.1).contains(&ratio),
            "smt {} vs ooo {}",
            smt.cycles,
            solo.cycles
        );
    }

    #[test]
    fn two_compute_threads_share_fetch_bandwidth() {
        let cfg = CpuConfig::paper_default();
        let mut mem = BaselineSystem::paper_default().unwrap();
        let smt = SmtModel::new(cfg).run(
            &mut mem,
            // Second thread staggered half a cache so the working
            // sets do not collide in the shared L1.
            vec![
                compute_bound(4_000, 0),
                compute_bound(4_000, (1 << 30) | 0x2000),
            ],
        );
        // Two 8-instruction-per-event threads on an 8-wide core:
        // combined IPC near the machine width, each thread near half.
        assert!(smt.throughput_ipc() > 6.0, "ipc {}", smt.throughput_ipc());
    }

    #[test]
    fn smt_hides_memory_latency_with_compute() {
        // A memory-bound thread co-scheduled with a compute-bound one:
        // total work finishes far sooner than running them back to
        // back (the compute thread uses the stall slots).
        let cfg = CpuConfig::paper_default();
        // Sized so each thread runs for a comparable number of cycles
        // solo (the memory thread stalls ~6.5 cycles/event).
        let mem_trace = memory_bound(4_000, 0);
        let cpu_trace = compute_bound(24_000, (1 << 30) | 0x2000);

        let solo = |trace: Vec<TraceEvent>| {
            let mut mem = BaselineSystem::paper_default().unwrap();
            OooModel::new(cfg).run(&mut mem, trace).cycles
        };
        let serial = solo(mem_trace.clone()) + solo(cpu_trace.clone());

        let mut mem = BaselineSystem::paper_default().unwrap();
        let smt = SmtModel::new(cfg).run(&mut mem, vec![mem_trace, cpu_trace]);
        assert!(
            (smt.cycles as f64) < 0.7 * serial as f64,
            "smt {} vs serial {serial}",
            smt.cycles
        );
    }

    #[test]
    fn cross_thread_cache_conflicts_appear() {
        // Two threads whose hot lines collide in the shared L1: the
        // co-run's miss rate exceeds either solo run's (the §5.6
        // phenomenon that software cannot fix).
        let cfg = CpuConfig::paper_default();
        let a: Vec<TraceEvent> = SetConflict::new(Addr::new(0), 2, 16 * 1024, 8)
            .with_work(4)
            .take_events(4_000)
            .collect();
        let b: Vec<TraceEvent> = SetConflict::new(Addr::new(5 << 30), 2, 16 * 1024, 8)
            .with_work(4)
            .take_events(4_000)
            .collect();
        // (5 << 30) is a multiple of 16 KB, so the two threads' hot
        // sets collide.
        let solo_miss = |trace: Vec<TraceEvent>| {
            let mut mem = BaselineSystem::paper_default().unwrap();
            OooModel::new(cfg).run(&mut mem, trace);
            mem.l1_stats().miss_rate()
        };
        let miss_a = solo_miss(a.clone());
        let miss_b = solo_miss(b.clone());

        let mut shared = BaselineSystem::paper_default().unwrap();
        SmtModel::new(cfg).run(&mut shared, vec![a, b]);
        let miss_shared = shared.l1_stats().miss_rate();
        assert!(
            miss_shared > miss_a.max(miss_b) + 0.1,
            "shared {miss_shared} vs solos {miss_a}/{miss_b}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_thread_list_rejected() {
        let mut mem = BaselineSystem::paper_default().unwrap();
        let _ = SmtModel::new(CpuConfig::paper_default()).run(&mut mem, vec![]);
    }
}
