//! The shared L1 miss path: banked cache ports, the MSHR file, and
//! the L2 + memory backend.
//!
//! Every architecture crate embeds a [`Plumbing`] so the paper's
//! system parameters (8-way banked L1, 16 MSHRs, 20-cycle L2,
//! 100-cycle memory) are configured once and behave identically under
//! every policy.

use cache_model::{BankedPorts, ConfigError, L2Memory, L2MemoryConfig, MshrFile};
use sim_core::stats::Histogram;
use sim_core::{Cycle, LineAddr};

/// Timing parameters of the L1 and its miss path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemTimings {
    /// L1 hit latency in cycles (paper: pipelined, 1).
    pub l1_latency: u64,
    /// Extra latency of a hit in a cache-assist buffer over an L1 hit
    /// (paper: 1 additional cycle).
    pub buffer_extra: u64,
    /// Number of L1 banks (paper: 8).
    pub l1_banks: usize,
    /// Cycles a bank is busy per access.
    pub bank_busy: u64,
    /// Number of MSHRs / misses in flight (paper: 16).
    pub mshr_count: usize,
}

impl MemTimings {
    /// The paper's configuration.
    #[must_use]
    pub const fn paper_default() -> Self {
        MemTimings {
            l1_latency: 1,
            buffer_extra: 1,
            l1_banks: 8,
            bank_busy: 1,
            mshr_count: 16,
        }
    }
}

impl Default for MemTimings {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The miss-path machinery shared by all architectures: L1 bank
/// arbitration, MSHR allocation with coalescing and stall-on-full,
/// and the L2 + memory backend.
#[derive(Debug, Clone)]
pub struct Plumbing {
    timings: MemTimings,
    banks: BankedPorts,
    mshrs: MshrFile,
    l2: L2Memory,
    demand_latency: Histogram,
}

impl Plumbing {
    /// Creates the miss path with the given timings and backend
    /// configuration.
    #[must_use]
    pub fn new(timings: MemTimings, l2_cfg: L2MemoryConfig) -> Self {
        Plumbing {
            timings,
            banks: BankedPorts::new(timings.l1_banks),
            mshrs: MshrFile::new(timings.mshr_count),
            l2: L2Memory::new(l2_cfg),
            demand_latency: Histogram::new(),
        }
    }

    /// The paper's default system below L1.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors (never for the built-in
    /// constants).
    pub fn paper_default() -> Result<Self, ConfigError> {
        Ok(Self::new(
            MemTimings::paper_default(),
            L2MemoryConfig::paper_default()?,
        ))
    }

    /// The timing parameters.
    #[must_use]
    pub fn timings(&self) -> &MemTimings {
        &self.timings
    }

    /// The L2 + memory backend (for stats inspection).
    #[must_use]
    pub fn l2(&self) -> &L2Memory {
        &self.l2
    }

    /// Distribution of demand-miss latencies (request to data at L1),
    /// including MSHR-full stalls and bus contention.
    #[must_use]
    pub fn demand_latency(&self) -> &Histogram {
        &self.demand_latency
    }

    /// Acquires the L1 bank a line maps to; returns the grant time.
    pub fn l1_grant(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        self.banks
            .acquire_for_line(line, now, self.timings.bank_busy)
    }

    /// Reserves the line's L1 bank for `busy` extra cycles starting at
    /// `now` (swaps occupy the bank longer than a plain access).
    pub fn l1_occupy(&mut self, line: LineAddr, now: Cycle, busy: u64) {
        let _ = self.banks.acquire_for_line(line, now, busy);
    }

    /// Fetches a line for a **demand** miss: coalesces with an
    /// in-flight miss, stalls until an MSHR frees if the file is full,
    /// then queries L2/memory. Returns when the data arrives at L1.
    pub fn fetch_demand(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        if let Some(ready) = self.mshrs.lookup(line, now) {
            // Already being fetched; this access completes with it.
            let ready = ready.max(now);
            self.demand_latency.record(ready - now);
            return ready;
        }
        let mut t = now;
        while !self.mshrs.has_free(t) {
            // Paper: when the miss limit is exceeded, further misses
            // stall the pipeline until an entry retires.
            t = self
                .mshrs
                .earliest_ready()
                .expect("full MSHR file has entries")
                .max(t + 1);
        }
        let ready = self.l2.fetch(line, t).ready;
        self.mshrs.insert(line, ready);
        self.demand_latency.record(ready - now);
        ready
    }

    /// Fetches a line for a **prefetch**: returns `None` (prefetch
    /// discarded, per the paper) when no MSHR is free or the line is
    /// already in flight.
    pub fn fetch_prefetch(&mut self, line: LineAddr, now: Cycle) -> Option<Cycle> {
        if self.mshrs.lookup(line, now).is_some() || !self.mshrs.has_free(now) {
            return None;
        }
        let ready = self.l2.fetch(line, now).ready;
        self.mshrs.insert(line, ready);
        Some(ready)
    }

    /// Whether a line is currently being fetched.
    pub fn in_flight(&mut self, line: LineAddr, now: Cycle) -> bool {
        self.mshrs.lookup(line, now).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plumbing() -> Plumbing {
        Plumbing::paper_default().unwrap()
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn demand_fetch_cold_costs_memory_latency() {
        let mut p = plumbing();
        let ready = p.fetch_demand(line(1), Cycle::ZERO);
        assert_eq!(ready, Cycle::new(100));
    }

    #[test]
    fn demand_fetch_warm_costs_l2_latency() {
        let mut p = plumbing();
        let first = p.fetch_demand(line(1), Cycle::ZERO);
        // Re-fetch after the line left L1 but stayed in L2.
        let again = p.fetch_demand(line(1), first + 50);
        assert_eq!(again - (first + 50), 20);
    }

    #[test]
    fn demand_coalesces_with_in_flight_miss() {
        let mut p = plumbing();
        let a = p.fetch_demand(line(1), Cycle::ZERO);
        let b = p.fetch_demand(line(1), Cycle::new(5));
        assert_eq!(a, b);
        assert!(p.in_flight(line(1), Cycle::new(50)));
        assert!(!p.in_flight(line(1), Cycle::new(100)));
    }

    #[test]
    fn demand_stalls_when_mshrs_full() {
        let cfg = MemTimings {
            mshr_count: 2,
            ..MemTimings::paper_default()
        };
        let mut p = Plumbing::new(cfg, L2MemoryConfig::paper_default().unwrap());
        let a = p.fetch_demand(line(1), Cycle::ZERO);
        let _b = p.fetch_demand(line(2), Cycle::ZERO);
        // Third distinct miss must wait for the first entry to retire.
        let c = p.fetch_demand(line(3), Cycle::ZERO);
        assert!(
            c > a,
            "stalled miss must finish after the entry it waited on"
        );
    }

    #[test]
    fn prefetch_discarded_when_full() {
        let cfg = MemTimings {
            mshr_count: 1,
            ..MemTimings::paper_default()
        };
        let mut p = Plumbing::new(cfg, L2MemoryConfig::paper_default().unwrap());
        let _ = p.fetch_demand(line(1), Cycle::ZERO);
        assert_eq!(p.fetch_prefetch(line(2), Cycle::ZERO), None);
        // After the demand miss retires there is room again.
        assert!(p.fetch_prefetch(line(2), Cycle::new(150)).is_some());
    }

    #[test]
    fn prefetch_not_duplicated_for_in_flight_line() {
        let mut p = plumbing();
        let _ = p.fetch_demand(line(1), Cycle::ZERO);
        assert_eq!(p.fetch_prefetch(line(1), Cycle::new(5)), None);
    }

    #[test]
    fn bank_grant_serializes_same_bank() {
        let mut p = plumbing();
        let g1 = p.l1_grant(line(0), Cycle::ZERO);
        let g2 = p.l1_grant(line(8), Cycle::ZERO); // same bank (8 banks)
        assert_eq!(g1, Cycle::ZERO);
        assert_eq!(g2, Cycle::new(1));
    }
}
