//! The interface between the processor model and a memory system.

use sim_core::Cycle;
use trace_gen::MemoryAccess;

/// The memory system's answer to one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// When the data is available to dependent instructions (loads) or
    /// the access has retired from the memory system's perspective
    /// (stores). Never earlier than the request time.
    pub ready: Cycle,
}

impl MemResponse {
    /// Creates a response ready at the given cycle.
    #[must_use]
    pub const fn at(ready: Cycle) -> Self {
        MemResponse { ready }
    }
}

/// A complete L1-and-below memory system as seen by the processor.
///
/// Every cache-assist architecture in this workspace (baseline, victim
/// cache, prefetcher, exclusion, pseudo-associative cache, adaptive
/// miss buffer) implements this trait, so the experiment harness can
/// swap architectures under one [`OooModel`](crate::OooModel).
///
/// Implementations are expected to be called with non-decreasing `now`
/// values within one run, and to model their own internal contention
/// (banks, buffer ports, MSHRs, buses).
pub trait MemorySystem {
    /// Services one access issued at `now`, returning when it
    /// completes.
    fn access(&mut self, access: MemoryAccess, now: Cycle) -> MemResponse;

    /// A short human-readable label for reports.
    fn label(&self) -> String {
        "memory".to_owned()
    }
}

impl<M: MemorySystem + ?Sized> MemorySystem for &mut M {
    fn access(&mut self, access: MemoryAccess, now: Cycle) -> MemResponse {
        (**self).access(access, now)
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

impl<M: MemorySystem + ?Sized> MemorySystem for Box<M> {
    fn access(&mut self, access: MemoryAccess, now: Cycle) -> MemResponse {
        (**self).access(access, now)
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Addr;

    /// A fixed-latency memory for testing the trait plumbing.
    struct Fixed(u64);

    impl MemorySystem for Fixed {
        fn access(&mut self, _access: MemoryAccess, now: Cycle) -> MemResponse {
            MemResponse::at(now + self.0)
        }
    }

    #[test]
    fn trait_objects_and_references_work() {
        let mut fixed = Fixed(3);
        let access = MemoryAccess::load(Addr::new(0), Addr::new(0));
        {
            let by_ref: &mut dyn MemorySystem = &mut fixed;
            let mut boxed: Box<dyn MemorySystem + '_> = Box::new(by_ref);
            assert_eq!(boxed.access(access, Cycle::new(10)).ready, Cycle::new(13));
            assert_eq!(boxed.label(), "memory");
        }
    }
}
