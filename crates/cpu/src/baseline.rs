//! The no-assist baseline memory system.

use cache_model::{CacheGeometry, CacheStats, ConfigError, SetAssocCache};
use sim_core::probe;
use sim_core::Cycle;
use trace_gen::MemoryAccess;

use crate::{MemResponse, MemorySystem, Plumbing};

/// An L1 data cache with no assist buffer: the baseline every
/// architecture in the paper is compared against (the "no V cache" /
/// "no buffer" bars).
///
/// # Examples
///
/// ```
/// use cpu_model::{BaselineSystem, MemorySystem};
/// use trace_gen::MemoryAccess;
/// use sim_core::{Addr, Cycle};
///
/// let mut sys = BaselineSystem::paper_default()?;
/// let access = MemoryAccess::load(Addr::new(0x1000), Addr::new(0));
/// let cold = sys.access(access, Cycle::ZERO);
/// let warm = sys.access(access, cold.ready);
/// assert!(warm.ready - cold.ready < cold.ready - Cycle::ZERO);
/// # Ok::<(), cache_model::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BaselineSystem {
    l1: SetAssocCache<()>,
    plumbing: Plumbing,
}

impl BaselineSystem {
    /// Creates a baseline with an explicit L1 geometry and miss path.
    #[must_use]
    pub fn new(l1_geometry: CacheGeometry, plumbing: Plumbing) -> Self {
        let mut l1 = SetAssocCache::new(l1_geometry);
        // The baseline L1 is the measured unit, so it reports per-set
        // fill/evict probe events (the shared L2 stays silent).
        l1.enable_set_probes();
        BaselineSystem { l1, plumbing }
    }

    /// The paper's system: 16 KB direct-mapped L1, 8 banks, 16 MSHRs,
    /// 1 MB 2-way L2 (20 cycles), memory (100 cycles).
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors (never for the built-in
    /// constants).
    pub fn paper_default() -> Result<Self, ConfigError> {
        Ok(Self::new(
            CacheGeometry::new(16 * 1024, 1, 64)?,
            Plumbing::paper_default()?,
        ))
    }

    /// Same system with a 2-way 16 KB L1 (the "true 2-way"
    /// comparison of §5.4).
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_two_way() -> Result<Self, ConfigError> {
        Ok(Self::new(
            CacheGeometry::new(16 * 1024, 2, 64)?,
            Plumbing::paper_default()?,
        ))
    }

    /// L1 hit/miss statistics.
    #[must_use]
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// The shared miss path (L2 stats etc.).
    #[must_use]
    pub fn plumbing(&self) -> &Plumbing {
        &self.plumbing
    }
}

impl MemorySystem for BaselineSystem {
    fn access(&mut self, access: MemoryAccess, now: Cycle) -> MemResponse {
        let line_size = self.l1.geometry().line_size();
        let line = access.addr.line(line_size);
        let grant = self.plumbing.l1_grant(line, now);
        if self.l1.probe(line).is_some() {
            probe::emit(probe::ProbeEvent::Access { hit: true });
            return MemResponse::at(grant + self.plumbing.timings().l1_latency);
        }
        probe::emit(probe::ProbeEvent::Access { hit: false });
        let ready = self.plumbing.fetch_demand(line, grant);
        let _evicted = self.l1.fill(line, ());
        MemResponse::at(ready)
    }

    fn label(&self) -> String {
        format!("baseline {}", self.l1.geometry())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuConfig, OooModel};
    use sim_core::Addr;
    use trace_gen::pattern::{SequentialSweep, SetConflict};
    use trace_gen::TraceSource;

    #[test]
    fn hit_latency_is_l1() {
        let mut sys = BaselineSystem::paper_default().unwrap();
        let a = MemoryAccess::load(Addr::new(0), Addr::new(0));
        let cold = sys.access(a, Cycle::ZERO);
        assert_eq!(cold.ready, Cycle::new(100));
        let warm = sys.access(a, Cycle::new(200));
        assert_eq!(warm.ready, Cycle::new(201));
    }

    #[test]
    fn conflict_stream_misses_every_time_in_dm() {
        let mut sys = BaselineSystem::paper_default().unwrap();
        let trace: Vec<_> = SetConflict::new(Addr::new(0), 2, 16 * 1024, 1)
            .take_events(1000)
            .collect();
        let cpu = OooModel::new(CpuConfig::paper_default());
        let _ = cpu.run(&mut sys, trace);
        // After warmup every access misses (two lines fighting for one
        // set in a direct-mapped cache).
        assert!(
            sys.l1_stats().miss_rate() > 0.99,
            "miss rate {}",
            sys.l1_stats().miss_rate()
        );
    }

    #[test]
    fn same_stream_hits_in_two_way() {
        let mut sys = BaselineSystem::paper_two_way().unwrap();
        let trace: Vec<_> = SetConflict::new(Addr::new(0), 2, 16 * 1024, 1)
            .take_events(1000)
            .collect();
        let cpu = OooModel::new(CpuConfig::paper_default());
        let _ = cpu.run(&mut sys, trace);
        // Both lines fit in a 2-way set: only 2 compulsory misses.
        assert_eq!(sys.l1_stats().misses(), 2);
    }

    #[test]
    fn spatial_stream_mostly_hits() {
        let mut sys = BaselineSystem::paper_default().unwrap();
        // 8-byte elements: 8 accesses per 64-byte line.
        let trace: Vec<_> = SequentialSweep::new(Addr::new(0), 1 << 20, 8)
            .take_events(8000)
            .collect();
        let cpu = OooModel::new(CpuConfig::paper_default());
        let _ = cpu.run(&mut sys, trace);
        let mr = sys.l1_stats().miss_rate();
        assert!((0.08..0.20).contains(&mr), "miss rate {mr}, expected ~1/8");
    }

    #[test]
    fn two_way_is_faster_on_conflict_stream() {
        // work=7 makes each event 8 instructions, so the window holds
        // 8 events and the DM miss latency cannot be fully hidden.
        let trace: Vec<_> = SetConflict::new(Addr::new(0), 2, 16 * 1024, 1)
            .with_work(7)
            .take_events(5000)
            .collect();
        let cpu = OooModel::new(CpuConfig::paper_default());
        let mut dm = BaselineSystem::paper_default().unwrap();
        let mut two = BaselineSystem::paper_two_way().unwrap();
        let r_dm = cpu.run(&mut dm, trace.clone());
        let r_two = cpu.run(&mut two, trace);
        assert!(
            r_two.speedup_over(&r_dm) > 1.5,
            "speedup {}",
            r_two.speedup_over(&r_dm)
        );
    }
}
