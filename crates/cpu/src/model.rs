//! The out-of-order processor timing model.

use std::collections::VecDeque;

use sim_core::Cycle;
use trace_gen::{AccessKind, TraceEvent};

use crate::{MemResponse, MemorySystem};

/// Processor core parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuConfig {
    /// Instructions fetched/dispatched per cycle (paper: 8).
    pub fetch_width: u32,
    /// Instruction window: how far dispatch may run ahead of the
    /// oldest incomplete load. The paper's core has two 32-entry
    /// instruction queues; since a load occupies one queue, the
    /// effective lookahead past an incomplete load is ~32
    /// instructions, which is what this models.
    pub window: u64,
    /// Load/store functional units (paper: 4).
    pub lsu_count: usize,
    /// Front-end pipeline depth charged once at start (paper: 7-stage
    /// pipeline).
    pub pipeline_depth: u64,
}

impl CpuConfig {
    /// The paper's core: 8-wide, 32-instruction effective window,
    /// 4 LSUs, 7 stages.
    #[must_use]
    pub const fn paper_default() -> Self {
        CpuConfig {
            fetch_width: 8,
            window: 32,
            lsu_count: 4,
            pipeline_depth: 7,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The result of running a trace through the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuReport {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total instructions (memory accesses plus surrounding work).
    pub instructions: u64,
}

impl CpuReport {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over a baseline run **of the same trace**
    /// (cycles ratio).
    ///
    /// # Panics
    ///
    /// Panics if the two runs executed different instruction counts —
    /// that comparison would be meaningless.
    #[must_use]
    pub fn speedup_over(&self, baseline: &CpuReport) -> f64 {
        assert_eq!(
            self.instructions, baseline.instructions,
            "speedup requires identical traces"
        );
        baseline.cycles as f64 / self.cycles as f64
    }
}

/// A trace-driven approximation of the paper's out-of-order core.
///
/// Model (documented in DESIGN.md): instructions dispatch at
/// `fetch_width` per cycle; each memory access needs a free load/store
/// unit; loads enter an instruction window and dispatch stalls
/// whenever it would run more than `window` instructions ahead of an
/// incomplete load (in-order retirement approximated by completion
/// order). Stores retire through a write buffer and do not block.
/// Miss-level parallelism is additionally bounded by the memory
/// system's MSHR file.
///
/// # Examples
///
/// ```
/// use cpu_model::{CpuConfig, MemResponse, MemorySystem, OooModel};
/// use trace_gen::pattern::SetConflict;
/// use trace_gen::{MemoryAccess, TraceSource};
/// use sim_core::{Addr, Cycle};
///
/// struct Perfect;
/// impl MemorySystem for Perfect {
///     fn access(&mut self, _: MemoryAccess, now: Cycle) -> MemResponse {
///         MemResponse::at(now + 1)
///     }
/// }
///
/// let cpu = OooModel::new(CpuConfig::paper_default());
/// let trace = SetConflict::new(Addr::new(0), 2, 16 * 1024, 1).take_events(1000);
/// let report = cpu.run(&mut Perfect, trace);
/// assert!(report.ipc() > 1.0); // perfect memory: near issue-bound
/// ```
#[derive(Debug, Clone)]
pub struct OooModel {
    cfg: CpuConfig,
}

impl OooModel {
    /// Creates a model with the given core parameters.
    #[must_use]
    pub const fn new(cfg: CpuConfig) -> Self {
        OooModel { cfg }
    }

    /// The core parameters.
    #[must_use]
    pub const fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Runs a trace to completion against `mem` and reports cycles and
    /// instructions.
    pub fn run<M, I>(&self, mem: &mut M, trace: I) -> CpuReport
    where
        M: MemorySystem,
        I: IntoIterator<Item = TraceEvent>,
    {
        let width = u64::from(self.cfg.fetch_width.max(1));
        let mut now = self.cfg.pipeline_depth;
        // Sub-cycle dispatch slots consumed in the current cycle.
        let mut slots: u64 = 0;
        let mut instructions: u64 = 0;
        // Loads in flight: (instruction index at dispatch, completion
        // cycle). Completion times are monotone (in-order retirement
        // approximation) because `enforce` below maxes them.
        let mut inflight: VecDeque<(u64, u64)> = VecDeque::new();
        let mut lsu = cache_model::BankedPorts::new(self.cfg.lsu_count);
        let mut last_completion = 0u64;

        for event in trace {
            let cost = u64::from(event.work) + 1;
            instructions += cost;

            // Window limit: dispatch of the current instruction cannot
            // proceed while a load more than `window` instructions
            // older is still incomplete.
            while let Some(&(idx, ready)) = inflight.front() {
                if instructions.saturating_sub(idx) < self.cfg.window {
                    break;
                }
                if ready > now {
                    now = ready;
                    slots = 0;
                }
                inflight.pop_front();
            }

            // Dispatch the work and the access itself.
            slots += cost;
            now += slots / width;
            slots %= width;

            // The access needs a load/store unit.
            let grant = lsu.acquire_any(Cycle::new(now), 1);
            let MemResponse { ready } = mem.access(event.access, grant);
            debug_assert!(ready >= grant, "memory answered in the past");
            if event.access.kind == AccessKind::Load {
                let completion = ready.raw().max(last_completion);
                last_completion = completion;
                inflight.push_back((instructions, completion));
            }
        }

        // Drain: the program ends when the last load completes.
        let end = inflight.back().map_or(now, |&(_, ready)| ready.max(now));
        CpuReport {
            cycles: end,
            instructions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Addr;
    use trace_gen::pattern::SequentialSweep;
    use trace_gen::{MemoryAccess, TraceSource};

    struct Fixed(u64);

    impl MemorySystem for Fixed {
        fn access(&mut self, _: MemoryAccess, now: Cycle) -> MemResponse {
            MemResponse::at(now + self.0)
        }
    }

    fn trace(n: usize, work: u32) -> Vec<TraceEvent> {
        SequentialSweep::new(Addr::new(0), 1 << 20, 64)
            .with_work(work)
            .take_events(n)
            .collect()
    }

    #[test]
    fn perfect_memory_is_issue_bound() {
        let cpu = OooModel::new(CpuConfig::paper_default());
        let t = trace(10_000, 7); // 8 instructions per event, 8-wide
        let r = cpu.run(&mut Fixed(1), t);
        // Should approach 8 IPC: one event (8 instructions) per cycle.
        assert!(r.ipc() > 6.0, "ipc {}", r.ipc());
    }

    #[test]
    fn slow_memory_hurts() {
        let cpu = OooModel::new(CpuConfig::paper_default());
        let fast = cpu.run(&mut Fixed(1), trace(5_000, 3));
        let slow = cpu.run(&mut Fixed(200), trace(5_000, 3));
        assert!(
            slow.cycles > fast.cycles * 2,
            "fast {} slow {}",
            fast.cycles,
            slow.cycles
        );
    }

    #[test]
    fn window_bounds_latency_overlap() {
        // With a huge window, 100-cycle loads overlap deeply; with a
        // tiny window they serialize.
        let wide = OooModel::new(CpuConfig {
            window: 1024,
            ..CpuConfig::paper_default()
        });
        let narrow = OooModel::new(CpuConfig {
            window: 4,
            ..CpuConfig::paper_default()
        });
        let w = wide.run(&mut Fixed(100), trace(2_000, 3));
        let n = narrow.run(&mut Fixed(100), trace(2_000, 3));
        assert!(
            n.cycles > w.cycles * 3,
            "wide {} narrow {}",
            w.cycles,
            n.cycles
        );
    }

    #[test]
    fn stores_do_not_block() {
        let cpu = OooModel::new(CpuConfig::paper_default());
        let loads: Vec<_> = SequentialSweep::new(Addr::new(0), 1 << 20, 64)
            .with_work(3)
            .take_events(2_000)
            .collect();
        let stores: Vec<_> = loads
            .iter()
            .map(|e| {
                TraceEvent::new(
                    MemoryAccess {
                        kind: trace_gen::AccessKind::Store,
                        ..e.access
                    },
                    e.work,
                )
            })
            .collect();
        let r_loads = cpu.run(&mut Fixed(100), loads);
        let r_stores = cpu.run(&mut Fixed(100), stores);
        assert!(
            r_stores.cycles < r_loads.cycles,
            "stores must not serialize on latency"
        );
    }

    #[test]
    fn speedup_is_cycles_ratio() {
        let a = CpuReport {
            cycles: 100,
            instructions: 1000,
        };
        let b = CpuReport {
            cycles: 200,
            instructions: 1000,
        };
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "identical traces")]
    fn speedup_rejects_different_traces() {
        let a = CpuReport {
            cycles: 100,
            instructions: 1000,
        };
        let b = CpuReport {
            cycles: 100,
            instructions: 999,
        };
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn empty_trace_costs_pipeline_depth() {
        let cpu = OooModel::new(CpuConfig::paper_default());
        let r = cpu.run(&mut Fixed(1), Vec::new());
        assert_eq!(r.cycles, 7);
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn lsu_contention_limits_memory_throughput() {
        // Events with zero work: 1 instruction each, all memory ops.
        // 8-wide dispatch but only 4 LSUs => at most 4 accesses/cycle.
        let cpu = OooModel::new(CpuConfig::paper_default());
        let t = trace(8_000, 0);
        let r = cpu.run(&mut Fixed(1), t);
        assert!(r.ipc() <= 4.2, "ipc {} exceeds LSU bound", r.ipc());
    }
}
