//! Golden tests for the lint pass itself.
//!
//! The fixtures under `tests/fixtures/` are linted through
//! [`simlint::lint_source`] under *synthetic* workspace paths — rule
//! applicability is path-driven, so a fixture can be checked as if it
//! lived on a hot kernel path without actually being compiled into
//! one. The rendered diagnostics are compared byte-for-byte against
//! `fixtures/golden_diagnostics.txt`.
//!
//! A separate self-check runs the real workspace pass over this
//! repository and requires it to come back clean — the same invariant
//! CI enforces via `cargo run -p simlint -- --json`.

use std::path::Path;

/// Every known-bad fixture with the synthetic path it is linted under.
/// Order here is the order of blocks in the golden file.
const BAD_FIXTURES: [(&str, &str); 10] = [
    ("bad_default_hasher.rs", "crates/x/src/lib.rs"),
    ("bad_wallclock.rs", "crates/cpu/src/baseline.rs"),
    ("bad_transitive_panic.rs", "crates/x/src/kernel.rs"),
    ("bad_hot_path_alloc.rs", "crates/x/src/kernel.rs"),
    ("bad_registry_drift.rs", "crates/x/src/lib.rs"),
    ("bad_probe_guard.rs", "crates/cpu/src/baseline.rs"),
    ("bad_unseeded_rng.rs", "crates/x/src/lib.rs"),
    ("bad_waiver.rs", "crates/x/src/lib.rs"),
    ("bad_bench_prefix.rs", "crates/bench/benches/micro.rs"),
    ("bad_span_name.rs", "crates/x/src/lib.rs"),
];

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => panic!("cannot read fixture {}: {err}", path.display()),
    }
}

#[test]
fn bad_fixtures_match_golden_diagnostics() {
    let mut rendered = String::new();
    for (name, synthetic_path) in BAD_FIXTURES {
        let (findings, waived) = simlint::lint_source(synthetic_path, &fixture(name));
        assert!(
            !findings.is_empty(),
            "{name} must trip its rule under {synthetic_path}"
        );
        assert_eq!(waived, 0, "{name} has no waivers");
        rendered.push_str(&format!("# {name}\n"));
        for f in &findings {
            rendered.push_str(&f.render());
            rendered.push('\n');
        }
        rendered.push('\n');
    }
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_diagnostics.txt");
    if std::env::var_os("SIMLINT_BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).expect("rewrite golden file");
        return;
    }
    let golden = include_str!("fixtures/golden_diagnostics.txt");
    assert_eq!(
        rendered, golden,
        "fixture diagnostics drifted from fixtures/golden_diagnostics.txt \
         (rerun with SIMLINT_BLESS=1 to accept)"
    );
}

#[test]
fn each_rule_is_covered_by_a_fixture() {
    // Every rule the engine knows must have at least one fixture that
    // trips it, so a new rule cannot land untested.
    let mut tripped: Vec<&'static str> = Vec::new();
    for (name, synthetic_path) in BAD_FIXTURES {
        let (findings, _) = simlint::lint_source(synthetic_path, &fixture(name));
        tripped.extend(findings.iter().map(|f| f.rule));
    }
    for rule in simlint::rules::RULE_NAMES {
        assert!(tripped.contains(&rule), "no fixture trips rule `{rule}`");
    }
}

#[test]
fn waived_fixture_is_clean_with_one_waiver() {
    let (findings, waived) =
        simlint::lint_source("crates/cpu/src/baseline.rs", &fixture("waived.rs"));
    assert!(
        findings.is_empty(),
        "waiver must suppress the finding: {findings:?}"
    );
    assert_eq!(waived, 1);
}

#[test]
fn clean_fixture_is_clean_everywhere() {
    // Linted under the hot kernel path so every path-scoped rule is
    // armed; a clean file must produce neither findings nor waivers.
    let (findings, waived) =
        simlint::lint_source("crates/cache/src/cache.rs", &fixture("clean.rs"));
    assert!(findings.is_empty(), "clean fixture flagged: {findings:?}");
    assert_eq!(waived, 0);
}

#[test]
fn workspace_self_check_is_clean() {
    // The shipped tree must lint clean — the invariant CI enforces.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = match simlint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => panic!("workspace lint failed: {err}"),
    };
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.render_human()
    );
    assert!(
        report.files_scanned > 50,
        "workspace walk looks truncated: {} files",
        report.files_scanned
    );
}

#[test]
fn walker_skips_fixtures_vendor_and_target() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = match simlint::workspace_files(&root) {
        Ok(files) => files,
        Err(err) => panic!("workspace walk failed: {err}"),
    };
    assert!(files
        .iter()
        .any(|(rel, _)| rel == "crates/simlint/src/lib.rs"));
    for (rel, _) in &files {
        assert!(
            !rel.contains("fixtures/")
                && !rel.starts_with("vendor/")
                && !rel.starts_with("target/"),
            "walker must skip {rel}"
        );
    }
}
