//! End-to-end checks of the `simlint` binary's CLI contract: help goes
//! to stdout with exit 0, usage errors go to stderr with exit 2, and a
//! clean tree lints clean with the `lint-repro/2` JSONL header.

use std::process::Command;

fn simlint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simlint"))
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    for flag in ["-h", "--help"] {
        let out = simlint().arg(flag).output().expect("run simlint");
        assert!(out.status.success(), "{flag}: {:?}", out.status);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage: simlint"), "{flag}: {stdout}");
        assert!(stdout.contains("lint-repro/2"), "{flag}: {stdout}");
        assert!(out.stderr.is_empty(), "{flag}: help must not use stderr");
    }
}

#[test]
fn unknown_flag_prints_usage_to_stderr_and_exits_two() {
    let out = simlint().arg("--bogus").output().expect("run simlint");
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: simlint"), "{stderr}");
}

#[test]
fn missing_root_argument_exits_two() {
    let out = simlint().arg("--root").output().expect("run simlint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn clean_tree_lints_clean_with_v2_header() {
    let dir = std::env::temp_dir().join(format!("simlint-cli-{}", std::process::id()));
    let src = dir.join("src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\n# members resolved by simlint's own walker\n",
    )
    .expect("write manifest");
    std::fs::write(src.join("lib.rs"), "pub fn answer() -> u64 {\n    42\n}\n")
        .expect("write source");

    let out = simlint()
        .args(["--json", "--root"])
        .arg(&dir)
        .output()
        .expect("run simlint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{:?}\n{stdout}", out.status);
    let header = stdout.lines().next().unwrap_or("");
    assert!(header.contains("\"schema\":\"lint-repro/2\""), "{header}");
    assert!(stdout
        .lines()
        .last()
        .unwrap_or("")
        .contains("\"findings\":0"));

    let _ = std::fs::remove_dir_all(dir);
}
