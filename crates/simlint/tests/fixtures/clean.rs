//! Clean fixture: the conventions, followed. Linted as
//! `crates/cache/src/cache.rs` so every path-scoped rule is armed.

use sim_core::hash::FxHashMap;
use sim_core::rng::SplitMix64;

pub fn run(seed: u64) -> FxHashMap<u64, u64> {
    let mut rng = SplitMix64::new(seed);
    let mut counts = FxHashMap::default();
    for _ in 0..64 {
        *counts.entry(rng.next_below(8)).or_insert(0) += 1;
    }
    probe::emit(probe::ProbeEvent::Access { set: 0, hit: true });
    if probe::active() {
        let event = expensive_event(&counts);
        probe::emit(event);
    }
    counts
}

fn expensive_event(counts: &FxHashMap<u64, u64>) -> probe::ProbeEvent {
    probe::ProbeEvent::Histogram {
        buckets: counts.len(),
    }
}
