//! Known-bad fixture: ambient-entropy randomness. The rule applies in
//! test code too. Linted as `crates/x/src/lib.rs`.

pub fn shuffle_seed() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

#[cfg(test)]
mod tests {
    #[test]
    fn jittered() {
        let x: u64 = rand::random();
        assert!(x != 0 || x == 0);
    }
}
