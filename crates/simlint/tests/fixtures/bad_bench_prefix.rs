//! Known-bad fixture: criterion groups without a registered layer
//! prefix. Linted as `crates/bench/benches/micro.rs`.

pub fn register(c: &mut criterion::Criterion) {
    let mut g = c.benchmark_group("micro");
    g.bench_function("noop", |b| b.iter(|| 0u32));
    g.finish();
    let name = String::from("dynamic");
    let mut h = c.benchmark_group(&name);
    h.finish();
}
