//! Known-bad fixture: schema literals that disagree with the
//! canonical registry in `sim_core`. Linted as `crates/x/src/lib.rs`.

pub const OLD_BENCH: &str = "bench-repro/1";

pub const UNKNOWN_FAMILY: &str = "mystery-repro/1";
