//! Known-bad fixture: malformed and unknown-rule waivers are findings
//! themselves. Linted as `crates/x/src/lib.rs`.

// simlint: forbid(wallclock)
pub fn a() {}

// simlint: allow(no-such-rule)
pub fn b() {}
