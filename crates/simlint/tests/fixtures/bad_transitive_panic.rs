//! Known-bad fixture: a panic reachable from a registered hot entry
//! point through the call graph. Linted as `crates/x/src/kernel.rs`.

pub fn access_block(stamps: &[u64]) -> u64 {
    newest(stamps)
}

fn newest(stamps: &[u64]) -> u64 {
    pick(stamps)
}

fn pick(stamps: &[u64]) -> u64 {
    *stamps.iter().max().expect("non-empty block")
}
