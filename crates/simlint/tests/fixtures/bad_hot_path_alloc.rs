//! Known-bad fixture: heap allocation reachable from a registered
//! hot entry point. Linted as `crates/x/src/kernel.rs`.

pub fn fill_at(n: usize) -> Vec<u32> {
    scratch(n)
}

fn scratch(n: usize) -> Vec<u32> {
    let mut buf = Vec::with_capacity(n);
    buf.extend(std::iter::repeat(0).take(n));
    buf
}
