//! Known-bad fixture: panicking calls on a simulator hot path.
//! Linted as `crates/cache/src/cache.rs`.

pub fn victim(stamps: &[u64]) -> usize {
    let (way, _) = stamps
        .iter()
        .enumerate()
        .min_by_key(|(_, &s)| s)
        .expect("set is never empty");
    if way >= stamps.len() {
        panic!("way out of range");
    }
    way
}

pub fn newest(stamps: &[u64]) -> u64 {
    *stamps.iter().max().unwrap()
}
