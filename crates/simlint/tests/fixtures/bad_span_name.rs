// Fixture: span names that violate the `span-name` rule — an
// unregistered prefix and a computed (non-literal) name. Never
// compiled; linted under a synthetic library path.

fn replay(names: &[&'static str]) {
    let _bad = sim_core::span::enter("mystery_phase");
    let _dynamic = sim_core::span::enter(names[0]);
    sim_core::span::scope(
        sim_core::span::ScopeKind::Cell,
        "warmup",
        "fig1",
        String::new,
        || {},
    );
}
