//! Waived fixture: one real violation suppressed by a justified
//! in-place waiver. Linted as `crates/cpu/src/baseline.rs`.

pub fn coarse_deadline_passed() -> bool {
    // Gates an optional stderr warning only, never experiment output.
    // simlint: allow(wallclock)
    let start = std::time::Instant::now();
    start.elapsed().as_secs() < 1
}
