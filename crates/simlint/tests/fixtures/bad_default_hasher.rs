//! Known-bad fixture: std HashMap/HashSet with the default SipHash
//! hasher on a non-test path. Linted as `crates/x/src/lib.rs`.

use std::collections::{HashMap, HashSet};

pub fn histogram(keys: &[u64]) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    let mut seen = HashSet::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
        seen.insert(k);
    }
    counts
}
