//! Known-bad fixture: a probe emit whose event is built eagerly with
//! no armed check in sight. Linted as `crates/cpu/src/baseline.rs`.

pub fn record(set: u32, hit: bool) {
    let event = build_event(set, hit);
    probe::emit(event);
}

fn build_event(set: u32, hit: bool) -> probe::ProbeEvent {
    probe::ProbeEvent::Access { set, hit }
}
