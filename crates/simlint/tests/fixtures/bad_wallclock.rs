//! Known-bad fixture: wall-clock reads outside experiments::telemetry
//! and bench code. Linted as `crates/cpu/src/baseline.rs`.

use std::time::{Instant, SystemTime};

pub fn timestamped_run() -> f64 {
    let start = Instant::now();
    let _wall = SystemTime::now();
    start.elapsed().as_secs_f64()
}
