//! Workspace symbol table and approximate call graph.
//!
//! The per-file rules in [`crate::rules`] see one file at a time,
//! which is why the old `hot-path-panic` rule needed a hardcoded list
//! of hot *files*: it could not know that a function in another crate
//! is reachable from the replay kernel. This module closes that gap
//! without a type checker: it parses the scrubbed token stream (see
//! [`crate::lexer`]) of every workspace file into a symbol table of
//! function definitions (free functions, `impl`/`trait` associated
//! functions, with body line ranges) and the call sites inside each
//! body, then links call sites to definitions *by name* to form an
//! approximate cross-crate call graph.
//!
//! ## Approximation contract
//!
//! Resolution is name-directed, not type-directed, and deliberately
//! over-approximates:
//!
//! * a method call `recv.name(..)` links to **every** workspace
//!   function named `name` defined in an `impl` or `trait` block —
//!   receiver types are unknown, so all candidate receivers are
//!   assumed reachable;
//! * a type-qualified call `Type::name(..)` links only to functions
//!   named `name` owned by `Type` (a generic qualifier such as `P::`
//!   or `Self::` falls back to the method rule);
//! * a module-qualified call `module::name(..)` prefers free
//!   functions named `name` defined in a file or crate matching
//!   `module`, falling back to every free `name`;
//! * an unqualified call `name(..)` prefers same-file, then
//!   same-crate, then any free function named `name`.
//!
//! Calls into `std` and the vendored stubs resolve to nothing (their
//! sources are never scanned), closures attribute their calls to the
//! enclosing named function, and macro bodies are opaque — macro
//! *tokens* (`panic!`, `format!`) are matched textually by the rules
//! instead. False edges are possible when an std method name collides
//! with a workspace method name; that direction of error makes the
//! graph rules stricter, never blind, and a call-path evidence array
//! accompanies every finding so a false edge is visible on sight.
//! Test functions (`#[cfg(test)]`/`#[test]` regions, test/bench/
//! example files) are excluded from the table entirely.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::rules::is_ident_byte;

/// How a call site spells its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Qual {
    /// `name(..)` — unqualified.
    Free,
    /// `recv.name(..)` — method syntax, with whatever the receiver
    /// text reveals.
    Method(Receiver),
    /// `Type::name(..)` — qualified by a concrete type name.
    Type(String),
    /// `module::name(..)` — qualified by a lowercase path segment.
    Module(String),
}

/// What a method call's receiver text reveals about its type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.name(..)` — the receiver is the caller's own type.
    SelfDirect,
    /// `self.oracle.name(..)` / `sink.name(..)` — the last receiver
    /// segment, a naming hint matched against candidate owner names.
    Hint(String),
    /// A chained or opaque receiver (`f().name(..)`, one-letter
    /// bindings) revealing nothing.
    Unknown,
}

/// Method names the std preludes and core containers define. A method
/// call spelling one of these almost always targets `std`, so linking
/// it to a same-named workspace method would wire unrelated subsystems
/// together (`.expect(..)` is not a call into a parser's `expect`).
/// Method-syntax and generic-qualifier calls to these names resolve to
/// nothing; an explicit `Type::name(..)` still resolves precisely.
const AMBIENT_METHODS: [&str; 45] = [
    "as_mut",
    "as_ref",
    "clone",
    "cmp",
    "contains",
    "default",
    "drop",
    "entry",
    "eq",
    "expect",
    "extend",
    "fill",
    "filter",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "last",
    "len",
    "map",
    "max",
    "min",
    "new",
    "next",
    "partial_cmp",
    "pop",
    "push",
    "read",
    "remove",
    "rev",
    "take",
    "to_owned",
    "to_string",
    "unwrap",
    "write",
    "zip",
];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (the identifier before the `(`).
    pub name: String,
    /// How the callee is spelled.
    pub qual: Qual,
    /// 1-based line of the call.
    pub line: usize,
}

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Owning `impl`/`trait` type, or `None` for a free function.
    pub owner: Option<String>,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line range of the body (opening to closing brace,
    /// inclusive). Equal lines for a one-line body.
    pub body: (usize, usize),
    /// Call sites inside the body, in source order.
    pub calls: Vec<Call>,
}

impl FnDef {
    /// `"name (file:line)"` — the evidence spelling used in call-path
    /// arrays.
    #[must_use]
    pub fn evidence(&self, files: &[String]) -> String {
        let file = files.get(self.file).map_or("?", |f| f.as_str());
        format!("{} ({}:{})", self.name, file, self.line)
    }
}

/// The workspace symbol table: every non-test function definition in
/// every scanned file, indexed by name.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Workspace-relative file paths, in scan order.
    pub files: Vec<String>,
    /// Every function definition, ordered by (file, line).
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Workspace {
    /// Creates an empty table; feed it files with [`Self::add_file`].
    #[must_use]
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Parses one scrubbed file into the table. `mask` marks
    /// test-context lines (a definition on a masked line is skipped).
    pub fn add_file(&mut self, path: &str, lines: &[String], mask: &[bool]) {
        let file = self.files.len();
        self.files.push(path.to_owned());
        let before = self.fns.len();
        parse_file(file, lines, mask, &mut self.fns);
        for idx in before..self.fns.len() {
            self.by_name
                .entry(self.fns[idx].name.clone())
                .or_default()
                .push(idx);
        }
    }

    /// Indices of definitions named `name`.
    #[must_use]
    pub fn defs_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// The crate key of a file path (`crates/<dir>/…` → `<dir>`,
    /// anything else → `""`).
    fn crate_key(&self, file: usize) -> &str {
        let path = &self.files[file];
        path.strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("")
    }

    /// Resolves every call site to candidate definitions, producing
    /// the adjacency list of the approximate call graph.
    #[must_use]
    pub fn call_graph(&self) -> Vec<Vec<usize>> {
        let mut adj = Vec::with_capacity(self.fns.len());
        for f in &self.fns {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &f.calls {
                self.resolve(f, call, &mut out);
            }
            adj.push(out.into_iter().collect());
        }
        adj
    }

    fn resolve(&self, caller: &FnDef, call: &Call, out: &mut BTreeSet<usize>) {
        let candidates = self.defs_named(&call.name);
        if candidates.is_empty() {
            return;
        }
        let owned: Vec<usize> = candidates
            .iter()
            .filter(|&&i| self.fns[i].owner.is_some())
            .copied()
            .collect();
        let ambient = AMBIENT_METHODS.contains(&call.name.as_str());
        // `self.f(..)` / `Self::f(..)`: the receiver is the caller's
        // own type — precise when the caller has one.
        let self_direct = matches!(&call.qual, Qual::Method(Receiver::SelfDirect))
            || matches!(&call.qual, Qual::Type(t) if t == "Self");
        if self_direct {
            match &caller.owner {
                Some(owner) => out.extend(
                    owned
                        .iter()
                        .filter(|&&i| self.fns[i].owner.as_deref() == Some(owner))
                        .copied(),
                ),
                None => {
                    if !ambient {
                        out.extend(owned);
                    }
                }
            }
            return;
        }
        match &call.qual {
            Qual::Method(recv) => {
                if ambient {
                    return;
                }
                match recv {
                    Receiver::Hint(hint) => {
                        // Match the hint against owner names
                        // (`oracle` → `ShadowOracle`); an unmatched
                        // hint falls back to the caller's own crate —
                        // locality beats wiring unrelated subsystems.
                        let normalized = hint.replace('_', "");
                        let matching: Vec<usize> = owned
                            .iter()
                            .filter(|&&i| {
                                self.fns[i]
                                    .owner
                                    .as_deref()
                                    .is_some_and(|o| o.to_lowercase().contains(&normalized))
                            })
                            .copied()
                            .collect();
                        if matching.is_empty() {
                            let caller_crate = self.crate_key(caller.file);
                            out.extend(
                                owned
                                    .iter()
                                    .filter(|&&i| self.crate_key(self.fns[i].file) == caller_crate)
                                    .copied(),
                            );
                        } else {
                            out.extend(matching);
                        }
                    }
                    Receiver::SelfDirect | Receiver::Unknown => out.extend(owned),
                }
            }
            Qual::Type(t) if is_generic_param(t) => {
                // `P::f(..)`: a generic parameter dispatches to any
                // implementor, like an opaque method receiver.
                if !ambient {
                    out.extend(owned);
                }
            }
            Qual::Type(t) => {
                out.extend(
                    candidates
                        .iter()
                        .filter(|&&i| self.fns[i].owner.as_deref() == Some(t))
                        .copied(),
                );
            }
            Qual::Module(m) => {
                let free: Vec<usize> = candidates
                    .iter()
                    .filter(|&&i| self.fns[i].owner.is_none())
                    .copied()
                    .collect();
                let matching: Vec<usize> = free
                    .iter()
                    .filter(|&&i| {
                        let path = &self.files[self.fns[i].file];
                        path.ends_with(&format!("/{m}.rs"))
                            || path.contains(&format!("/{m}/"))
                            || self.crate_key(self.fns[i].file) == m.replace('_', "-")
                            || self.crate_key(self.fns[i].file) == *m
                    })
                    .copied()
                    .collect();
                out.extend(if matching.is_empty() { free } else { matching });
            }
            Qual::Free => {
                let free: Vec<usize> = candidates
                    .iter()
                    .filter(|&&i| self.fns[i].owner.is_none())
                    .copied()
                    .collect();
                let same_file: Vec<usize> = free
                    .iter()
                    .filter(|&&i| self.fns[i].file == caller.file)
                    .copied()
                    .collect();
                if !same_file.is_empty() {
                    out.extend(same_file);
                    return;
                }
                let caller_crate = self.crate_key(caller.file);
                let same_crate: Vec<usize> = free
                    .iter()
                    .filter(|&&i| self.crate_key(self.fns[i].file) == caller_crate)
                    .copied()
                    .collect();
                out.extend(if same_crate.is_empty() {
                    free
                } else {
                    same_crate
                });
            }
        }
    }

    /// Multi-source BFS over the call graph from every definition
    /// `roots` accepts, never entering a definition `skip` accepts
    /// (cold escapes — guarded slow paths whose cost is by design).
    /// Returns, for each function, `Some(parent)` when reached
    /// (`parent == self` marks a root), `None` when not. BFS order is
    /// definition order, so parents — and therefore the evidence
    /// paths built from them — are deterministic.
    #[must_use]
    pub fn reach(
        &self,
        adj: &[Vec<usize>],
        roots: impl Fn(&FnDef) -> bool,
        skip: impl Fn(&FnDef) -> bool,
    ) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue = VecDeque::new();
        for (i, f) in self.fns.iter().enumerate() {
            if roots(f) && !skip(f) {
                parent[i] = Some(i);
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &adj[i] {
                if parent[j].is_none() && !skip(&self.fns[j]) {
                    parent[j] = Some(i);
                    queue.push_back(j);
                }
            }
        }
        parent
    }

    /// The call chain from a root entry point down to `target`, as
    /// evidence strings (`"name (file:line)"`), root first. Empty when
    /// `target` was not reached.
    #[must_use]
    pub fn chain(&self, parent: &[Option<usize>], target: usize) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = target;
        loop {
            let Some(p) = parent.get(cur).copied().flatten() else {
                return Vec::new();
            };
            rev.push(cur);
            if p == cur {
                break;
            }
            cur = p;
        }
        rev.reverse();
        rev.into_iter()
            .map(|i| self.fns[i].evidence(&self.files))
            .collect()
    }
}

/// A generic type parameter spelling (`T`, `P`, `S1`): short and
/// fully uppercase/numeric.
fn is_generic_param(name: &str) -> bool {
    name.len() <= 2
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
}

/// Reserved words that look like calls when followed by `(`.
const KEYWORDS: [&str; 27] = [
    "as", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "while", "where",
];

#[derive(Debug)]
enum CtxKind {
    /// An `impl`/`trait` block; the owning type name.
    Owner(String),
    /// A function body; index into the output `fns`.
    Body(usize),
}

#[derive(Debug)]
struct Ctx {
    /// Brace depth *at which the block opened* (popping happens when
    /// depth returns here).
    depth: i64,
    kind: CtxKind,
}

/// A `fn` item seen but whose body `{` (or `;`) has not arrived yet.
#[derive(Debug)]
struct PendingFn {
    name: String,
    line: usize,
    /// Paren/bracket nesting inside the signature: a `;` at depth 0
    /// ends a bodiless (trait) declaration.
    paren: i64,
    bracket: i64,
}

/// What the scanner is collecting between items.
#[derive(Debug)]
enum Mode {
    Code,
    /// After `impl`: collecting header text until the block `{`.
    ImplHeader(String),
    /// After `trait`: the next identifier names the owner.
    TraitName,
    /// After a trait's name: skipping bounds until the block `{`.
    TraitHeader(String),
    /// After `fn`: the next identifier names the function.
    FnName,
}

fn parse_file(file: usize, lines: &[String], mask: &[bool], fns: &mut Vec<FnDef>) {
    let mut depth: i64 = 0;
    let mut ctxs: Vec<Ctx> = Vec::new();
    let mut mode = Mode::Code;
    let mut pending: Option<PendingFn> = None;

    for (li, line) in lines.iter().enumerate() {
        let in_test = mask.get(li).copied().unwrap_or(false);
        let bytes = line.as_bytes();
        let trimmed = line.trim_start();
        // Attribute lines (`#[derive(..)]`, `#[cfg(..)]`) are not
        // calls; their parens also never open bodies.
        if trimmed.starts_with('#') {
            continue;
        }
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            if c.is_ascii_alphabetic() || c == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let ident = &line[start..i];
                match &mut mode {
                    Mode::ImplHeader(text) | Mode::TraitHeader(text) => {
                        text.push_str(ident);
                        text.push(' ');
                        continue;
                    }
                    Mode::TraitName => {
                        mode = Mode::TraitHeader(format!("{ident} "));
                        continue;
                    }
                    Mode::FnName => {
                        pending = Some(PendingFn {
                            name: ident.to_owned(),
                            line: li + 1,
                            paren: 0,
                            bracket: 0,
                        });
                        mode = Mode::Code;
                        continue;
                    }
                    Mode::Code => {}
                }
                match ident {
                    "impl" => {
                        mode = Mode::ImplHeader(String::new());
                        continue;
                    }
                    "trait" => {
                        mode = Mode::TraitName;
                        continue;
                    }
                    "fn" => {
                        // `fn` as a *type* (`fn() -> u64`) is followed
                        // by `(`; only an identifier starts a def.
                        let next = bytes[i..]
                            .iter()
                            .position(|&b| b != b' ')
                            .map(|p| bytes[i + p]);
                        if next.is_some_and(|b| b.is_ascii_alphabetic() || b == b'_') {
                            mode = Mode::FnName;
                        }
                        continue;
                    }
                    _ => {}
                }
                // Call detection: lowercase identifier directly
                // followed by `(` (or a `::<turbofish>(`), inside a
                // non-test function body.
                if in_test || pending.is_some() {
                    continue;
                }
                let Some(body_idx) = innermost_body(&ctxs) else {
                    continue;
                };
                if !bytes[start].is_ascii_lowercase() && bytes[start] != b'_' {
                    continue;
                }
                if KEYWORDS.contains(&ident) {
                    continue;
                }
                let mut j = i;
                // Optional turbofish between name and argument list.
                if line[j..].starts_with("::<") {
                    let mut angle = 0i64;
                    let rest = &bytes[j + 2..];
                    let mut k = 0usize;
                    while k < rest.len() {
                        match rest[k] {
                            b'<' => angle += 1,
                            b'>' => {
                                angle -= 1;
                                if angle == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    j += 2 + k;
                }
                if bytes.get(j) != Some(&b'(') {
                    continue;
                }
                // A macro invocation (`name!(`) is not a call edge.
                if bytes.get(i) == Some(&b'!') {
                    continue;
                }
                let qual = classify_qual(line, start);
                fns[body_idx].calls.push(Call {
                    name: ident.to_owned(),
                    qual,
                    line: li + 1,
                });
                continue;
            }
            match c {
                b'{' => {
                    match std::mem::replace(&mut mode, Mode::Code) {
                        Mode::ImplHeader(text) | Mode::TraitHeader(text) => {
                            ctxs.push(Ctx {
                                depth,
                                kind: CtxKind::Owner(owner_from_header(&text)),
                            });
                        }
                        other => {
                            mode = other;
                            if let Some(p) = pending.take() {
                                if in_test || mask.get(p.line - 1).copied().unwrap_or(false) {
                                    // Test fn: body braces still need
                                    // tracking, but no definition.
                                    depth += 1;
                                    i += 1;
                                    continue;
                                }
                                let owner = ctxs.iter().rev().find_map(|c| match &c.kind {
                                    CtxKind::Owner(name) => Some(name.clone()),
                                    CtxKind::Body(_) => None,
                                });
                                fns.push(FnDef {
                                    name: p.name,
                                    owner,
                                    file,
                                    line: p.line,
                                    body: (li + 1, li + 1),
                                    calls: Vec::new(),
                                });
                                ctxs.push(Ctx {
                                    depth,
                                    kind: CtxKind::Body(fns.len() - 1),
                                });
                            }
                        }
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    while ctxs.last().is_some_and(|c| c.depth == depth) {
                        if let Some(Ctx {
                            kind: CtxKind::Body(idx),
                            ..
                        }) = ctxs.pop()
                        {
                            fns[idx].body.1 = li + 1;
                        }
                    }
                }
                b'(' => {
                    if let Some(p) = pending.as_mut() {
                        p.paren += 1;
                    }
                }
                b')' => {
                    if let Some(p) = pending.as_mut() {
                        p.paren -= 1;
                    }
                }
                b'[' => {
                    if let Some(p) = pending.as_mut() {
                        p.bracket += 1;
                    }
                }
                b']' => {
                    if let Some(p) = pending.as_mut() {
                        p.bracket -= 1;
                    }
                }
                b';' => {
                    if pending
                        .as_ref()
                        .is_some_and(|p| p.paren <= 0 && p.bracket <= 0)
                    {
                        pending = None; // bodiless trait declaration
                    }
                }
                _ => {
                    if let Mode::ImplHeader(text) | Mode::TraitHeader(text) = &mut mode {
                        if !c.is_ascii_whitespace() {
                            text.push(c as char);
                        } else if !text.ends_with(' ') {
                            text.push(' ');
                        }
                    }
                }
            }
            i += 1;
        }
        // Header text spanning lines keeps a separator.
        if let Mode::ImplHeader(text) | Mode::TraitHeader(text) = &mut mode {
            if !text.ends_with(' ') {
                text.push(' ');
            }
        }
    }
}

/// Index into `fns` of the innermost enclosing function body.
fn innermost_body(ctxs: &[Ctx]) -> Option<usize> {
    ctxs.iter().rev().find_map(|c| match c.kind {
        CtxKind::Body(idx) => Some(idx),
        CtxKind::Owner(_) => None,
    })
}

/// Extracts the owning type name from an `impl`/`trait` header's
/// collected text: generics are skipped, `impl Trait for Type` takes
/// the type after `for`, a path takes its last segment, and trailing
/// generic arguments are cut.
fn owner_from_header(text: &str) -> String {
    let text = text.trim();
    // Strip leading generic parameter list (`<M : Default>`).
    let text = if let Some(rest) = text.strip_prefix('<') {
        let mut angle = 1i64;
        let mut cut = rest.len();
        for (k, ch) in rest.char_indices() {
            match ch {
                '<' => angle += 1,
                '>' => {
                    angle -= 1;
                    if angle == 0 {
                        cut = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest[cut..].trim()
    } else {
        text
    };
    // `impl Trait for Type` — the implementing type is the owner.
    let text = text
        .split(" for ")
        .nth(1)
        .map_or(text, str::trim)
        .trim_start_matches('&')
        .trim_start_matches("mut ");
    // Cut at whitespace (a `where` clause) or generics.
    let head = text
        .split(|c: char| c.is_whitespace() || c == '<')
        .next()
        .unwrap_or("");
    // Last path segment.
    head.rsplit("::").next().unwrap_or(head).to_owned()
}

/// Classifies how a call at byte `start` of `line` is qualified, by
/// looking at what precedes the identifier.
fn classify_qual(line: &str, start: usize) -> Qual {
    let bytes = line.as_bytes();
    if start == 0 {
        return Qual::Free;
    }
    if bytes[start - 1] == b'.' {
        // Read the receiver segment before the dot: an identifier is
        // a hint, `self` directly is the caller's own type, anything
        // else (a call chain, an index) reveals nothing.
        let mut s = start - 1;
        while s > 0 && is_ident_byte(bytes[s - 1]) {
            s -= 1;
        }
        let seg = &line[s..start - 1];
        let recv = if seg == "self" && (s == 0 || bytes[s - 1] != b'.') {
            Receiver::SelfDirect
        } else if seg.len() >= 3 && seg.as_bytes()[0].is_ascii_lowercase() {
            Receiver::Hint(seg.to_owned())
        } else {
            Receiver::Unknown
        };
        return Qual::Method(recv);
    }
    if start >= 2 && &line[start - 2..start] == "::" {
        // Walk the qualifying segment backwards.
        let mut k = start - 2;
        // A closing `>` right before `::` is a generic argument list
        // (`Vec<u8>::new`); skip it to reach the type name.
        if k > 0 && bytes[k - 1] == b'>' {
            let mut angle = 0i64;
            while k > 0 {
                k -= 1;
                match bytes[k] {
                    b'>' => angle += 1,
                    b'<' => {
                        angle -= 1;
                        if angle == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        let end = k;
        let mut s = end;
        while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
            s -= 1;
        }
        let seg = &line[s..end];
        if seg.is_empty() {
            return Qual::Free;
        }
        if seg.as_bytes()[0].is_ascii_uppercase() {
            return Qual::Type(seg.to_owned());
        }
        return Qual::Module(seg.to_owned());
    }
    Qual::Free
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let mut w = Workspace::new();
        for (path, source) in files {
            let scrubbed = crate::lexer::scrub(source);
            let mask = crate::test_line_mask(&scrubbed.lines, crate::test_context_path(path));
            w.add_file(path, &scrubbed.lines, &mask);
        }
        w
    }

    #[test]
    fn free_fns_and_bodies_are_indexed() {
        let w = ws(&[(
            "crates/x/src/lib.rs",
            "pub fn outer(n: u64) -> u64 {\n    inner(n) + 1\n}\n\nfn inner(n: u64) -> u64 {\n    n\n}\n",
        )]);
        assert_eq!(w.fns.len(), 2);
        assert_eq!(w.fns[0].name, "outer");
        assert_eq!(w.fns[0].body, (1, 3));
        assert_eq!(w.fns[0].calls.len(), 1);
        assert_eq!(w.fns[0].calls[0].name, "inner");
        assert_eq!(w.fns[0].calls[0].qual, Qual::Free);
        assert_eq!(w.fns[1].body, (5, 7));
    }

    #[test]
    fn impl_and_trait_owners_are_attached() {
        let src = "struct Kernel;\n\
                   impl Kernel {\n    pub fn fill_at(&mut self) { self.evict() }\n    fn evict(&mut self) {}\n}\n\
                   trait Policy {\n    fn victim(&self) -> usize {\n        0\n    }\n}\n\
                   impl<T: Clone> Policy for Vec<T> {\n    fn victim(&self) -> usize { 1 }\n}\n";
        let w = ws(&[("crates/x/src/lib.rs", src)]);
        let names: Vec<(&str, Option<&str>)> = w
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            [
                ("fill_at", Some("Kernel")),
                ("evict", Some("Kernel")),
                ("victim", Some("Policy")),
                ("victim", Some("Vec")),
            ]
        );
        // Bodiless trait declarations are not definitions.
        let decl = "trait T {\n    fn no_body(&self) -> [u8; 4];\n    fn with_body(&self) {}\n}\n";
        let w = ws(&[("crates/x/src/lib.rs", decl)]);
        assert_eq!(w.fns.len(), 1);
        assert_eq!(w.fns[0].name, "with_body");
    }

    #[test]
    fn call_qualifiers_classify() {
        let src = "fn driver(v: &[u64]) {\n\
                   \x20   helper();\n\
                   \x20   v.scan_row(3);\n\
                   \x20   Kernel::fill_at(1);\n\
                   \x20   pool::take_u64(2);\n\
                   \x20   P::victim(v);\n\
                   }\nfn helper() {}\n";
        let w = ws(&[("crates/x/src/lib.rs", src)]);
        let quals: Vec<(&str, &Qual)> = w.fns[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), &c.qual))
            .collect();
        assert_eq!(quals.len(), 5);
        assert_eq!(quals[0], ("helper", &Qual::Free));
        assert_eq!(quals[1], ("scan_row", &Qual::Method(Receiver::Unknown)));
        assert_eq!(quals[2], ("fill_at", &Qual::Type("Kernel".to_owned())));
        assert_eq!(quals[3], ("take_u64", &Qual::Module("pool".to_owned())));
        assert_eq!(quals[4], ("victim", &Qual::Type("P".to_owned())));
    }

    #[test]
    fn receiver_text_classifies() {
        let src = "impl K {\n    fn run(&mut self) {\n        self.own_step();\n        self.oracle.observe(1);\n        sink.miss(2);\n        make().chained(3);\n    }\n}\n";
        let w = ws(&[("crates/x/src/lib.rs", src)]);
        let qual_of = |name: &str| {
            &w.fns[0]
                .calls
                .iter()
                .find(|c| c.name == name)
                .expect(name)
                .qual
        };
        assert_eq!(qual_of("own_step"), &Qual::Method(Receiver::SelfDirect));
        assert_eq!(
            qual_of("observe"),
            &Qual::Method(Receiver::Hint("oracle".to_owned()))
        );
        assert_eq!(
            qual_of("miss"),
            &Qual::Method(Receiver::Hint("sink".to_owned()))
        );
        assert_eq!(qual_of("make"), &Qual::Free);
        assert_eq!(qual_of("chained"), &Qual::Method(Receiver::Unknown));
    }

    #[test]
    fn receiver_hints_narrow_method_resolution() {
        let src = "\
pub struct ShadowOracle;\n\
impl ShadowOracle {\n    pub fn observe(&mut self) {}\n}\n\
pub struct Harness;\n\
impl Harness {\n    pub fn access_block(&mut self) {\n        self.oracle.observe();\n    }\n}\n";
        let other = "pub struct System;\nimpl System {\n    pub fn observe(&mut self) {}\n}\n";
        let w = ws(&[
            ("crates/core/src/shadow.rs", src),
            ("crates/assist/src/lib.rs", other),
        ]);
        let adj = w.call_graph();
        let entry = w.fns.iter().position(|f| f.name == "access_block").unwrap();
        assert_eq!(adj[entry].len(), 1, "{adj:?}");
        assert_eq!(
            w.fns[adj[entry][0]].owner.as_deref(),
            Some("ShadowOracle"),
            "hint `oracle` must exclude the unrelated System::observe"
        );
    }

    #[test]
    fn ambient_method_names_do_not_edge() {
        // `.expect(..)` is std's Option::expect, not the parser's.
        let a = "pub fn fill_at(x: Option<u8>) {\n    x.expect(\"resident\");\n}\n";
        let b = "pub struct Parser;\nimpl Parser {\n    pub fn expect(&mut self, t: u8) {}\n}\n";
        let w = ws(&[("crates/x/src/lib.rs", a), ("crates/y/src/lib.rs", b)]);
        let adj = w.call_graph();
        assert!(adj[0].is_empty(), "{adj:?}");
        // But an explicit type qualification still resolves.
        let c = "pub fn fill_at(p: &mut Parser) {\n    Parser::expect(p, 1);\n}\n";
        let w = ws(&[("crates/x/src/lib.rs", c), ("crates/y/src/lib.rs", b)]);
        let adj = w.call_graph();
        assert_eq!(adj[0].len(), 1);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src =
            "fn f(n: usize) {\n    if n > 0 {\n        panic!(\"boom\");\n    }\n    while check(n) {}\n}\nfn check(_n: usize) -> bool { false }\n";
        let w = ws(&[("crates/x/src/lib.rs", src)]);
        let names: Vec<&str> = w.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["check"]);
    }

    #[test]
    fn test_regions_are_excluded() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn fake() { real() }\n}\n";
        let w = ws(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(w.fns.len(), 1);
        assert_eq!(w.fns[0].name, "real");
        let w = ws(&[("crates/x/tests/t.rs", "fn helper() {}\n")]);
        assert!(w.fns.is_empty());
    }

    #[test]
    fn cross_crate_method_edges_resolve() {
        let kernel = "pub struct Cache;\nimpl Cache {\n    pub fn probe_at(&mut self) -> bool {\n        self.scan()\n    }\n    fn scan(&self) -> bool { true }\n}\n";
        let driver = "pub fn access_parts(c: &mut Cache) {\n    c.probe_at();\n}\n";
        let w = ws(&[
            ("crates/cache/src/cache.rs", kernel),
            ("crates/core/src/classified.rs", driver),
        ]);
        let adj = w.call_graph();
        let access = w.fns.iter().position(|f| f.name == "access_parts").unwrap();
        let probe = w.fns.iter().position(|f| f.name == "probe_at").unwrap();
        let scan = w.fns.iter().position(|f| f.name == "scan").unwrap();
        assert!(adj[access].contains(&probe));
        assert!(adj[probe].contains(&scan));

        let parent = w.reach(&adj, |f| f.name == "access_parts", |_| false);
        assert!(parent[scan].is_some());
        let chain = w.chain(&parent, scan);
        assert_eq!(
            chain,
            [
                "access_parts (crates/core/src/classified.rs:1)",
                "probe_at (crates/cache/src/cache.rs:3)",
                "scan (crates/cache/src/cache.rs:6)",
            ]
        );
    }

    #[test]
    fn free_call_prefers_same_file_then_same_crate() {
        let a = "pub fn entry() { shared() }\nfn shared() {}\n";
        let b = "pub fn shared() {}\n";
        let w = ws(&[("crates/x/src/a.rs", a), ("crates/y/src/b.rs", b)]);
        let adj = w.call_graph();
        let entry = w.fns.iter().position(|f| f.name == "entry").unwrap();
        assert_eq!(adj[entry].len(), 1);
        assert_eq!(w.fns[adj[entry][0]].file, 0, "same-file def wins");
    }

    #[test]
    fn module_qualified_calls_prefer_matching_file() {
        let caller = "pub fn entry() { pool::take(1); }\n";
        let pool = "pub fn take(_n: usize) {}\n";
        let other = "pub fn take(_n: usize) {}\n";
        let w = ws(&[
            ("crates/x/src/lib.rs", caller),
            ("crates/cache/src/pool.rs", pool),
            ("crates/y/src/misc.rs", other),
        ]);
        let adj = w.call_graph();
        assert_eq!(adj[0].len(), 1);
        assert_eq!(w.files[w.fns[adj[0][0]].file], "crates/cache/src/pool.rs");
    }
}
