//! `simlint` — an offline static-analysis pass over the workspace's
//! own sources, enforcing the determinism and hot-path contracts the
//! runtime tests can only catch after the fact.
//!
//! The reproduction's headline guarantees — bit-identical figures at
//! any `--threads`, byte-identical `obs-repro/1` probe streams, an SoA
//! cache kernel proven equal to its reference model — rest on
//! conventions that are *statically visible* in the source: no
//! default-SipHash maps on output paths, no wall-clock reads in
//! simulation logic, no panics in the kernels, probes emitted through
//! the armed-check idiom, randomness only from seeded RNGs. This crate
//! checks those conventions at review time. It is self-contained (no
//! `syn`, no crates.io dependencies — the build containers are
//! offline; the sole dependency is the in-workspace, itself
//! dependency-free `sim-core`, for the canonical contract registry):
//! a hand-rolled lexer ([`lexer`]) scrubs comments and string
//! literals, a symbol-table pass ([`items`]) links the scrubbed files
//! into an approximate cross-crate call graph, and a rule engine
//! ([`rules`]) scans code text per file plus panic/allocation
//! reachability from the registered hot entry points over the graph.
//!
//! Run it with `cargo run -p simlint` (humans) or
//! `cargo run -p simlint -- --json` (CI; schema `lint-repro/2`). A
//! finding can be waived in place with a justified comment:
//!
//! ```text
//! // simlint: allow(transitive-panic) — ways 0..occ are resident by
//! // construction; no non-panicking fallback exists for arbitrary M.
//! .expect("resident way has meta");
//! ```
//!
//! A waiver covers its own line and the line after it, so it works
//! both trailing a statement and as the comment line above one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod items;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use rules::FileCtx;

/// The machine-readable schema identifier emitted by `--json`
/// (canonically defined in [`sim_core::registry`]).
pub const SCHEMA: &str = sim_core::registry::SCHEMA_LINT;

/// One diagnostic: a rule violated at a `file:line` anchor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (one of [`rules::RULE_NAMES`], or
    /// `waiver` for malformed waivers).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Call-path evidence for graph rules: the chain of
    /// `"name (file:line)"` entries from the hot entry point down to
    /// the function containing the finding. Empty for per-file rules.
    pub path: Vec<String>,
}

impl Finding {
    /// Creates a finding with no call-path evidence.
    #[must_use]
    pub fn new(rule: &'static str, file: &str, line: usize, message: String) -> Self {
        Finding {
            rule,
            file: file.to_owned(),
            line,
            message,
            path: Vec::new(),
        }
    }

    /// Attaches call-path evidence (graph rules).
    #[must_use]
    pub fn with_path(mut self, path: Vec<String>) -> Self {
        self.path = path;
        self
    }

    /// The human-readable diagnostic line. Graph findings append the
    /// call chain (function names only; the JSONL form keeps the full
    /// `file:line` anchors).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        );
        if !self.path.is_empty() {
            let names: Vec<&str> = self
                .path
                .iter()
                .map(|e| e.split(" (").next().unwrap_or(e))
                .collect();
            let _ = write!(out, "; call path: {}", names.join(" -> "));
        }
        out
    }
}

/// Everything one lint pass produced.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings that survived waivers, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by an inline waiver.
    pub waived: usize,
    /// Source files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when the tree is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable diagnostic listing (one line per
    /// finding plus a summary line).
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        let files: std::collections::BTreeSet<&str> =
            self.findings.iter().map(|f| f.file.as_str()).collect();
        let _ = writeln!(
            out,
            "simlint: {} finding{} across {} file{} ({} files scanned, {} waiver{} honored)",
            self.findings.len(),
            plural(self.findings.len()),
            files.len(),
            plural(files.len()),
            self.files_scanned,
            self.waived,
            plural(self.waived),
        );
        out
    }

    /// Renders the `lint-repro/2` JSONL document: a header object, one
    /// object per finding (with its call-path evidence array), and a
    /// trailing summary object. Parses with
    /// `experiments::jsonl::parse_lines` (golden-tested).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"schema\":{},\"rules\":[", json_string(SCHEMA));
        for (i, name) in rules::RULE_NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
        }
        let _ = writeln!(out, "],\"files_scanned\":{}}}", self.files_scanned);
        for f in &self.findings {
            let path: Vec<String> = f.path.iter().map(|e| json_string(e)).collect();
            let _ = writeln!(
                out,
                "{{\"type\":\"finding\",\"rule\":{},\"file\":{},\"line\":{},\"message\":{},\"path\":[{}]}}",
                json_string(f.rule),
                json_string(&f.file),
                f.line,
                json_string(&f.message),
                path.join(","),
            );
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"summary\",\"findings\":{},\"waived\":{},\"files_scanned\":{}}}",
            self.findings.len(),
            self.waived,
            self.files_scanned,
        );
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// A JSON string literal with the mandatory escapes (mirrors the
/// telemetry writer so all three schemas escape identically).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints one file's source text under a workspace-relative `path`
/// (rule applicability is path-driven, so fixtures can be checked *as
/// if* they lived on a hot path). The graph rules see a one-file
/// workspace, so a fixture defining its own hot entry point trips
/// them too.
#[must_use]
pub fn lint_source(path: &str, source: &str) -> (Vec<Finding>, usize) {
    let report = lint_files(&[(path.to_owned(), source.to_owned())]);
    (report.findings, report.waived)
}

/// Lints a set of `(workspace-relative path, source)` files as one
/// workspace: per-file rules on each file, the call-graph rules
/// (`transitive-panic`, `hot-path-alloc`) across all of them, and
/// in-place waivers applied to both kinds of finding.
#[must_use]
pub fn lint_files(files: &[(String, String)]) -> Report {
    struct FileData {
        path: String,
        scrubbed: lexer::Scrubbed,
        mask: Vec<bool>,
    }
    let data: Vec<FileData> = files
        .iter()
        .map(|(path, source)| {
            let scrubbed = lexer::scrub(source);
            let mask = test_line_mask(&scrubbed.lines, test_context_path(path));
            FileData {
                path: path.clone(),
                scrubbed,
                mask,
            }
        })
        .collect();

    let mut ws = items::Workspace::new();
    for d in &data {
        ws.add_file(&d.path, &d.scrubbed.lines, &d.mask);
    }
    let ctxs: Vec<FileCtx<'_>> = data
        .iter()
        .map(|d| FileCtx {
            path: &d.path,
            lines: &d.scrubbed.lines,
            test_mask: &d.mask,
            strings: &d.scrubbed.strings,
        })
        .collect();

    // Per-file findings, bucketed by file index so waivers (which are
    // per-file) can be applied uniformly to graph findings too.
    let mut buckets: Vec<Vec<Finding>> = ctxs.iter().map(rules::check_file).collect();
    for finding in rules::check_graph(&ws, &ctxs) {
        if let Some(idx) = data.iter().position(|d| d.path == finding.file) {
            buckets[idx].push(finding);
        }
    }

    let mut report = Report {
        files_scanned: data.len(),
        ..Report::default()
    };
    for (d, findings) in data.iter().zip(buckets) {
        let (kept, waived) = apply_waivers(&d.path, &d.scrubbed.comments, findings);
        report.findings.extend(kept);
        report.waived += waived;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Applies one file's in-place waivers to its findings. Waivers cover
/// their own line and the next. Unknown rule names are themselves
/// findings — a typoed waiver must not silently waive nothing. A
/// directive must *begin* the comment (doc comments and prose that
/// merely mention the syntax keep their `/`/`!` marker or leading
/// words and are ignored).
fn apply_waivers(
    path: &str,
    comments: &[(usize, String)],
    mut findings: Vec<Finding>,
) -> (Vec<Finding>, usize) {
    let mut waivers: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (line, text) in comments {
        let Some(directive) = text.trim_start().strip_prefix("simlint:") else {
            continue;
        };
        let directive = directive.trim_start();
        let Some(rest) = directive.strip_prefix("allow") else {
            findings.push(Finding::new(
                "waiver",
                path,
                *line,
                "malformed simlint directive; expected `simlint: allow(<rule>)`".to_owned(),
            ));
            continue;
        };
        let rest = rest.trim_start();
        let Some(list) = rest
            .strip_prefix('(')
            .and_then(|r| r.find(')').map(|end| &r[..end]))
        else {
            findings.push(Finding::new(
                "waiver",
                path,
                *line,
                "malformed simlint waiver; expected `simlint: allow(<rule>)`".to_owned(),
            ));
            continue;
        };
        for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            if rules::is_rule(name) {
                waivers.entry(*line).or_default().push(name.to_owned());
            } else {
                findings.push(Finding::new(
                    "waiver",
                    path,
                    *line,
                    format!("unknown rule `{name}` in simlint waiver"),
                ));
            }
        }
    }

    let mut waived = 0usize;
    findings.retain(|f| {
        let covered = [f.line, f.line.wrapping_sub(1)].iter().any(|l| {
            waivers
                .get(l)
                .is_some_and(|names| names.iter().any(|n| n == f.rule))
        });
        if covered {
            waived += 1;
        }
        !covered
    });
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    (findings, waived)
}

/// Whether a path is test/bench/example context in its entirety.
fn test_context_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
}

/// Marks the lines belonging to `#[cfg(test)]` / `#[test]` items.
///
/// Brace-depth tracking over scrubbed text: an attribute arms a
/// pending flag; the next `{` opens a region that closes when depth
/// returns. An intervening `;` at the same depth (the attribute was on
/// a braceless item) disarms it.
#[must_use]
pub fn test_line_mask(lines: &[String], whole_file: bool) -> Vec<bool> {
    if whole_file {
        return vec![true; lines.len()];
    }
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut regions: Vec<i64> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)") || trimmed.starts_with("#[test]") {
            pending = true;
        }
        let mut in_test = !regions.is_empty() || pending;
        for c in line.chars() {
            match c {
                '{' => {
                    if pending {
                        regions.push(depth);
                        pending = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if regions.last() == Some(&depth) {
                        regions.pop();
                        in_test = true;
                    }
                }
                ';' if pending && regions.is_empty() => pending = false,
                _ => {}
            }
        }
        mask[i] = in_test || !regions.is_empty();
    }
    mask
}

/// Collects the workspace's `.rs` sources under `root`, sorted, as
/// `(relative_path, absolute_path)` pairs.
///
/// Always skipped: `target/` (build products), `vendor/` (the offline
/// dependency stubs are third-party idiom, not ours), `.git/`, and any
/// `fixtures/` directory under a `tests/` directory — the lint's own
/// known-bad fixture files must not fail the workspace-wide pass.
///
/// # Errors
///
/// Returns an I/O error message if a directory cannot be read.
pub fn workspace_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut files = Vec::new();
    collect(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect(root: &Path, dir: &Path, files: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git") {
                continue;
            }
            if name == "fixtures" && dir.file_name().is_some_and(|parent| parent == "tests") {
                continue;
            }
            collect(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push((rel, path));
        }
    }
    Ok(())
}

/// Lints every workspace source under `root`.
///
/// # Errors
///
/// Returns an error message if the tree cannot be walked or a file
/// cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let files = workspace_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for (rel, abs) in files {
        let source = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        sources.push((rel, source));
    }
    Ok(lint_files(&sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_covers_same_and_next_line() {
        let trailing = "let m = HashMap::new(); // simlint: allow(default-hasher) — memo map\n";
        let (f, waived) = lint_source("crates/x/src/lib.rs", trailing);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(waived, 1);

        let leading = "// simlint: allow(default-hasher) — memo map\nlet m = HashMap::new();\n";
        let (f, waived) = lint_source("crates/x/src/lib.rs", leading);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(waived, 1);
    }

    #[test]
    fn waiver_does_not_reach_two_lines_down() {
        let src = "// simlint: allow(default-hasher)\nlet a = 1;\nlet m = HashMap::new();\n";
        let (f, waived) = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(waived, 0);
    }

    #[test]
    fn unknown_waiver_rule_is_a_finding() {
        let src = "// simlint: allow(no-such-rule)\nlet a = 1;\n";
        let (f, _) = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "waiver");
        assert!(f[0].message.contains("no-such-rule"));
    }

    #[test]
    fn malformed_waiver_is_a_finding() {
        let src = "// simlint: allow default-hasher\nlet a = 1;\n";
        let (f, _) = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "waiver");
    }

    #[test]
    fn waiver_must_name_the_right_rule() {
        let src = "let m = HashMap::new(); // simlint: allow(wallclock)\n";
        let (f, waived) = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1, "wrong-rule waiver must not suppress");
        assert_eq!(f[0].rule, "default-hasher");
        assert_eq!(waived, 0);
    }

    #[test]
    fn integration_test_files_are_test_context() {
        let src = "use std::collections::HashMap;\n";
        let (f, _) = lint_source("crates/x/tests/foo.rs", src);
        assert!(f.is_empty());
        let (f, _) = lint_source("tests/proptest_invariants.rs", src);
        assert!(f.is_empty());
    }

    #[test]
    fn json_report_shape() {
        let report = Report {
            findings: vec![Finding::new(
                "wallclock",
                "crates/x/src/lib.rs",
                7,
                "wall-clock \"quoted\"".to_owned(),
            )],
            waived: 2,
            files_scanned: 42,
        };
        let json = report.render_json();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"lint-repro/2\""));
        assert!(lines[1].contains("\"line\":7"));
        assert!(lines[1].contains("\\\"quoted\\\""));
        assert!(lines[1].contains("\"path\":[]"));
        assert!(lines[2].contains("\"findings\":1"));
    }

    #[test]
    fn json_report_carries_call_path_evidence() {
        let report = Report {
            findings: vec![Finding::new(
                "transitive-panic",
                "crates/x/src/lib.rs",
                9,
                "panicking call".to_owned(),
            )
            .with_path(vec![
                "access_block (crates/x/src/lib.rs:1)".to_owned(),
                "helper (crates/x/src/lib.rs:7)".to_owned(),
            ])],
            waived: 0,
            files_scanned: 1,
        };
        let json = report.render_json();
        let finding = json.lines().nth(1).unwrap();
        assert!(
            finding.contains(
                "\"path\":[\"access_block (crates/x/src/lib.rs:1)\",\"helper (crates/x/src/lib.rs:7)\"]"
            ),
            "{finding}"
        );
        let human = report.render_human();
        assert!(
            human.contains("call path: access_block -> helper"),
            "{human}"
        );
    }

    #[test]
    fn transitive_panic_walks_the_call_graph() {
        let src = "pub struct K;\nimpl K {\n    pub fn access_block(&mut self) {\n        self.step();\n    }\n    fn step(&mut self) {\n        helper();\n    }\n}\nfn helper() {\n    None::<u8>.unwrap();\n}\n";
        let (f, _) = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "transitive-panic");
        assert_eq!(f[0].line, 11);
        assert_eq!(f[0].path.len(), 3, "{:?}", f[0].path);
        assert!(f[0].path[0].starts_with("access_block "));
        assert!(f[0].message.contains("`access_block`"));
        // The same panic with no hot entry point upstream is clean.
        let cold = "fn driver() {\n    helper();\n}\nfn helper() {\n    None::<u8>.unwrap();\n}\n";
        let (f, _) = lint_source("crates/x/src/lib.rs", cold);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hot_path_alloc_flags_reachable_allocation_outside_pool() {
        let src = "pub fn fill_at(n: usize) -> Vec<u8> {\n    scratch(n)\n}\nfn scratch(n: usize) -> Vec<u8> {\n    Vec::with_capacity(n)\n}\n";
        let (f, _) = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-path-alloc");
        assert_eq!(f[0].line, 5);
        // The pool module is the sanctioned allocator.
        let (f, _) = lint_source("crates/cache/src/pool.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn graph_findings_are_waivable_in_place() {
        let src = "pub fn probe_at() {\n    // simlint: allow(transitive-panic) — impossible by construction\n    None::<u8>.unwrap();\n}\n";
        let (f, waived) = lint_source("crates/x/src/lib.rs", src);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(waived, 1);
    }

    #[test]
    fn waiver_on_the_last_line_of_a_file_still_applies() {
        // No trailing newline, waiver trailing the offending statement
        // on the file's final line: the own-line half of the coverage
        // window must still fire, and the absent next line must not
        // trip anything.
        let src = "fn f() -> u32 {\n    rand::thread_rng().gen() // simlint: allow(unseeded-rng) — fixture\n}";
        let (f, waived) = lint_source("crates/x/src/lib.rs", src);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(waived, 1);
    }

    #[test]
    fn human_report_shape() {
        let mut report = Report {
            files_scanned: 3,
            ..Report::default()
        };
        assert!(report.render_human().starts_with("simlint: 0 findings"));
        report.findings.push(Finding::new(
            "unseeded-rng",
            "crates/x/src/lib.rs",
            3,
            "msg".to_owned(),
        ));
        let text = report.render_human();
        assert!(text.starts_with("crates/x/src/lib.rs:3: [unseeded-rng] msg\n"));
        assert!(text.contains("1 finding across 1 file"));
    }
}
