//! The `simlint` command-line entry point.
//!
//! ```text
//! simlint [--json] [--root PATH]
//! ```
//!
//! Scans the workspace's Rust sources (skipping `vendor/`, `target/`,
//! and test fixtures) against the rule set in [`simlint::rules`].
//! Exits 0 on a clean tree, 1 when findings remain, 2 on usage or I/O
//! errors. `--json` emits the `lint-repro/2` JSONL document instead of
//! human diagnostics.

use std::path::PathBuf;
use std::process::ExitCode;

/// The usage text. Printed to stdout (exit 0) when help is asked for,
/// to stderr (exit 2) when the invocation was malformed.
fn usage_text() -> String {
    format!(
        "usage: simlint [--json] [--root PATH]\n\
         \n\
         --json        machine-readable output (schema {})\n\
         --root PATH   workspace root to scan (default: nearest ancestor\n\
         \u{20}             of the current directory with a [workspace] manifest)",
        simlint::SCHEMA,
    )
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

/// Whether a `Cargo.toml` manifest declares a `[workspace]` table.
///
/// Lexes the manifest line-wise instead of substring-matching the
/// whole text: a table header only counts when it *begins* its line
/// (TOML permits leading whitespace and a trailing comment, nothing
/// else), so `[workspace]` mentioned inside a comment or a string —
/// e.g. a crate description quoting this very tool — no longer makes
/// a member crate look like the root.
fn declares_workspace(manifest: &str) -> bool {
    manifest.lines().any(|line| {
        let line = line.trim_start();
        let Some(rest) = line.strip_prefix("[workspace]") else {
            return false;
        };
        let rest = rest.trim_start();
        rest.is_empty() || rest.starts_with('#')
    })
}

/// The nearest ancestor directory whose `Cargo.toml` declares a
/// `[workspace]` — where `cargo run -p simlint` leaves the working
/// directory, or wherever in the tree a human invokes it from.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if declares_workspace(&text) {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "-h" | "--help" => {
                println!("{}", usage_text());
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("simlint: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };

    match simlint::lint_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("simlint: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::declares_workspace;

    #[test]
    fn workspace_header_must_begin_a_line() {
        assert!(declares_workspace("[workspace]\nmembers = []\n"));
        assert!(declares_workspace("  [workspace]  # root\n"));
        assert!(declares_workspace(
            "[package]\nname = \"x\"\n\n[workspace]\n"
        ));
        // Mentions inside comments or strings are not declarations.
        assert!(!declares_workspace(
            "# the [workspace] table lives upstairs\n"
        ));
        assert!(!declares_workspace(
            "description = \"finds the [workspace] root\"\n"
        ));
        // A longer table name is not the workspace table.
        assert!(!declares_workspace("[workspace.metadata.x]\nkey = 1\n"));
    }
}
