//! The `simlint` command-line entry point.
//!
//! ```text
//! simlint [--json] [--root PATH]
//! ```
//!
//! Scans the workspace's Rust sources (skipping `vendor/`, `target/`,
//! and test fixtures) against the rule set in [`simlint::rules`].
//! Exits 0 on a clean tree, 1 when findings remain, 2 on usage or I/O
//! errors. `--json` emits the `lint-repro/1` JSONL document instead of
//! human diagnostics.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: simlint [--json] [--root PATH]\n\
         \n\
         --json        machine-readable output (schema lint-repro/1)\n\
         --root PATH   workspace root to scan (default: nearest ancestor\n\
         \u{20}             of the current directory with a [workspace] manifest)"
    );
    ExitCode::from(2)
}

/// The nearest ancestor directory whose `Cargo.toml` declares a
/// `[workspace]` — where `cargo run -p simlint` leaves the working
/// directory, or wherever in the tree a human invokes it from.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("simlint: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };

    match simlint::lint_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("simlint: {msg}");
            ExitCode::from(2)
        }
    }
}
