//! The rule catalog: per-file scans plus workspace graph rules.
//!
//! Per-file rules see a [`FileCtx`]: the scrubbed code lines of one
//! file (see [`crate::lexer`]), a per-line test-region mask, and the
//! file's workspace-relative path. They match token spellings with
//! identifier boundaries — deliberately shallower than a type-checked
//! analysis, which keeps the pass dependency-free and fast, at the
//! cost of being a *convention* checker: the conventions are chosen so
//! the textual form and the semantic property coincide in this
//! workspace.
//!
//! Graph rules ([`check_graph`]) additionally see the workspace
//! symbol table and approximate call graph from [`crate::items`]:
//! `transitive-panic` and `hot-path-alloc` flag panic/allocation
//! tokens in any function *reachable* from the registered hot entry
//! points ([`sim_core::registry::HOT_ENTRY_POINTS`]), attaching the
//! offending call chain as evidence. The registries themselves —
//! span-name prefixes, bench-group prefixes, schema identifiers —
//! come from [`sim_core::registry`], the single canonical definition
//! shared with the runtime checks; `registry-drift` closes the loop
//! by flagging any schema literal that disagrees with it.

use crate::items::Workspace;
use crate::Finding;

/// One file as the rules see it.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Scrubbed code lines (no comment or literal text).
    pub lines: &'a [String],
    /// `mask[i]` is true when line `i + 1` is test-only code
    /// (`#[cfg(test)]` / `#[test]` items, or a test/bench/example
    /// file).
    pub test_mask: &'a [bool],
    /// Every string literal's text with the 1-based line it starts on
    /// (see [`crate::lexer::Scrubbed::strings`]), for rules that
    /// inspect literal contents.
    pub strings: &'a [(usize, String)],
}

impl FileCtx<'_> {
    fn is_test_line(&self, idx: usize) -> bool {
        self.test_mask.get(idx).copied().unwrap_or(false)
    }
}

/// Every rule name, in the order diagnostics list them.
pub const RULE_NAMES: [&str; 10] = [
    "bench-prefix",
    "default-hasher",
    "hot-path-alloc",
    "probe-guard",
    "registry-drift",
    "span-name",
    "transitive-panic",
    "unseeded-rng",
    "waiver",
    "wallclock",
];

/// Whether `name` is a known rule (waivers may only name these).
#[must_use]
pub fn is_rule(name: &str) -> bool {
    RULE_NAMES.contains(&name)
}

/// Runs every per-file rule over one file, in deterministic order.
/// The graph rules run separately over the whole workspace (see
/// [`check_graph`]).
#[must_use]
pub fn check_file(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    default_hasher(ctx, &mut findings);
    wallclock(ctx, &mut findings);
    probe_guard(ctx, &mut findings);
    unseeded_rng(ctx, &mut findings);
    bench_prefix(ctx, &mut findings);
    span_name(ctx, &mut findings);
    registry_drift(ctx, &mut findings);
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    findings
}

/// Finds `word` as a whole identifier in `line` (not as a fragment of
/// a longer identifier like `FxHashMap` or `emit_slow`).
fn has_ident(line: &str, word: &str) -> bool {
    find_ident(line, word).is_some()
}

/// Byte offset of `word` as a whole identifier in `line`, if present.
fn find_ident(line: &str, word: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word).map(|p| p + from) {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let end = pos + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + 1;
    }
    None
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `default-hasher`: no `std` `HashMap`/`HashSet` with the default
/// SipHash hasher outside test code. Every crate here either feeds
/// figure/JSON output or sits on a hot path; both want
/// `sim_core::hash::FxHashMap` (speed, cross-run identity) or
/// `BTreeMap` (ordered iteration).
fn default_hasher(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for (i, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test_line(i) {
            continue;
        }
        // A line that names the replacement hasher is the definition
        // site or an explicit-hasher construction, not a violation.
        if line.contains("BuildHasherDefault") || line.contains("with_hasher") {
            continue;
        }
        for word in ["HashMap", "HashSet"] {
            if has_ident(line, word) {
                findings.push(Finding::new(
                    "default-hasher",
                    ctx.path,
                    i + 1,
                    format!(
                        "std {word} with the default SipHash hasher; use \
                         sim_core::hash::Fx{word} or an ordered BTree container"
                    ),
                ));
            }
        }
    }
}

/// Files where wall-clock access is sanctioned: the telemetry module
/// (the one place the harness times itself) and benchmark code.
fn wallclock_allowed(path: &str) -> bool {
    path == "crates/experiments/src/telemetry.rs"
        || path.starts_with("crates/bench/")
        || path.contains("/benches/")
}

/// `wallclock`: no `Instant` / `SystemTime` outside
/// `experiments::telemetry` and bench code. Simulation logic that
/// reads the host clock produces run-dependent output; simulated time
/// is `sim_core::cycle`, and harness timing goes through
/// `experiments::telemetry::Stopwatch`.
fn wallclock(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if wallclock_allowed(ctx.path) {
        return;
    }
    for (i, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test_line(i) {
            continue;
        }
        for word in ["Instant", "SystemTime", "UNIX_EPOCH"] {
            if has_ident(line, word) {
                findings.push(Finding::new(
                    "wallclock",
                    ctx.path,
                    i + 1,
                    format!(
                        "wall-clock access ({word}) outside experiments::telemetry \
                         and bench code; simulated time is sim_core::cycle, harness \
                         timing goes through telemetry::Stopwatch"
                    ),
                ));
            }
        }
    }
}

/// Panic-family tokens: any of these in a hot-reachable function
/// aborts a multi-hour sweep.
const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Heap-allocation tokens: any of these in a hot-reachable function
/// stalls the replay loop on the allocator. Scratch memory belongs in
/// `cache_model::pool`, which is the one exempt module.
const ALLOC_TOKENS: [&str; 6] = [
    "Vec::new",
    "Box::new",
    "with_capacity",
    "to_vec",
    "vec!",
    "format!",
];

/// The one module allowed to allocate on behalf of the hot path: the
/// recycling buffer pool amortizes its allocations across replays by
/// design.
const ALLOC_EXEMPT_FILE: &str = "crates/cache/src/pool.rs";

/// Whether `line` contains `token`, with boundary rules per token
/// shape: plain identifiers match whole-ident, `!`-suffixed macros and
/// `::`-qualified constructors check the identifier edge they expose.
fn has_token(line: &str, token: &str) -> bool {
    if let Some(macro_name) = token.strip_suffix('!') {
        return find_ident(line, macro_name)
            .is_some_and(|pos| line.as_bytes().get(pos + macro_name.len()) == Some(&b'!'));
    }
    if let Some((_, name)) = token.split_once("::") {
        let bytes = line.as_bytes();
        let mut from = 0;
        while let Some(pos) = line[from..].find(token).map(|p| p + from) {
            let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
            let end = pos + token.len();
            let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
            if before_ok && after_ok {
                return true;
            }
            from = pos + name.len().max(1);
        }
        return false;
    }
    if token.starts_with('.') {
        return line.contains(token);
    }
    has_ident(line, token)
}

/// The display spelling of a token in a diagnostic message.
fn token_label(token: &str) -> &str {
    token.trim_end_matches('(').trim_start_matches('.')
}

/// Runs the workspace graph rules: `transitive-panic` and
/// `hot-path-alloc`. `files[i]` must be the [`FileCtx`] of
/// `ws.files[i]` (same order the files were added).
///
/// Both rules BFS the approximate call graph from every definition
/// whose name is a registered hot entry point
/// ([`sim_core::registry::HOT_ENTRY_POINTS`]), never entering a
/// registered cold escape ([`sim_core::registry::COLD_FN_SUFFIXES`] —
/// guarded slow paths), then scan the body lines of each reached
/// function for the offending tokens. Every finding carries the
/// shortest call chain from the nearest entry point as its `path`
/// evidence.
#[must_use]
pub fn check_graph(ws: &Workspace, files: &[FileCtx<'_>]) -> Vec<Finding> {
    let adj = ws.call_graph();
    let parent = ws.reach(
        &adj,
        |f| sim_core::registry::hot_entry_point(&f.name),
        |f| sim_core::registry::cold_fn(&f.name),
    );
    let mut findings = Vec::new();
    for (idx, f) in ws.fns.iter().enumerate() {
        if parent[idx].is_none() {
            continue;
        }
        let Some(ctx) = files.get(f.file) else {
            continue;
        };
        let chain = ws.chain(&parent, idx);
        let root = chain
            .first()
            .and_then(|e| e.split(" (").next())
            .unwrap_or(&f.name)
            .to_owned();
        let exempt_alloc = ctx.path == ALLOC_EXEMPT_FILE;
        for li in f.body.0 - 1..f.body.1.min(ctx.lines.len()) {
            if ctx.is_test_line(li) {
                continue;
            }
            let line = &ctx.lines[li];
            for token in PANIC_TOKENS {
                if has_token(line, token) {
                    findings.push(
                        Finding::new(
                            "transitive-panic",
                            ctx.path,
                            li + 1,
                            format!(
                                "panicking call ({}) reachable from hot entry point \
                                 `{root}`; restructure to a total operation or waive \
                                 with a justification",
                                token_label(token),
                            ),
                        )
                        .with_path(chain.clone()),
                    );
                }
            }
            if exempt_alloc {
                continue;
            }
            for token in ALLOC_TOKENS {
                if has_token(line, token) {
                    findings.push(
                        Finding::new(
                            "hot-path-alloc",
                            ctx.path,
                            li + 1,
                            format!(
                                "heap allocation ({}) reachable from hot entry point \
                                 `{root}`; route scratch buffers through \
                                 cache_model::pool or hoist the allocation off the \
                                 replay path",
                                token_label(token),
                            ),
                        )
                        .with_path(chain.clone()),
                    );
                }
            }
        }
    }
    findings
}

/// `registry-drift`: every string literal spelling a machine-readable
/// schema identifier (`<family>-repro/<version>`) must match the
/// canonical identifier in [`sim_core::registry`]. A stale version
/// after a schema bump, or a new family never registered, both
/// surface here instead of in a downstream golden test. Test code is
/// exempt — deliberately wrong schemas are how parsers get negative
/// coverage.
fn registry_drift(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for (line, text) in ctx.strings {
        if ctx.is_test_line(line.saturating_sub(1)) {
            continue;
        }
        let bytes = text.as_bytes();
        let mut from = 0;
        while let Some(pos) = text[from..].find("-repro/").map(|p| p + from) {
            from = pos + "-repro/".len();
            // The family: the lowercase run immediately before the
            // marker, at an identifier boundary.
            let mut start = pos;
            while start > 0 && bytes[start - 1].is_ascii_lowercase() {
                start -= 1;
            }
            if start == pos || (start > 0 && is_ident_byte(bytes[start - 1])) {
                continue;
            }
            // The version: the digit run after the slash. A bare
            // `family-repro/` (a prefix check) has no version and
            // makes no canonicality claim.
            let vend = text[from..]
                .find(|c: char| !c.is_ascii_digit())
                .map_or(text.len(), |p| p + from);
            if vend == from {
                continue;
            }
            let family = &text[start..pos];
            let spelled = &text[start..vend];
            match sim_core::registry::canonical_schema(family) {
                Some(canon) if spelled == canon => {}
                Some(canon) => findings.push(Finding::new(
                    "registry-drift",
                    ctx.path,
                    *line,
                    format!(
                        "schema literal \"{spelled}\" is stale; the canonical \
                         {family} schema is \"{canon}\" (sim_core::registry)"
                    ),
                )),
                None => findings.push(Finding::new(
                    "registry-drift",
                    ctx.path,
                    *line,
                    format!(
                        "schema literal \"{spelled}\" names an unregistered family \
                         `{family}`; add it to sim_core::registry"
                    ),
                )),
            }
        }
    }
}

/// `probe-guard`: a `probe::emit` call either passes an inline
/// `ProbeEvent` literal (construction is trivially cheap; `emit`'s own
/// relaxed-load armed check suffices) or sits behind an explicit
/// `probe::active()` guard so no event-building work runs disarmed.
fn probe_guard(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    // The probe module itself defines `emit` and its internals.
    if ctx.path == "crates/sim-core/src/probe.rs" {
        return;
    }
    for (i, line) in ctx.lines.iter().enumerate() {
        let Some(pos) = find_ident(line, "emit") else {
            continue;
        };
        let after = line[pos + 4..].trim_start();
        if !after.starts_with('(') {
            continue; // `emit` in a path or definition, not a call
        }
        let arg = after[1..].trim_start();
        // An argument that begins on the next line is handled by
        // peeking one line down.
        let arg = if arg.is_empty() {
            ctx.lines.get(i + 1).map(|l| l.trim_start()).unwrap_or("")
        } else {
            arg
        };
        let literal = arg.starts_with("probe::ProbeEvent::") || arg.starts_with("ProbeEvent::");
        let guarded = ctx.lines[i.saturating_sub(6)..=i]
            .iter()
            .any(|l| l.contains("probe::active()") || has_ident(l, "active"));
        if !literal && !guarded {
            findings.push(Finding::new(
                "probe-guard",
                ctx.path,
                i + 1,
                "probe emit with a precomputed event and no probe::active() guard \
                 in sight; pass an inline ProbeEvent literal or guard the \
                 event-building work"
                    .to_owned(),
            ));
        }
    }
}

/// `unseeded-rng`: no ambient-entropy randomness anywhere (tests
/// included) — every random stream flows from seeded `sim_core` RNGs
/// so runs replay bit-identically.
fn unseeded_rng(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    const TOKENS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "random"];
    for (i, line) in ctx.lines.iter().enumerate() {
        for word in TOKENS {
            if !has_ident(line, word) {
                continue;
            }
            // `random` alone is too common a word; only the `rand`
            // crate's free function is the hazard.
            if word == "random" && !line.contains("rand::random") {
                continue;
            }
            findings.push(Finding::new(
                "unseeded-rng",
                ctx.path,
                i + 1,
                format!(
                    "ambient-entropy randomness ({word}); all randomness must flow \
                     from seeded sim_core RNGs (e.g. rng::SplitMix64)"
                ),
            ));
        }
    }
}

/// `bench-prefix`: every criterion `benchmark_group` in bench code is
/// named by a string literal carrying a layer prefix registered in
/// [`sim_core::registry::BENCH_GROUP_PREFIXES`] (ROADMAP item 5: the
/// prefix names the layer a group exercises, so bench reports and CI
/// deltas stay navigable as groups accumulate). Bench files are
/// whole-file test context, so this rule deliberately reads every
/// line instead of consulting the test mask.
fn bench_prefix(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx.path.contains("/benches/") {
        return;
    }
    for (i, line) in ctx.lines.iter().enumerate() {
        if !has_ident(line, "benchmark_group") {
            continue;
        }
        // The group name is the first string literal starting on the
        // call line, or the next when the argument wraps.
        let name = ctx
            .strings
            .iter()
            .find(|(l, _)| *l == i + 1 || *l == i + 2)
            .map(|(_, s)| s.as_str());
        let registered = name.is_some_and(sim_core::registry::bench_group_registered);
        if registered {
            continue;
        }
        let message = match name {
            Some(n) => format!(
                "criterion group name \"{n}\" lacks a registered layer prefix \
                 (kernel_/trace_/probe_/sched_/figure_/substrate/)"
            ),
            None => "criterion group name is not a string literal on the call line; \
                     name groups with a literal carrying a registered layer prefix \
                     (kernel_/trace_/probe_/sched_/figure_/substrate/)"
                .to_owned(),
        };
        findings.push(Finding::new("bench-prefix", ctx.path, i + 1, message));
    }
}

/// `span-name`: every `span::enter(` / `span::scope(` call site names
/// its span with a static string literal carrying a component prefix
/// registered in [`sim_core::registry::SPAN_NAME_PREFIXES`] — the
/// exact list `sim_core::span::name_registered` enforces at runtime —
/// because dynamic names would defeat the `obs phases` aggregation
/// and the trace-verification CI step. The name is the first string
/// literal on the call line or within the next two lines (rustfmt
/// wraps the argument list of long `scope` calls).
fn span_name(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    // The span module itself defines `enter` and `scope`.
    if ctx.path == "crates/sim-core/src/span.rs" {
        return;
    }
    for (i, line) in ctx.lines.iter().enumerate() {
        if !line.contains("span::enter(") && !line.contains("span::scope(") {
            continue;
        }
        let name = ctx
            .strings
            .iter()
            .find(|(l, _)| (i + 1..=i + 3).contains(l))
            .map(|(_, s)| s.as_str());
        let registered = name.is_some_and(sim_core::registry::span_name_registered);
        if registered {
            continue;
        }
        let message = match name {
            Some(n) => format!(
                "span name \"{n}\" lacks a registered component prefix \
                 (arena_/cell_/fault_/fig_/probe_/replay_/sched_/sweep_)"
            ),
            None => "span name is not a string literal at the call site; name spans \
                     with a static literal carrying a registered component prefix \
                     (arena_/cell_/fault_/fig_/probe_/replay_/sched_/sweep_)"
                .to_owned(),
        };
        findings.push(Finding::new("span-name", ctx.path, i + 1, message));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_findings(path: &str, source: &str) -> Vec<Finding> {
        let scrubbed = crate::lexer::scrub(source);
        let mask = crate::test_line_mask(&scrubbed.lines, false);
        check_file(&FileCtx {
            path,
            lines: &scrubbed.lines,
            test_mask: &mask,
            strings: &scrubbed.strings,
        })
    }

    #[test]
    fn ident_boundaries_hold() {
        assert!(has_ident("use std::collections::HashMap;", "HashMap"));
        assert!(!has_ident("let m: FxHashMap<u64, u64>;", "HashMap"));
        assert!(!has_ident("emit_slow(&ev)", "emit"));
    }

    #[test]
    fn default_hasher_allows_explicit_hashers() {
        let ok = "pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;";
        assert!(ctx_findings("crates/x/src/lib.rs", ok).is_empty());
        let bad = "let m = HashMap::new();";
        assert_eq!(ctx_findings("crates/x/src/lib.rs", bad).len(), 1);
    }

    #[test]
    fn wallclock_allows_telemetry_and_benches() {
        let src = "let t = Instant::now();";
        assert!(ctx_findings("crates/experiments/src/telemetry.rs", src).is_empty());
        assert!(ctx_findings("crates/bench/benches/substrate.rs", src).is_empty());
        assert_eq!(ctx_findings("crates/cpu/src/baseline.rs", src).len(), 1);
    }

    #[test]
    fn token_boundaries_hold() {
        // unwrap_or is total, not a panic site.
        assert!(has_token("v.pop().unwrap()", ".unwrap()"));
        assert!(!has_token("v.pop().unwrap_or(0)", ".unwrap()"));
        assert!(has_token("let v = vec![0; n];", "vec!"));
        assert!(!has_token("let v = my_vec(n);", "vec!"));
        assert!(has_token("let v = Vec::new();", "Vec::new"));
        assert!(!has_token("let v = SmallVec::newish();", "Vec::new"));
        assert!(has_token("buf.to_vec()", "to_vec"));
        assert!(!has_token("buf.to_vector()", "to_vec"));
        assert!(has_token("Vec::with_capacity(8)", "with_capacity"));
    }

    #[test]
    fn registry_drift_checks_schema_literals() {
        // Canonical spellings are clean.
        let ok = format!(
            "const S: &str = \"{}\";\nlet h = \"{}\";",
            sim_core::registry::SCHEMA_BENCH,
            sim_core::registry::SCHEMA_OBS,
        );
        assert!(ctx_findings("crates/x/src/lib.rs", &ok).is_empty());
        // A stale version is drift.
        let stale = "const S: &str = \"bench-repro/1\";";
        let f = ctx_findings("crates/x/src/lib.rs", stale);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "registry-drift");
        assert!(f[0].message.contains("stale"), "{}", f[0].message);
        // An unknown family is drift.
        let unknown = "let s = \"mystery-repro/1\";";
        let f = ctx_findings("crates/x/src/lib.rs", unknown);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unregistered"), "{}", f[0].message);
        // A schema embedded in a larger literal (a JSON header) is
        // still checked.
        let embedded = "let h = \"{\\\"schema\\\":\\\"obs-repro/9\\\"}\";";
        assert_eq!(ctx_findings("crates/x/src/lib.rs", embedded).len(), 1);
        // A versionless prefix check makes no canonicality claim.
        let prefix = "if s.starts_with(\"bench-repro/\") {}";
        assert!(ctx_findings("crates/x/src/lib.rs", prefix).is_empty());
        // Test code may spell wrong schemas deliberately.
        let test = "#[cfg(test)]\nmod tests {\n    const S: &str = \"bench-repro/1\";\n}";
        assert!(ctx_findings("crates/x/src/lib.rs", test).is_empty());
    }

    #[test]
    fn probe_guard_accepts_literals_and_guards() {
        let lit = "probe::emit(probe::ProbeEvent::Access { hit: true });";
        assert!(ctx_findings("crates/cpu/src/baseline.rs", lit).is_empty());
        let guarded = "if probe::active() {\n    probe::emit(ev);\n}";
        assert!(ctx_findings("crates/cpu/src/baseline.rs", guarded).is_empty());
        let bare = "probe::emit(ev);";
        assert_eq!(ctx_findings("crates/cpu/src/baseline.rs", bare).len(), 1);
    }

    #[test]
    fn rng_rule_applies_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let r = thread_rng(); }\n}";
        assert_eq!(ctx_findings("crates/x/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn bench_prefix_requires_registered_layer() {
        let ok = "let mut g = c.benchmark_group(\"substrate/cache_kernel\");";
        assert!(ctx_findings("crates/bench/benches/substrate.rs", ok).is_empty());
        let figure = "let mut g = c.benchmark_group(\"figure_drivers\");";
        assert!(ctx_findings("crates/bench/benches/figures.rs", figure).is_empty());
        let bad = "let mut g = c.benchmark_group(\"misc\");";
        assert_eq!(
            ctx_findings("crates/bench/benches/substrate.rs", bad).len(),
            1
        );
        // A computed name cannot be checked and is flagged too.
        let dynamic = "let mut g = c.benchmark_group(&name);";
        assert_eq!(
            ctx_findings("crates/bench/benches/substrate.rs", dynamic).len(),
            1
        );
        // Out of scope outside bench files.
        assert!(ctx_findings("crates/bench/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn bench_prefix_reads_wrapped_arguments() {
        let wrapped = "let mut g = c.benchmark_group(\n    \"substrate/pipeline\",\n);";
        assert!(ctx_findings("crates/bench/benches/substrate.rs", wrapped).is_empty());
        let wrapped_bad = "let mut g = c.benchmark_group(\n    \"misc\",\n);";
        assert_eq!(
            ctx_findings("crates/bench/benches/substrate.rs", wrapped_bad).len(),
            1
        );
    }

    #[test]
    fn span_name_requires_registered_literal() {
        let ok = "let _s = sim_core::span::enter(\"replay_block\");";
        assert!(ctx_findings("crates/x/src/lib.rs", ok).is_empty());
        let scope_ok = "span::scope(ScopeKind::Figure, \"fig_fig1\", \"fig1\", String::new, f);";
        assert!(ctx_findings("crates/x/src/lib.rs", scope_ok).is_empty());
        // rustfmt-wrapped scope call: the name literal lands two lines
        // down.
        let wrapped = "sim_core::span::scope(\n    ScopeKind::Sweep,\n    \"sweep_repro\",\n    \"repro\",\n);";
        assert!(ctx_findings("crates/x/src/lib.rs", wrapped).is_empty());
        let bad = "let _s = crate::span::enter(\"mystery_phase\");";
        let findings = ctx_findings("crates/x/src/lib.rs", bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("mystery_phase"));
        // A computed name cannot be checked and is flagged too.
        let dynamic = "let _s = sim_core::span::enter(name);";
        assert_eq!(ctx_findings("crates/x/src/lib.rs", dynamic).len(), 1);
        // The span module itself is the definition site.
        assert!(ctx_findings("crates/sim-core/src/span.rs", bad).is_empty());
    }

    #[test]
    fn test_regions_are_exempt_from_code_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}";
        assert!(ctx_findings("crates/x/src/lib.rs", src).is_empty());
    }
}
