//! A hand-rolled Rust surface lexer: comment/string scrubbing.
//!
//! `simlint` runs offline in containers with no crates.io access, so
//! it cannot lean on `syn` for a real parse. It does not need one: the
//! rules match *token spellings* (`HashMap`, `.unwrap()`,
//! `probe::emit`), and the only parsing problem that actually matters
//! is keeping those spellings inside comments, doc examples, and
//! string literals from producing false positives. [`scrub`] solves
//! exactly that: it replaces the contents of every comment and every
//! string/char literal with spaces while preserving line structure, so
//! the rule engine scans code-only text with accurate `file:line`
//! anchors. Comment text is kept separately so waivers
//! (`// simlint: allow(<rule>)`) can be recognized.

/// A source file with comments and literal contents blanked out.
#[derive(Debug, Clone)]
pub struct Scrubbed {
    /// The code text, line by line (1-based line `n` is `lines[n-1]`).
    /// Comments and string/char literal contents are spaces; all other
    /// characters are byte-for-byte the original source.
    pub lines: Vec<String>,
    /// Every comment's text, with the line it *starts* on. Block
    /// comments spanning lines appear once, newlines preserved.
    pub comments: Vec<(usize, String)>,
    /// Every string literal's text (escapes left as written), with the
    /// line it *starts* on. Rules that need to see inside a literal —
    /// e.g. `bench-prefix` checking criterion group names — read these
    /// instead of the blanked code lines.
    pub strings: Vec<(usize, String)>,
}

/// Lexer state while walking the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the depth rides along.
    BlockComment(u32),
    Str,
    /// Raw string with `n` `#` marks (`r##"…"##`).
    RawStr(u32),
}

/// Scrubs `source`, blanking comments and literal contents.
pub fn scrub(source: &str) -> Scrubbed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut lines = Vec::new();
    let mut comments = Vec::new();
    let mut comment_text = String::new();
    let mut comment_line = 0usize;
    let mut strings = Vec::new();
    let mut string_text = String::new();
    let mut string_line = 0usize;
    let mut line = 1usize;
    let mut state = State::Code;
    let mut i = 0usize;

    // Pushes `out`'s current contents as one finished line.
    fn flush_line(out: &mut String, lines: &mut Vec<String>) {
        lines.push(std::mem::take(out));
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    comment_line = line;
                    comment_text.clear();
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    comment_line = line;
                    comment_text.clear();
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    string_line = line;
                    string_text.clear();
                    out.push('"');
                    i += 1;
                }
                'r' | 'b' if !prev_is_ident(&chars, i) => {
                    // Possible raw/byte string prefix: r", r#", br", b".
                    let (consumed, hashes, is_str, is_raw) = literal_prefix(&chars, i);
                    if is_str {
                        for _ in 0..consumed {
                            out.push(' ');
                        }
                        out.push('"');
                        state = if is_raw {
                            State::RawStr(hashes)
                        } else {
                            State::Str
                        };
                        string_line = line;
                        string_text.clear();
                        i += consumed + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime. A char literal closes
                    // with `'` after one (possibly escaped) character;
                    // a lifetime is `'` + identifier with no closing
                    // quote.
                    if let Some(len) = char_literal_len(&chars, i) {
                        out.push('\'');
                        for _ in 0..len.saturating_sub(2) {
                            out.push(' ');
                        }
                        out.push('\'');
                        for &c in &chars[i..i + len] {
                            if c == '\n' {
                                line += 1;
                            }
                        }
                        i += len;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                '\n' => {
                    flush_line(&mut out, &mut lines);
                    line += 1;
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    comments.push((comment_line, std::mem::take(&mut comment_text)));
                    state = State::Code;
                    flush_line(&mut out, &mut lines);
                    line += 1;
                } else {
                    comment_text.push(c);
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        comments.push((comment_line, std::mem::take(&mut comment_text)));
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                        comment_text.push_str("*/");
                    }
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment_text.push_str("/*");
                    out.push_str("  ");
                    i += 2;
                } else {
                    if c == '\n' {
                        flush_line(&mut out, &mut lines);
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                    comment_text.push(c);
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    string_text.push('\\');
                    if let Some(n) = next {
                        string_text.push(n);
                    }
                    out.push_str("  ");
                    i += 2;
                    if next == Some('\n') {
                        // String continuation: the escaped newline.
                        out.pop();
                        out.pop();
                        out.push(' ');
                        flush_line(&mut out, &mut lines);
                        line += 1;
                    }
                }
                '"' => {
                    strings.push((string_line, std::mem::take(&mut string_text)));
                    state = State::Code;
                    out.push('"');
                    i += 1;
                }
                '\n' => {
                    string_text.push('\n');
                    flush_line(&mut out, &mut lines);
                    line += 1;
                    i += 1;
                }
                _ => {
                    string_text.push(c);
                    out.push(' ');
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    strings.push((string_line, std::mem::take(&mut string_text)));
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else if c == '\n' {
                    string_text.push('\n');
                    flush_line(&mut out, &mut lines);
                    line += 1;
                    i += 1;
                } else {
                    string_text.push(c);
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    match state {
        State::LineComment | State::BlockComment(_) => {
            comments.push((comment_line, comment_text));
        }
        State::Str | State::RawStr(_) => {
            strings.push((string_line, string_text));
        }
        State::Code => {}
    }
    lines.push(out);
    Scrubbed {
        lines,
        comments,
        strings,
    }
}

/// Whether `chars[i]`'s predecessor is an identifier character (so a
/// `r`/`b` at `i` is the tail of an identifier, not a literal prefix).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Detects a raw/byte string prefix starting at `i`.
///
/// Returns `(prefix_len, hashes, is_string, is_raw)` where
/// `prefix_len` counts the characters before the opening quote.
fn literal_prefix(chars: &[char], i: usize) -> (usize, u32, bool, bool) {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') && (raw || hashes == 0) {
        (j - i, hashes, true, raw)
    } else {
        (0, 0, false, false)
    }
}

/// Whether the `"` at `i` is followed by `hashes` `#` marks.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Length in chars of a char literal starting at the `'` at `i`, or
/// `None` if this quote starts a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped char: scan to the closing quote (handles \n, \',
            // \u{…}).
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            (chars.get(j) == Some(&'\'')).then_some(j - i + 1)
        }
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(source: &str) -> String {
        scrub(source).lines.join("\n")
    }

    #[test]
    fn line_comments_are_blanked_but_kept() {
        let s = scrub("let x = 1; // HashMap here\nlet y = 2;");
        assert!(!s.lines[0].contains("HashMap"));
        assert!(s.lines[0].contains("let x = 1;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0], (1, " HashMap here".to_owned()));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let text = "a /* one /* two */ still */ b\nc";
        let c = code(text);
        assert!(c.contains('a') && c.contains('b') && c.contains('c'));
        assert!(!c.contains("one") && !c.contains("still"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let c = code("let s = \"Instant::now() \\\" quoted\"; foo()");
        assert!(!c.contains("Instant"));
        assert!(c.contains("foo()"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let c = code("let s = r#\"thread_rng \" inner\"#; bar()");
        assert!(!c.contains("thread_rng"));
        assert!(c.contains("bar()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let c = code("fn f<'a>(x: &'a str) { m('\"'); n('\\n'); }");
        assert!(c.contains("fn f<'a>(x: &'a str)"));
        assert!(!c.contains('"'), "char contents blanked: {c}");
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let s = scrub("let s = \"a\nb\nc\";\nlet t = 1;");
        assert_eq!(s.lines.len(), 4);
        assert!(s.lines[3].contains("let t = 1;"));
    }

    #[test]
    fn string_literals_are_captured_with_lines() {
        let s = scrub("let a = \"kernel_fill\";\nlet b = r#\"raw \" text\"#;");
        assert_eq!(s.strings.len(), 2);
        assert_eq!(s.strings[0], (1, "kernel_fill".to_owned()));
        assert_eq!(s.strings[1], (2, "raw \" text".to_owned()));
    }

    #[test]
    fn doc_comment_examples_are_comments() {
        let s = scrub("/// let m = HashMap::new();\nfn f() {}");
        assert!(!s.lines[0].contains("HashMap"));
        assert_eq!(s.comments[0].0, 1);
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbering() {
        let s = scrub("let s = r##\"first\nInstant::now()\n\"# not the end\"##;\nafter();");
        assert_eq!(s.lines.len(), 4);
        assert!(!s.lines.join("\n").contains("Instant"), "{:?}", s.lines);
        assert!(s.lines[3].contains("after();"));
        // The captured literal spans all three source lines, anchored
        // to its opening line.
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].0, 1);
        assert!(s.strings[0].1.contains("\"# not the end"));
    }

    #[test]
    fn deeply_nested_block_comments_terminate() {
        let c = code("a /* 1 /* 2 /* 3 */ thread_rng */ 5 */ b\nc /* open /* still");
        assert!(c.contains('a') && c.contains('b') && c.contains('c'));
        assert!(!c.contains("thread_rng"));
        // An unterminated nested comment swallows the rest without
        // panicking or leaking its contents back into code.
        assert!(!c.contains("still"));
    }

    #[test]
    fn crlf_sources_scan_like_lf_sources() {
        let s = scrub("let a = 1;\r\nlet b = \"kernel_x\"; // note\r\nlet c = 2;\r\n");
        assert!(s.lines.len() >= 3, "{:?}", s.lines);
        assert!(s.lines[0].contains("let a = 1;"));
        assert!(s.lines[1].contains("let b ="));
        assert!(s.lines[2].contains("let c = 2;"));
        assert_eq!(s.strings[0], (2, "kernel_x".to_owned()));
        assert_eq!(s.comments[0].0, 2);
        assert!(s.comments[0].1.contains("note"));
    }

    #[test]
    fn crlf_line_comments_do_not_swallow_the_next_line() {
        // The carriage return must not keep the `//` comment open past
        // the newline: `thread_rng` on the next line is still code.
        let c = code("// header\r\nthread_rng();\r\n");
        assert!(c.contains("thread_rng"), "{c:?}");
    }
}
