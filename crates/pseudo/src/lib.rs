//! The pseudo-associative (column-associative) cache with
//! conflict-bit-guided replacement (paper §5.4).
//!
//! A pseudo-associative cache (Agarwal & Pudar) keeps direct-mapped
//! hit time for its primary location but gives every line a backup
//! location — the set with the highest index bit flipped. A hit in the
//! secondary location costs extra cycles and swaps the two lines so
//! the hot one becomes primary.
//!
//! The paper's modification: the MCT entry at each *physical* index
//! remembers the tag most recently evicted from that index, a new
//! line's **conflict bit** is set only if it matches the tag at its
//! primary location, and at replacement time a line holding a conflict
//! bit is protected — if exactly one of the two candidates has its bit
//! set, the other is evicted and the survivor's bit is cleared
//! (a temporary advantage). If both are set, normal LRU applies and
//! the kept line's bit is not cleared.
//!
//! # Examples
//!
//! ```
//! use pseudo_assoc::{PseudoAssocSystem, PseudoConfig, PseudoPolicy};
//! use cpu_model::{CpuConfig, OooModel};
//! use trace_gen::pattern::SetConflict;
//! use trace_gen::TraceSource;
//! use sim_core::Addr;
//!
//! // Two lines fighting over one set: the secondary location
//! // absorbs the conflict.
//! let trace: Vec<_> = SetConflict::new(Addr::new(0), 2, 16 * 1024, 1)
//!     .take_events(2_000)
//!     .collect();
//! let mut sys = PseudoAssocSystem::paper_default(PseudoConfig::new(PseudoPolicy::ConflictBit))?;
//! OooModel::new(CpuConfig::paper_default()).run(&mut sys, trace);
//! assert!(sys.stats().miss_rate() < 0.01);
//! # Ok::<(), cache_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cache_model::{CacheGeometry, ConfigError};
use cpu_model::{MemResponse, MemorySystem, Plumbing};
use mct::{MissClassificationTable, TagBits};
use sim_core::probe;
use sim_core::{Cycle, LineAddr};
use trace_gen::MemoryAccess;

/// Replacement policy for the pseudo-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PseudoPolicy {
    /// The base column-associative cache: LRU between the two
    /// candidate locations.
    Lru,
    /// The paper's modification: conflict-bit-protected replacement.
    ConflictBit,
}

impl std::fmt::Display for PseudoPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PseudoPolicy::Lru => f.write_str("base pseudo-associative"),
            PseudoPolicy::ConflictBit => f.write_str("MCT pseudo-associative"),
        }
    }
}

/// Configuration of a [`PseudoAssocSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PseudoConfig {
    /// The replacement policy.
    pub policy: PseudoPolicy,
    /// Extra cycles for a secondary-location hit (on top of the
    /// primary hit latency).
    pub secondary_extra: u64,
    /// MCT tag width.
    pub tag_bits: TagBits,
}

impl PseudoConfig {
    /// The paper's setup for a policy: 2 extra cycles for the
    /// secondary probe, full tags.
    #[must_use]
    pub const fn new(policy: PseudoPolicy) -> Self {
        PseudoConfig {
            policy,
            secondary_extra: 2,
            tag_bits: TagBits::Full,
        }
    }
}

/// Hit/miss breakdown for the pseudo-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PseudoStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits in the primary location (direct-mapped speed).
    pub primary_hits: u64,
    /// Hits in the secondary location (swap triggered).
    pub secondary_hits: u64,
    /// Misses.
    pub misses: u64,
}

impl PseudoStats {
    /// Overall miss rate (the §5.4 metric: 10.22% base vs 9.83%
    /// modified in the paper).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of hits served at direct-mapped speed.
    #[must_use]
    pub fn primary_fraction(&self) -> f64 {
        let hits = self.primary_hits + self.secondary_hits;
        if hits == 0 {
            0.0
        } else {
            self.primary_hits as f64 / hits as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    line: LineAddr,
    conflict_bit: bool,
    last_use: u64,
}

/// The pseudo-associative L1 over the shared miss path.
#[derive(Debug)]
pub struct PseudoAssocSystem {
    cfg: PseudoConfig,
    geom: CacheGeometry,
    slots: Vec<Option<Slot>>,
    table: MissClassificationTable,
    plumbing: Plumbing,
    clock: u64,
    stats: PseudoStats,
}

impl PseudoAssocSystem {
    /// Creates the system over an explicit (direct-mapped) geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not direct-mapped or has fewer than
    /// two sets (there would be no alternate location).
    #[must_use]
    pub fn new(cfg: PseudoConfig, geom: CacheGeometry, plumbing: Plumbing) -> Self {
        assert_eq!(
            geom.associativity(),
            1,
            "pseudo-associative caches are direct-mapped"
        );
        assert!(geom.num_sets() >= 2, "need an alternate location");
        PseudoAssocSystem {
            cfg,
            geom,
            slots: vec![None; geom.num_sets()],
            table: MissClassificationTable::new(geom.num_sets(), cfg.tag_bits),
            plumbing,
            clock: 0,
            stats: PseudoStats::default(),
        }
    }

    /// The paper's 16 KB direct-mapped L1 over the default miss path.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn paper_default(cfg: PseudoConfig) -> Result<Self, ConfigError> {
        Ok(Self::new(
            cfg,
            CacheGeometry::new(16 * 1024, 1, 64)?,
            Plumbing::paper_default()?,
        ))
    }

    /// The hit/miss breakdown.
    #[must_use]
    pub fn stats(&self) -> &PseudoStats {
        &self.stats
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PseudoConfig {
        &self.cfg
    }

    fn alt_index(&self, index: usize) -> usize {
        index ^ (self.geom.num_sets() / 2)
    }

    /// Whether a line is resident in either location (test hook).
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        let i = self.geom.set_index(line);
        let j = self.alt_index(i);
        [i, j]
            .iter()
            .any(|&k| self.slots[k].is_some_and(|s| s.line == line))
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Handles a miss for `line` with primary index `i`: picks a
    /// victim per policy, updates the MCT, installs the new line at
    /// its primary location.
    fn fill_after_miss(&mut self, line: LineAddr, i: usize) {
        let j = self.alt_index(i);
        let clock = self.tick();

        // §5.4: the conflict bit is set only if the new line matches
        // the tag remembered at its *primary* location.
        let incoming_bit = self.table.classify(i, self.geom.tag(line)).is_conflict();
        if incoming_bit && probe::active() {
            probe::emit(probe::ProbeEvent::ConflictBit {
                set: i as u32,
                set_bit: true,
            });
        }

        let new_slot = Slot {
            line,
            conflict_bit: incoming_bit,
            last_use: clock,
        };

        let (primary, secondary) = (self.slots[i], self.slots[j]);
        match (primary, secondary) {
            (None, _) => {
                self.slots[i] = Some(new_slot);
            }
            (Some(a), None) => {
                // Primary occupied, secondary free: displace the
                // occupant to the alternate location.
                self.slots[j] = Some(a);
                self.slots[i] = Some(new_slot);
            }
            (Some(a), Some(b)) => {
                // Choose a victim among the two candidates.
                let evict_primary = match self.cfg.policy {
                    PseudoPolicy::Lru => a.last_use <= b.last_use,
                    PseudoPolicy::ConflictBit => {
                        let choice = match (a.conflict_bit, b.conflict_bit) {
                            // Exactly one is protected: evict the other
                            // and clear the survivor's bit (temporary
                            // advantage).
                            (true, false) => {
                                self.slots[i].as_mut().expect("occupied").conflict_bit = false;
                                if probe::active() {
                                    probe::emit(probe::ProbeEvent::ConflictBit {
                                        set: i as u32,
                                        set_bit: false,
                                    });
                                }
                                Some(false)
                            }
                            (false, true) => {
                                self.slots[j].as_mut().expect("occupied").conflict_bit = false;
                                if probe::active() {
                                    probe::emit(probe::ProbeEvent::ConflictBit {
                                        set: j as u32,
                                        set_bit: false,
                                    });
                                }
                                Some(true)
                            }
                            // Both or neither: LRU, bits untouched.
                            _ => None,
                        };
                        probe::emit(probe::ProbeEvent::Filter {
                            unit: probe::FilterUnit::PseudoProtect,
                            fired: choice.is_some(),
                        });
                        choice.unwrap_or(a.last_use <= b.last_use)
                    }
                };
                if evict_primary {
                    // The line at index i leaves the cache.
                    self.table.record_eviction(i, self.geom.tag(a.line));
                    if a.conflict_bit && probe::active() {
                        probe::emit(probe::ProbeEvent::ConflictBit {
                            set: i as u32,
                            set_bit: false,
                        });
                    }
                    self.slots[i] = Some(new_slot);
                } else {
                    // The line at index j leaves; the old primary
                    // moves to the alternate location.
                    self.table.record_eviction(j, self.geom.tag(b.line));
                    if b.conflict_bit && probe::active() {
                        probe::emit(probe::ProbeEvent::ConflictBit {
                            set: j as u32,
                            set_bit: false,
                        });
                    }
                    self.slots[j] = self.slots[i];
                    self.slots[i] = Some(new_slot);
                }
            }
        }
    }
}

impl MemorySystem for PseudoAssocSystem {
    fn access(&mut self, access: MemoryAccess, now: Cycle) -> MemResponse {
        let line = access.addr.line(self.geom.line_size());
        let i = self.geom.set_index(line);
        let j = self.alt_index(i);
        self.stats.accesses += 1;

        let grant = self.plumbing.l1_grant(line, now);
        let primary_done = grant + self.plumbing.timings().l1_latency;
        let clock = self.tick();

        if let Some(slot) = self.slots[i].as_mut() {
            if slot.line == line {
                slot.last_use = clock;
                self.stats.primary_hits += 1;
                probe::emit(probe::ProbeEvent::Access { hit: true });
                return MemResponse::at(primary_done);
            }
        }
        if self.slots[j].is_some_and(|s| s.line == line) {
            // Secondary hit: serve slower and swap the two locations
            // so the hot line becomes primary.
            self.stats.secondary_hits += 1;
            probe::emit(probe::ProbeEvent::Access { hit: true });
            let ready = primary_done + self.cfg.secondary_extra;
            self.plumbing.l1_occupy(line, ready, 2);
            self.slots.swap(i, j);
            if let Some(slot) = self.slots[i].as_mut() {
                slot.last_use = clock;
            }
            return MemResponse::at(ready);
        }

        // Miss.
        self.stats.misses += 1;
        probe::emit(probe::ProbeEvent::Access { hit: false });
        let ready = self.plumbing.fetch_demand(line, grant);
        self.fill_after_miss(line, i);
        MemResponse::at(ready)
    }

    fn label(&self) -> String {
        self.cfg.policy.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_model::{BaselineSystem, CpuConfig, OooModel};
    use sim_core::Addr;
    use trace_gen::pattern::{SequentialSweep, SetConflict};
    use trace_gen::{TraceEvent, TraceSource};

    const CACHE: u64 = 16 * 1024;

    fn run(
        policy: PseudoPolicy,
        trace: Vec<TraceEvent>,
    ) -> (PseudoAssocSystem, cpu_model::CpuReport) {
        let mut sys = PseudoAssocSystem::paper_default(PseudoConfig::new(policy)).unwrap();
        let cpu = OooModel::new(CpuConfig::paper_default());
        let report = cpu.run(&mut sys, trace);
        (sys, report)
    }

    #[test]
    fn ping_pong_pair_coexists() {
        // Two lines sharing a primary set: one settles in the
        // secondary location, both hit after warmup.
        let trace: Vec<_> = SetConflict::new(Addr::new(0), 2, CACHE, 1)
            .with_work(4)
            .take_events(2_000)
            .collect();
        let (sys, _) = run(PseudoPolicy::Lru, trace);
        assert!(
            sys.stats().miss_rate() < 0.01,
            "miss rate {}",
            sys.stats().miss_rate()
        );
        // Swapping on secondary hits means both lines keep bouncing
        // between the locations — but they never leave the cache.
        assert!(sys.stats().secondary_hits > 0);
    }

    #[test]
    fn secondary_hit_promotes_to_primary() {
        let mut sys =
            PseudoAssocSystem::paper_default(PseudoConfig::new(PseudoPolicy::Lru)).unwrap();
        let pc = Addr::new(0);
        let a = Addr::new(0);
        let b = Addr::new(CACHE);
        let mut t = Cycle::ZERO;
        t = sys.access(MemoryAccess::load(a, pc), t).ready; // A primary
        t = sys.access(MemoryAccess::load(b, pc), t).ready; // B primary, A secondary
                                                            // Hit A in its secondary location: swap back.
        t = sys.access(MemoryAccess::load(a, pc), t).ready;
        assert_eq!(sys.stats().secondary_hits, 1);
        // Now A is primary again: next access is a primary hit.
        sys.access(MemoryAccess::load(a, pc), t);
        assert_eq!(sys.stats().primary_hits, 1);
    }

    #[test]
    fn streaming_misses_like_direct_mapped() {
        // Pure capacity traffic: pseudo-associativity cannot help.
        let trace: Vec<_> = SequentialSweep::new(Addr::new(0), 1 << 20, 64)
            .with_work(4)
            .take_events(4_000)
            .collect();
        let (sys, _) = run(PseudoPolicy::Lru, trace);
        assert!(sys.stats().miss_rate() > 0.95);
    }

    #[test]
    fn conflict_bit_policy_protects_conflict_lines() {
        // The §5.4 mechanism, step by step. Lines A, B, S share
        // primary set 0; D's primary set is the alternate (128).
        let a = Addr::new(0);
        let b = Addr::new(CACHE);
        let s = Addr::new(1 << 30); // set 0 as well
        let d = Addr::new(128 * 64); // primary set 128
        let pc = Addr::new(0);
        let sequence = [a, d, b, a, b, s, a];
        // 1. A fills primary 0.          2. D fills primary 128.
        // 3. B misses; A (older) is evicted FROM ITS PRIMARY slot,
        //    so the MCT entry 0 remembers A.
        // 4. A misses and matches MCT[0]: A's conflict bit is SET.
        // 5. B hits in its secondary slot and swaps to primary.
        // 6. S misses. Candidates: B (primary, recent, bit clear) and
        //    A (secondary, older, bit SET). Plain LRU evicts A; the
        //    conflict-bit policy protects A and evicts B instead.
        // 7. A: hit under the modified policy, miss under LRU.
        let run_seq = |policy| {
            let mut sys = PseudoAssocSystem::paper_default(PseudoConfig::new(policy)).unwrap();
            let mut t = Cycle::ZERO;
            for addr in sequence {
                t = sys.access(MemoryAccess::load(addr, pc), t).ready;
            }
            sys
        };
        let base = run_seq(PseudoPolicy::Lru);
        let modified = run_seq(PseudoPolicy::ConflictBit);
        assert!(modified.contains(a.line(64)), "modified policy must keep A");
        assert_eq!(modified.stats().misses + 1, base.stats().misses);
        assert_eq!(
            modified.stats().primary_hits + modified.stats().secondary_hits,
            base.stats().primary_hits + base.stats().secondary_hits + 1
        );
    }

    #[test]
    fn tracks_two_way_cache_closely() {
        // §5.4: the modified pseudo-associative cache ran only 0.9%
        // slower than a true 2-way cache. Check the miss-rate gap is
        // small on conflict-plus-stream traffic.
        let mut pair = SetConflict::new(Addr::new(64), 2, CACHE, 2).with_work(4);
        let mut stream = SequentialSweep::new(Addr::new(1 << 30), 1 << 20, 64).with_work(4);
        let trace: Vec<_> = (0..12_000)
            .map(|k| {
                if k % 3 == 2 {
                    stream.next_event()
                } else {
                    pair.next_event()
                }
            })
            .collect();
        let (modified, _) = run(PseudoPolicy::ConflictBit, trace.clone());
        let cpu = OooModel::new(CpuConfig::paper_default());
        let mut two_way = BaselineSystem::paper_two_way().unwrap();
        cpu.run(&mut two_way, trace);
        let two_way_miss = two_way.l1_stats().miss_rate();
        assert!(
            modified.stats().miss_rate() < two_way_miss + 0.05,
            "modified {} vs 2-way {}",
            modified.stats().miss_rate(),
            two_way_miss
        );
    }

    #[test]
    fn slots_never_hold_duplicate_lines() {
        let mut sys =
            PseudoAssocSystem::paper_default(PseudoConfig::new(PseudoPolicy::ConflictBit)).unwrap();
        let pc = Addr::new(0);
        let mut rng = sim_core::rng::SplitMix64::new(3);
        let mut t = Cycle::ZERO;
        for _ in 0..20_000 {
            // Hammer 6 lines over 2 set pairs.
            let line = rng.next_below(6);
            let addr = Addr::new(line * CACHE / 2);
            t = sys.access(MemoryAccess::load(addr, pc), t).ready;
        }
        let mut resident: Vec<u64> = sys.slots.iter().flatten().map(|s| s.line.raw()).collect();
        let before = resident.len();
        resident.sort_unstable();
        resident.dedup();
        assert_eq!(resident.len(), before, "duplicate resident lines");
    }

    #[test]
    #[should_panic(expected = "direct-mapped")]
    fn rejects_associative_geometry() {
        let geom = CacheGeometry::new(16 * 1024, 2, 64).unwrap();
        let _ = PseudoAssocSystem::new(
            PseudoConfig::new(PseudoPolicy::Lru),
            geom,
            Plumbing::paper_default().unwrap(),
        );
    }
}
