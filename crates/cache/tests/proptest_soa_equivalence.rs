//! Differential property tests: the flat SoA kernel behind
//! [`SetAssocCache`] must match the original per-set `Vec<Way>`
//! implementation ([`RefSetAssocCache`]) decision-for-decision —
//! hits and misses, evicted lines and their metadata, victim choice
//! under every replacement policy, occupancy, and iteration order —
//! on arbitrary geometries and access sequences.

use cache_model::reference::RefSetAssocCache;
use cache_model::{CacheGeometry, Replacement, SetAssocCache};
use proptest::prelude::*;
use sim_core::LineAddr;

/// A small universe of line addresses guarantees set conflicts and
/// repeated touches at every generated geometry.
const LINE_UNIVERSE: u64 = 64;

fn policy_from(index: u8) -> Replacement {
    [Replacement::Lru, Replacement::Fifo, Replacement::Random][index as usize % 3]
}

fn geometry_from(sets_log: u32, assoc_log: u32) -> CacheGeometry {
    let assoc = 1u32 << assoc_log;
    let sets = 1u64 << sets_log;
    CacheGeometry::new(sets * u64::from(assoc) * 64, assoc, 64).expect("power-of-two geometry")
}

proptest! {
    /// Drive the SoA kernel and the reference cache through an
    /// identical op sequence and insist on identical observable
    /// behaviour at every step.
    #[test]
    fn soa_kernel_matches_vec_of_ways_reference(
        sets_log in 0u32..5,
        assoc_log in 0u32..4,
        policy_index in 0u8..3,
        ops in prop::collection::vec((0u8..8, 0u64..LINE_UNIVERSE), 1..300)
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let policy = policy_from(policy_index);
        let mut soa: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let mut reference: RefSetAssocCache<u32> = RefSetAssocCache::with_replacement(geom, policy);
        let mut fill_seq = 0u32;

        for (op, raw) in ops {
            let line = LineAddr::new(raw);
            match op {
                // Access: probe both; on a shared miss, compare the
                // predicted victim, then fill with a unique meta and
                // compare the actual eviction.
                0..=4 => {
                    let hit_soa = soa.probe(line).map(|m| *m);
                    let hit_ref = reference.probe(line).map(|m| *m);
                    prop_assert_eq!(hit_soa, hit_ref, "probe {} disagrees", line);
                    if hit_soa.is_none() {
                        prop_assert_eq!(
                            soa.eviction_candidate(line),
                            reference.eviction_candidate(line),
                            "victim prediction for {} disagrees", line
                        );
                        fill_seq += 1;
                        let ev_soa = soa.fill(line, fill_seq).map(|e| (e.line, e.meta));
                        let ev_ref = reference.fill(line, fill_seq).map(|e| (e.line, e.meta));
                        prop_assert_eq!(ev_soa, ev_ref, "fill {} evicted differently", line);
                    }
                }
                // Invalidate: removed metadata must agree.
                5 => {
                    prop_assert_eq!(soa.invalidate(line), reference.invalidate(line));
                }
                // Pure lookups.
                6 => {
                    prop_assert_eq!(soa.peek(line).copied(), reference.peek(line).copied());
                }
                _ => {
                    prop_assert_eq!(soa.contains(line), reference.contains(line));
                }
            }
            prop_assert_eq!(soa.len(), reference.len());
            prop_assert_eq!(soa.is_empty(), reference.is_empty());
        }

        // Counters and full residency (including way order) must agree
        // at the end of the sequence.
        prop_assert_eq!(*soa.stats(), *reference.stats());
        let contents_soa: Vec<(LineAddr, u32)> = soa.iter().map(|(l, m)| (l, *m)).collect();
        let contents_ref: Vec<(LineAddr, u32)> = reference.iter().map(|(l, m)| (l, *m)).collect();
        prop_assert_eq!(contents_soa, contents_ref);
    }

    /// The decomposed entry points (`probe_at` / `peek_at` /
    /// `fill_at`) must behave exactly like their whole-line
    /// counterparts fed `line_from_parts`-equivalent addresses.
    #[test]
    fn decomposed_entry_points_match_whole_line_api(
        sets_log in 0u32..4,
        assoc_log in 0u32..3,
        policy_index in 0u8..3,
        ops in prop::collection::vec(0u64..LINE_UNIVERSE, 1..200)
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let policy = policy_from(policy_index);
        let mut whole: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let mut parts: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let mut fill_seq = 0u32;

        for raw in ops {
            let line = LineAddr::new(raw);
            let (set, tag) = (geom.set_index(line), geom.tag(line));
            let hit_whole = whole.probe(line).map(|m| *m);
            let hit_parts = parts.probe_at(set, tag).map(|m| *m);
            prop_assert_eq!(hit_whole, hit_parts, "probe {} disagrees", line);
            prop_assert_eq!(whole.peek(line).copied(), parts.peek_at(set, tag).copied());
            if hit_whole.is_none() {
                fill_seq += 1;
                let ev_whole = whole.fill(line, fill_seq).map(|e| (e.line, e.meta));
                let ev_parts = parts.fill_at(set, tag, fill_seq).map(|e| (e.line, e.meta));
                prop_assert_eq!(ev_whole, ev_parts, "fill {} evicted differently", line);
            }
            prop_assert_eq!(whole.len(), parts.len());
        }
        prop_assert_eq!(*whole.stats(), *parts.stats());
    }
}
