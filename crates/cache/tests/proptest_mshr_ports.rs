//! Property tests for the MSHR file and port arbiters.

use cache_model::{BankedPorts, MshrFile, MshrOutcome};
use proptest::prelude::*;
use sim_core::{Cycle, LineAddr};

proptest! {
    /// The MSHR file never tracks more entries than its capacity, and
    /// coalesced requests always return the original completion time.
    #[test]
    fn mshr_capacity_and_coalescing(
        ops in prop::collection::vec((0u64..16, 0u64..50, 1u64..200), 1..200)
    ) {
        let mut mshrs = MshrFile::new(4);
        let mut now = Cycle::ZERO;
        let mut inflight: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for (line, advance, latency) in ops {
            now += advance;
            inflight.retain(|_, ready| *ready > now.raw());
            let outcome = mshrs.request(LineAddr::new(line), now, now + latency);
            prop_assert!(mshrs.outstanding(now) <= 4);
            match outcome {
                MshrOutcome::Allocated(ready) => {
                    prop_assert_eq!(ready, now + latency);
                    inflight.insert(line, ready.raw());
                }
                MshrOutcome::Coalesced(ready) => {
                    prop_assert_eq!(Some(&ready.raw()), inflight.get(&line));
                }
                MshrOutcome::Full { retry_at } => {
                    prop_assert!(retry_at > now, "retry must be in the future");
                    prop_assert_eq!(inflight.len(), 4);
                }
            }
        }
    }

    /// Port grants never precede the request and each resource is
    /// never double-booked: at most `resources` grants can coexist in
    /// any busy window.
    #[test]
    fn ports_never_overcommit(
        requests in prop::collection::vec(0u64..20, 1..200)
    ) {
        let mut ports = BankedPorts::new(3);
        let mut now = Cycle::ZERO;
        let mut grants = Vec::new();
        for advance in requests {
            now += advance;
            let grant = ports.acquire_any(now, 2);
            prop_assert!(grant >= now);
            grants.push(grant.raw());
        }
        grants.sort_unstable();
        for w in grants.windows(4) {
            prop_assert!(
                w[3] >= w[0] + 2,
                "4 grants within one 2-cycle occupancy: {w:?}"
            );
        }
    }
}
