//! Differential property tests for the block replay path:
//! [`SetAssocCache::access_block`] must be observationally identical
//! to per-event `probe_at` / `fill_at` replay — same outcomes, same
//! statistics, same final contents, same future victim choice — for
//! arbitrary geometries, all three replacement policies, and
//! arbitrary block sizes (including torn final blocks and the
//! degenerate block size 1).

use cache_model::{BlockOutcome, CacheGeometry, Replacement, SetAssocCache};
use proptest::prelude::*;
use sim_core::LineAddr;

/// A small universe of line addresses guarantees set conflicts and
/// repeated touches at every generated geometry.
const LINE_UNIVERSE: u64 = 64;

fn policy_from(index: u8) -> Replacement {
    [Replacement::Lru, Replacement::Fifo, Replacement::Random][index as usize % 3]
}

fn geometry_from(sets_log: u32, assoc_log: u32) -> CacheGeometry {
    let assoc = 1u32 << assoc_log;
    let sets = 1u64 << sets_log;
    CacheGeometry::new(sets * u64::from(assoc) * 64, assoc, 64).expect("power-of-two geometry")
}

/// Splits raw line addresses into the parallel `(set, tag)` arrays
/// block replay consumes.
fn decompose(geom: &CacheGeometry, raws: &[u64]) -> (Vec<u32>, Vec<u64>) {
    raws.iter()
        .map(|&raw| {
            let line = LineAddr::new(raw);
            (geom.set_index(line) as u32, geom.tag(line))
        })
        .unzip()
}

/// Per-event replay through the legacy entry points, recording the
/// outcome the block path must reproduce for each event.
fn replay_per_event(
    cache: &mut SetAssocCache<u32>,
    sets: &[u32],
    tags: &[u64],
) -> Vec<BlockOutcome> {
    sets.iter()
        .zip(tags)
        .map(|(&set, &tag)| {
            if cache.probe_at(set as usize, tag).is_some() {
                BlockOutcome::Hit
            } else if cache.fill_at(set as usize, tag, 0).is_some() {
                BlockOutcome::FilledEvicting
            } else {
                BlockOutcome::FilledEmpty
            }
        })
        .collect()
}

/// Block replay in chunks of `block` pairs; the final block is torn
/// whenever the trace length is not a multiple of the block size.
fn replay_blocked(
    cache: &mut SetAssocCache<u32>,
    sets: &[u32],
    tags: &[u64],
    block: usize,
) -> Vec<BlockOutcome> {
    let mut outcomes = vec![BlockOutcome::Hit; sets.len()];
    for ((s, t), o) in sets
        .chunks(block)
        .zip(tags.chunks(block))
        .zip(outcomes.chunks_mut(block))
    {
        cache.access_block(s, t, o);
    }
    outcomes
}

/// Everything observable after replay must agree between the two
/// caches: statistics, occupancy, resident lines with metadata in way
/// order, and the victim each set would pick next.
fn assert_equivalent(batched: &SetAssocCache<u32>, legacy: &SetAssocCache<u32>) {
    assert_eq!(*batched.stats(), *legacy.stats());
    assert_eq!(batched.len(), legacy.len());
    let contents_batched: Vec<(LineAddr, u32)> = batched.iter().map(|(l, m)| (l, *m)).collect();
    let contents_legacy: Vec<(LineAddr, u32)> = legacy.iter().map(|(l, m)| (l, *m)).collect();
    assert_eq!(contents_batched, contents_legacy);
    for raw in 0..LINE_UNIVERSE {
        let line = LineAddr::new(raw);
        assert_eq!(
            batched.eviction_candidate(line),
            legacy.eviction_candidate(line),
            "post-replay victim prediction for {line} disagrees"
        );
    }
}

proptest! {
    /// Arbitrary block sizes (1..48 against traces up to 400 events:
    /// torn final blocks are the common case) replay identically to
    /// the per-event loop under every policy.
    #[test]
    fn block_replay_matches_per_event_replay(
        sets_log in 0u32..5,
        assoc_log in 0u32..4,
        policy_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..400),
        block in 1usize..48,
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let policy = policy_from(policy_index);
        let (sets, tags) = decompose(&geom, &raws);

        let mut legacy: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let expected = replay_per_event(&mut legacy, &sets, &tags);

        let mut batched: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let outcomes = replay_blocked(&mut batched, &sets, &tags, block);

        prop_assert_eq!(outcomes, expected);
        assert_equivalent(&batched, &legacy);
    }

    /// Block size 1 degenerates to the legacy path exactly: one event
    /// per block, bucketing is a no-op, and every observable matches.
    #[test]
    fn block_size_one_equals_legacy_path(
        sets_log in 0u32..4,
        assoc_log in 0u32..3,
        policy_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..200),
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let policy = policy_from(policy_index);
        let (sets, tags) = decompose(&geom, &raws);

        let mut legacy: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let expected = replay_per_event(&mut legacy, &sets, &tags);

        let mut batched: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let outcomes = replay_blocked(&mut batched, &sets, &tags, 1);

        prop_assert_eq!(outcomes, expected);
        assert_equivalent(&batched, &legacy);
    }

    /// Geometries past the kernel's sort threshold (16 K slots) take
    /// the bucketed path — events replay grouped by set, out of trace
    /// order — and must still match per-event replay exactly. Raw
    /// addresses are folded onto a handful of sets so the big
    /// geometry still sees collisions, evictions, and full sets.
    #[test]
    fn bucketed_large_geometry_matches_per_event_replay(
        assoc_log in 0u32..2,
        policy_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..400),
        block in 1usize..48,
    ) {
        // 32768 sets x (1|2) ways: 32K-64K slots, always > threshold.
        let geom = geometry_from(15, assoc_log);
        let policy = policy_from(policy_index);
        let num_sets = 1u64 << 15;
        // Map the 64-line universe onto 8 sets x 8 tags.
        let folded: Vec<u64> = raws
            .iter()
            .map(|&raw| (raw % 8) + num_sets * (raw / 8))
            .collect();
        let (sets, tags) = decompose(&geom, &folded);

        let mut legacy: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let expected = replay_per_event(&mut legacy, &sets, &tags);

        let mut batched: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let outcomes = replay_blocked(&mut batched, &sets, &tags, block);

        prop_assert_eq!(outcomes, expected);
        assert_eq!(*batched.stats(), *legacy.stats());
        assert_eq!(batched.len(), legacy.len());
        let contents_batched: Vec<(LineAddr, u32)> =
            batched.iter().map(|(l, m)| (l, *m)).collect();
        let contents_legacy: Vec<(LineAddr, u32)> =
            legacy.iter().map(|(l, m)| (l, *m)).collect();
        assert_eq!(contents_batched, contents_legacy);
        for &raw in &folded {
            let line = LineAddr::new(raw);
            assert_eq!(
                batched.eviction_candidate(line),
                legacy.eviction_candidate(line),
                "post-replay victim prediction for {line} disagrees"
            );
        }
    }

    /// A whole-trace block (block size beyond the trace length) is
    /// one maximally torn block and must still match.
    #[test]
    fn whole_trace_block_matches_per_event_replay(
        sets_log in 0u32..4,
        assoc_log in 0u32..3,
        policy_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..300),
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let policy = policy_from(policy_index);
        let (sets, tags) = decompose(&geom, &raws);

        let mut legacy: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let expected = replay_per_event(&mut legacy, &sets, &tags);

        let mut batched: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let outcomes = replay_blocked(&mut batched, &sets, &tags, raws.len() + 7);

        prop_assert_eq!(outcomes, expected);
        assert_equivalent(&batched, &legacy);
    }
}
