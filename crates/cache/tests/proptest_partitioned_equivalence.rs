//! Differential property tests for the set-partitioned replay path:
//! [`SetAssocCache::access_partitioned`] must be observationally
//! identical to per-event `probe_at` / `fill_at` replay — same
//! per-event outcomes (scattered back to trace positions), same
//! statistics, same final contents, same future victim choice — for
//! geometries on both sides of [`cache_model::SORT_SLOT_THRESHOLD`]
//! and all three replacement policies.
//!
//! The partition is built here with a naive stable sort, independent
//! of `trace_gen::decomposed::PartitionedTrace`'s chunked
//! implementation, so this file also serves as an oracle for the CSR
//! layout contract [`SetRuns::new`] validates.

use cache_model::{BlockOutcome, CacheGeometry, Replacement, SetAssocCache, SetRuns};
use proptest::prelude::*;
use sim_core::LineAddr;

/// A small universe of line addresses guarantees set conflicts and
/// repeated touches at every generated geometry.
const LINE_UNIVERSE: u64 = 64;

fn policy_from(index: u8) -> Replacement {
    [Replacement::Lru, Replacement::Fifo, Replacement::Random][index as usize % 3]
}

fn geometry_from(sets_log: u32, assoc_log: u32) -> CacheGeometry {
    let assoc = 1u32 << assoc_log;
    let sets = 1u64 << sets_log;
    CacheGeometry::new(sets * u64::from(assoc) * 64, assoc, 64).expect("power-of-two geometry")
}

/// Splits raw line addresses into the parallel `(set, tag)` arrays.
fn decompose(geom: &CacheGeometry, raws: &[u64]) -> (Vec<u32>, Vec<u64>) {
    raws.iter()
        .map(|&raw| {
            let line = LineAddr::new(raw);
            (geom.set_index(line) as u32, geom.tag(line))
        })
        .unzip()
}

/// Per-event replay through the legacy entry points, recording the
/// outcome the partitioned path must scatter back to each position.
fn replay_per_event(
    cache: &mut SetAssocCache<u32>,
    sets: &[u32],
    tags: &[u64],
) -> Vec<BlockOutcome> {
    sets.iter()
        .zip(tags)
        .map(|(&set, &tag)| {
            if cache.probe_at(set as usize, tag).is_some() {
                BlockOutcome::Hit
            } else if cache.fill_at(set as usize, tag, 0).is_some() {
                BlockOutcome::FilledEvicting
            } else {
                BlockOutcome::FilledEmpty
            }
        })
        .collect()
}

/// The naive stable partition: sort event positions by set with a
/// stable sort, then walk them building the CSR run directory
/// `SetRuns` expects. Deliberately independent of the production
/// chunked counting sort.
fn naive_partition(sets: &[u32], tags: &[u64]) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u64>) {
    let mut order: Vec<u32> = (0..sets.len() as u32).collect();
    order.sort_by_key(|&i| sets[i as usize]);
    let mut dir_sets = Vec::new();
    let mut dir_starts = Vec::new();
    let mut indices = Vec::with_capacity(order.len());
    let mut run_tags = Vec::with_capacity(order.len());
    for &i in &order {
        let set = sets[i as usize];
        if dir_sets.last() != Some(&set) {
            dir_sets.push(set);
            dir_starts.push(indices.len() as u32);
        }
        indices.push(i);
        run_tags.push(tags[i as usize]);
    }
    dir_starts.push(indices.len() as u32);
    (dir_sets, dir_starts, indices, run_tags)
}

/// Partitioned replay: build the run view, replay whole per-set runs,
/// return the outcomes scattered back to original trace positions.
fn replay_partitioned(
    cache: &mut SetAssocCache<u32>,
    sets: &[u32],
    tags: &[u64],
) -> Vec<BlockOutcome> {
    let (dir_sets, dir_starts, indices, run_tags) = naive_partition(sets, tags);
    let runs = SetRuns::new(&dir_sets, &dir_starts, &indices, &run_tags);
    let mut outcomes = vec![BlockOutcome::Hit; sets.len()];
    cache.access_partitioned(runs, &mut outcomes);
    outcomes
}

/// Everything observable after replay must agree between the two
/// caches: statistics, occupancy, resident lines with metadata in way
/// order, and the victim each set would pick next.
fn assert_equivalent(partitioned: &SetAssocCache<u32>, legacy: &SetAssocCache<u32>) {
    assert_eq!(*partitioned.stats(), *legacy.stats());
    assert_eq!(partitioned.len(), legacy.len());
    let contents_part: Vec<(LineAddr, u32)> = partitioned.iter().map(|(l, m)| (l, *m)).collect();
    let contents_legacy: Vec<(LineAddr, u32)> = legacy.iter().map(|(l, m)| (l, *m)).collect();
    assert_eq!(contents_part, contents_legacy);
    for raw in 0..LINE_UNIVERSE {
        let line = LineAddr::new(raw);
        assert_eq!(
            partitioned.eviction_candidate(line),
            legacy.eviction_candidate(line),
            "post-replay victim prediction for {line} disagrees"
        );
    }
}

proptest! {
    /// Below the sort threshold (where the experiment drivers keep
    /// trace order, but the entry point must still be correct):
    /// partitioned replay matches per-event replay under every
    /// policy.
    #[test]
    fn partitioned_matches_per_event_below_threshold(
        sets_log in 0u32..5,
        assoc_log in 0u32..4,
        policy_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..400),
    ) {
        let geom = geometry_from(sets_log, assoc_log);
        let policy = policy_from(policy_index);
        let (sets, tags) = decompose(&geom, &raws);

        let mut legacy: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let expected = replay_per_event(&mut legacy, &sets, &tags);

        let mut partitioned: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let outcomes = replay_partitioned(&mut partitioned, &sets, &tags);

        prop_assert_eq!(outcomes, expected);
        assert_equivalent(&partitioned, &legacy);
    }

    /// Above the sort threshold (32 768 sets × 1–2 ways — the
    /// MRC-scale geometry the partitioned path exists for). Raw
    /// addresses are folded onto a handful of sets so the big
    /// geometry still sees collisions, evictions, and full sets.
    #[test]
    fn partitioned_matches_per_event_above_threshold(
        assoc_log in 0u32..2,
        policy_index in 0u8..3,
        raws in prop::collection::vec(0u64..LINE_UNIVERSE, 1..400),
    ) {
        let geom = geometry_from(15, assoc_log);
        let policy = policy_from(policy_index);
        let num_sets = 1u64 << 15;
        // Map the 64-line universe onto 8 sets x 8 tags.
        let folded: Vec<u64> = raws
            .iter()
            .map(|&raw| (raw % 8) + num_sets * (raw / 8))
            .collect();
        let (sets, tags) = decompose(&geom, &folded);

        let mut legacy: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let expected = replay_per_event(&mut legacy, &sets, &tags);

        let mut partitioned: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let outcomes = replay_partitioned(&mut partitioned, &sets, &tags);

        prop_assert_eq!(outcomes, expected);
        assert_equivalent(&partitioned, &legacy);
    }

    /// Mostly-singleton runs: spread addresses over many sets so most
    /// runs hold exactly one event, exercising the single-event fast
    /// path next to multi-event runs in the same replay.
    #[test]
    fn singleton_runs_match_per_event(
        assoc_log in 0u32..3,
        policy_index in 0u8..3,
        raws in prop::collection::vec(0u64..1024, 1..300),
    ) {
        let geom = geometry_from(9, assoc_log);
        let policy = policy_from(policy_index);
        let (sets, tags) = decompose(&geom, &raws);

        let mut legacy: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let expected = replay_per_event(&mut legacy, &sets, &tags);

        let mut partitioned: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, policy);
        let outcomes = replay_partitioned(&mut partitioned, &sets, &tags);

        prop_assert_eq!(outcomes, expected);
        assert_eq!(*partitioned.stats(), *legacy.stats());
        assert_eq!(partitioned.len(), legacy.len());
    }
}
