//! The original per-set `Vec<Way>` cache, kept as a differential-test
//! oracle for the flat SoA kernel.
//!
//! [`RefSetAssocCache`] is the implementation [`crate::SetAssocCache`]
//! had before the structure-of-arrays rewrite: one heap-allocated
//! `Vec<Way<M>>` per set, explicit `last_use` / `filled_at` stamps per
//! way, `Vec::swap_remove` on invalidate. It is **not** optimised and
//! not meant for simulation use — its only job is to pin the old
//! semantics so `tests/proptest_soa_equivalence.rs` can assert the new
//! kernel matches it decision-for-decision (hits, evicted lines and
//! metadata, victim choice under every [`Replacement`] policy,
//! occupancy, iteration order) on arbitrary traces.

use sim_core::LineAddr;

use crate::{CacheGeometry, CacheStats, Eviction, Replacement};

#[derive(Debug, Clone)]
struct Way<M> {
    tag: u64,
    last_use: u64,
    filled_at: u64,
    meta: M,
}

#[derive(Debug, Clone, Default)]
struct CacheSet<M> {
    ways: Vec<Way<M>>,
}

/// The pre-SoA set-associative cache (see module docs). Mirrors the
/// public surface of [`crate::SetAssocCache`] minus the probe-layer
/// hooks, which are orthogonal to replacement behaviour.
#[derive(Debug, Clone)]
pub struct RefSetAssocCache<M = ()> {
    geom: CacheGeometry,
    sets: Vec<CacheSet<M>>,
    clock: u64,
    stats: CacheStats,
    replacement: Replacement,
    evictions: u64,
    /// Per-set eviction counts; Random victim choice is seeded from
    /// the victim set's own counter, mirroring the SoA kernel.
    set_evictions: Vec<u32>,
}

impl<M> RefSetAssocCache<M> {
    /// Creates an empty cache with the given geometry and LRU
    /// replacement.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        Self::with_replacement(geom, Replacement::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    #[must_use]
    pub fn with_replacement(geom: CacheGeometry, replacement: Replacement) -> Self {
        let mut sets = Vec::with_capacity(geom.num_sets());
        for _ in 0..geom.num_sets() {
            sets.push(CacheSet {
                ways: Vec::with_capacity(geom.associativity() as usize),
            });
        }
        RefSetAssocCache {
            geom,
            sets,
            clock: 0,
            stats: CacheStats::default(),
            replacement,
            evictions: 0,
            set_evictions: vec![0; geom.num_sets()],
        }
    }

    /// Index of the way a fill would displace in a full `set`.
    fn victim_way(&self, set_index: usize) -> usize {
        let ways = &self.sets[set_index].ways;
        match self.replacement {
            Replacement::Lru => min_stamp_index(ways, |w| w.last_use),
            Replacement::Fifo => min_stamp_index(ways, |w| w.filled_at),
            Replacement::Random => {
                let mut rng = sim_core::rng::SplitMix64::new(
                    u64::from(self.set_evictions[set_index]) ^ (set_index as u64).rotate_left(32),
                );
                rng.next_below(ways.len() as u64) as usize
            }
        }
    }

    /// Access statistics recorded by [`Self::probe`].
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

/// Index of the way with the minimum `stamp`, first-wins on ties —
/// the same choice `min_by_key` over an enumerated iterator makes,
/// but total: an empty set yields 0 instead of panicking (callers
/// only consult full sets, so the value is never used spuriously).
fn min_stamp_index<M>(ways: &[Way<M>], stamp: impl Fn(&Way<M>) -> u64) -> usize {
    let mut best = 0;
    for (i, w) in ways.iter().enumerate().skip(1) {
        if stamp(w) < stamp(&ways[best]) {
            best = i;
        }
    }
    best
}

impl<M> RefSetAssocCache<M> {
    /// Looks a line up, updating recency and hit/miss statistics.
    pub fn probe(&mut self, line: LineAddr) -> Option<&mut M> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.geom.set_index(line);
        let tag = self.geom.tag(line);
        let way = self.sets[set].ways.iter_mut().find(|w| w.tag == tag);
        match way {
            Some(w) => {
                self.stats.record_hit();
                w.last_use = clock;
                Some(&mut w.meta)
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Looks a line up without touching recency or statistics.
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> Option<&M> {
        let set = self.geom.set_index(line);
        let tag = self.geom.tag(line);
        self.sets[set]
            .ways
            .iter()
            .find(|w| w.tag == tag)
            .map(|w| &w.meta)
    }

    /// Returns `true` if the line is resident.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line, displacing the policy victim of a full set.
    pub fn fill(&mut self, line: LineAddr, meta: M) -> Option<Eviction<M>> {
        debug_assert!(!self.contains(line), "double fill of {line}");
        self.clock += 1;
        let clock = self.clock;
        let set_index = self.geom.set_index(line);
        let tag = self.geom.tag(line);
        let assoc = self.geom.associativity() as usize;
        if self.sets[set_index].ways.len() < assoc {
            self.sets[set_index].ways.push(Way {
                tag,
                last_use: clock,
                filled_at: clock,
                meta,
            });
            return None;
        }
        let way = self.victim_way(set_index);
        self.evictions += 1;
        self.set_evictions[set_index] += 1;
        let victim = &mut self.sets[set_index].ways[way];
        let evicted_tag = victim.tag;
        let evicted_meta = std::mem::replace(&mut victim.meta, meta);
        victim.tag = tag;
        victim.last_use = clock;
        victim.filled_at = clock;
        Some(Eviction {
            line: self.geom.line_from_parts(evicted_tag, set_index),
            meta: evicted_meta,
        })
    }

    /// Removes a line, returning its metadata if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<M> {
        let set = self.geom.set_index(line);
        let tag = self.geom.tag(line);
        let ways = &mut self.sets[set].ways;
        let pos = ways.iter().position(|w| w.tag == tag)?;
        Some(ways.swap_remove(pos).meta)
    }

    /// The line that would be displaced if a fill hit this set now.
    #[must_use]
    pub fn eviction_candidate(&self, line: LineAddr) -> Option<LineAddr> {
        let set_index = self.geom.set_index(line);
        let set = &self.sets[set_index];
        if set.ways.len() < self.geom.associativity() as usize {
            return None;
        }
        let way = self.victim_way(set_index);
        Some(self.geom.line_from_parts(set.ways[way].tag, set_index))
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.ways.len()).sum()
    }

    /// `true` if no lines are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all resident lines and their metadata, set by set
    /// in way order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &M)> + '_ {
        self.sets.iter().enumerate().flat_map(move |(set, s)| {
            s.ways
                .iter()
                .map(move |w| (self.geom.line_from_parts(w.tag, set), &w.meta))
        })
    }
}
