//! The cache substrate for the conflict-miss reproduction.
//!
//! The paper evaluates the Miss Classification Table on a simulated
//! three-level memory system: a 16 KB direct-mapped, 8-way banked L1
//! data cache, a 1 MB 2-way L2 (20 cycles), and main memory
//! (100 cycles), with 64-byte lines and up to 16 misses in flight.
//! This crate provides all of those pieces as reusable components:
//!
//! * [`CacheGeometry`] — size / associativity / line-size math;
//! * [`SetAssocCache`] — an LRU set-associative cache with per-line
//!   metadata (used for the paper's *conflict bit*);
//! * [`oracle::ThreeCClassifier`] — the classic compulsory / capacity /
//!   conflict classification (Hill), used as ground truth;
//! * [`MshrFile`] — non-blocking-miss bookkeeping;
//! * [`BankedPorts`] — bank/port contention;
//! * [`L2Memory`] — the shared L2 + main-memory timing backend.
//!
//! # Examples
//!
//! ```
//! use cache_model::{CacheGeometry, SetAssocCache};
//! use sim_core::Addr;
//!
//! let geom = CacheGeometry::new(16 * 1024, 1, 64)?; // 16 KB direct-mapped
//! let mut cache: SetAssocCache<()> = SetAssocCache::new(geom);
//! let line = Addr::new(0x4000).line(64);
//! assert!(cache.probe(line).is_none());      // cold miss
//! cache.fill(line, ());
//! assert!(cache.probe(line).is_some());      // now a hit
//! # Ok::<(), cache_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod cache;
mod geometry;
mod hierarchy;
mod mshr;
pub mod oracle;
pub mod pool;
pub mod reference;
mod stats;

pub use bank::BankedPorts;
pub use cache::{
    BlockOutcome, BlockSink, Eviction, Replacement, SetAssocCache, SetRuns, SORT_SLOT_THRESHOLD,
};
pub use geometry::{CacheGeometry, ConfigError};
pub use hierarchy::{FetchResult, L2Memory, L2MemoryConfig};
pub use mshr::{MshrFile, MshrOutcome};
pub use stats::CacheStats;
