//! Per-cache access statistics.

use core::fmt;

/// Hit/miss counters maintained by a cache's probe path.
///
/// # Examples
///
/// ```
/// use cache_model::CacheStats;
///
/// let mut s = CacheStats::default();
/// s.record_hit();
/// s.record_miss();
/// assert_eq!(s.accesses(), 2);
/// assert!((s.hit_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    hits: u64,
    misses: u64,
}

impl CacheStats {
    /// Records a hit.
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Records `hits` hits and `misses` misses at once — the block
    /// replay engine folds a whole same-set run into one update.
    pub(crate) fn record_bulk(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }

    /// Number of hits.
    #[must_use]
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses.
    #[must_use]
    pub const fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses.
    #[must_use]
    pub const fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits over accesses, or 0.0 before any access.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Misses over accesses, or 0.0 before any access.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {:.2}% hit rate",
            self.accesses(),
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn rates_sum_to_one() {
        let mut s = CacheStats::default();
        for i in 0..10 {
            if i % 3 == 0 {
                s.record_miss();
            } else {
                s.record_hit();
            }
        }
        assert!((s.hit_rate() + s.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let mut s = CacheStats::default();
        s.record_hit();
        assert_eq!(s.to_string(), "1 accesses, 100.00% hit rate");
    }
}
