//! The shared lower memory hierarchy: a unified L2 cache in front of
//! main memory, connected to L1 by a bus with finite bandwidth.
//!
//! Latencies follow the paper's configuration and are measured from
//! the processor: an L2 hit returns in 20 cycles, a main-memory access
//! in 100 cycles, both before contention. Contention comes from the
//! L1↔L2 bus, which each line transfer occupies for a configurable
//! number of cycles (the prefetching study in Figure 4 uses a slower
//! bus to make wasted prefetch traffic visible).

use sim_core::{Cycle, LineAddr};

use crate::{BankedPorts, CacheGeometry, CacheStats, ConfigError, SetAssocCache};

/// Configuration for [`L2Memory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct L2MemoryConfig {
    /// Geometry of the unified L2 cache.
    pub l2_geometry: CacheGeometry,
    /// Cycles from the processor to an L2 hit (paper: 20).
    pub l2_latency: u64,
    /// Cycles from the processor to main memory (paper: 100).
    pub mem_latency: u64,
    /// Cycles the L1↔L2 bus is occupied per line transfer (1 = the
    /// paper's default system; larger values model the slower bus of
    /// the prefetch study).
    pub bus_cycles_per_line: u64,
}

impl L2MemoryConfig {
    /// The paper's configuration: 1 MB 2-way L2 at 20 cycles, memory
    /// at 100 cycles, 64-byte lines, fast bus.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` mirrors
    /// [`CacheGeometry::new`] so callers can tweak fields uniformly.
    pub fn paper_default() -> Result<Self, ConfigError> {
        Ok(L2MemoryConfig {
            l2_geometry: CacheGeometry::new(1024 * 1024, 2, 64)?,
            l2_latency: 20,
            mem_latency: 100,
            bus_cycles_per_line: 1,
        })
    }

    /// The slow-bus variant used for the prefetch speedup study.
    ///
    /// # Errors
    ///
    /// See [`Self::paper_default`].
    pub fn paper_slow_bus() -> Result<Self, ConfigError> {
        let mut cfg = Self::paper_default()?;
        cfg.bus_cycles_per_line = 4;
        Ok(cfg)
    }
}

/// The result of fetching a line from below L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchResult {
    /// When the line arrives at L1.
    pub ready: Cycle,
    /// Whether the L2 satisfied the fetch (false = main memory).
    pub l2_hit: bool,
}

/// A unified L2 cache plus main memory, with L1↔L2 bus contention.
///
/// # Examples
///
/// ```
/// use cache_model::{L2Memory, L2MemoryConfig};
/// use sim_core::{Cycle, LineAddr};
///
/// let mut l2 = L2Memory::new(L2MemoryConfig::paper_default()?);
/// let line = LineAddr::new(42);
/// let first = l2.fetch(line, Cycle::ZERO);
/// assert!(!first.l2_hit);                       // cold: from memory
/// assert_eq!(first.ready, Cycle::new(100));
/// let again = l2.fetch(line, first.ready);
/// assert!(again.l2_hit);                        // now cached in L2
/// assert_eq!(again.ready, first.ready + 20);
/// # Ok::<(), cache_model::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct L2Memory {
    cfg: L2MemoryConfig,
    l2: SetAssocCache<()>,
    bus: BankedPorts,
}

impl L2Memory {
    /// Creates an empty hierarchy below L1.
    #[must_use]
    pub fn new(cfg: L2MemoryConfig) -> Self {
        L2Memory {
            cfg,
            l2: SetAssocCache::new(cfg.l2_geometry),
            bus: BankedPorts::new(1),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &L2MemoryConfig {
        &self.cfg
    }

    /// L2 hit/miss statistics.
    #[must_use]
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Fetches a line for L1 (demand miss or prefetch), returning when
    /// it arrives. Allocates the line into L2 on an L2 miss.
    pub fn fetch(&mut self, line: LineAddr, now: Cycle) -> FetchResult {
        let grant = self.bus.acquire_any(now, self.cfg.bus_cycles_per_line);
        let l2_hit = self.l2.probe(line).is_some();
        let latency = if l2_hit {
            self.cfg.l2_latency
        } else {
            self.cfg.mem_latency
        };
        if !l2_hit {
            // Write-allocate into L2; L2 evictions go to memory and
            // need no further modelling.
            let _ = self.l2.fill(line, ());
        }
        FetchResult {
            ready: grant + latency,
            l2_hit,
        }
    }

    /// Installs a line into L2 without timing side effects.
    ///
    /// Models the observed effect of "wasted" prefetches pre-filling
    /// the L2 (paper §5.5): a line fetched into a buffer and lost
    /// before use still lands in L2.
    pub fn install(&mut self, line: LineAddr) {
        if !self.l2.contains(line) {
            let _ = self.l2.fill(line, ());
        }
    }

    /// Whether the L2 currently holds a line (no side effects).
    #[must_use]
    pub fn l2_contains(&self, line: LineAddr) -> bool {
        self.l2.contains(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> L2Memory {
        let cfg = L2MemoryConfig {
            l2_geometry: CacheGeometry::new(4096, 2, 64).unwrap(),
            l2_latency: 20,
            mem_latency: 100,
            bus_cycles_per_line: 1,
        };
        L2Memory::new(cfg)
    }

    #[test]
    fn cold_fetch_comes_from_memory() {
        let mut m = small();
        let r = m.fetch(LineAddr::new(1), Cycle::ZERO);
        assert!(!r.l2_hit);
        assert_eq!(r.ready, Cycle::new(100));
    }

    #[test]
    fn second_fetch_hits_l2() {
        let mut m = small();
        m.fetch(LineAddr::new(1), Cycle::ZERO);
        let r = m.fetch(LineAddr::new(1), Cycle::new(200));
        assert!(r.l2_hit);
        assert_eq!(r.ready, Cycle::new(220));
    }

    #[test]
    fn bus_contention_delays_back_to_back_fetches() {
        let cfg = L2MemoryConfig {
            l2_geometry: CacheGeometry::new(4096, 2, 64).unwrap(),
            l2_latency: 20,
            mem_latency: 100,
            bus_cycles_per_line: 4,
        };
        let mut m = L2Memory::new(cfg);
        let a = m.fetch(LineAddr::new(1), Cycle::ZERO);
        let b = m.fetch(LineAddr::new(2), Cycle::ZERO);
        // Second transfer waits 4 bus cycles behind the first.
        assert_eq!(a.ready, Cycle::new(100));
        assert_eq!(b.ready, Cycle::new(104));
    }

    #[test]
    fn install_prefills_without_traffic() {
        let mut m = small();
        m.install(LineAddr::new(9));
        assert!(m.l2_contains(LineAddr::new(9)));
        let r = m.fetch(LineAddr::new(9), Cycle::ZERO);
        assert!(r.l2_hit);
    }

    #[test]
    fn install_is_idempotent() {
        let mut m = small();
        m.install(LineAddr::new(9));
        m.install(LineAddr::new(9));
        assert!(m.l2_contains(LineAddr::new(9)));
    }

    #[test]
    fn l2_capacity_evicts_old_lines() {
        // 4 KB 2-way L2 = 64 lines; stream 128 distinct lines and the
        // first ones must be gone.
        let mut m = small();
        for n in 0..128 {
            m.fetch(LineAddr::new(n), Cycle::new(n * 200));
        }
        assert!(!m.l2_contains(LineAddr::new(0)));
        assert!(m.l2_contains(LineAddr::new(127)));
        // Refetching line 0 pays the memory latency again.
        let r = m.fetch(LineAddr::new(0), Cycle::new(100_000));
        assert!(!r.l2_hit);
    }

    #[test]
    fn paper_default_config_parses() {
        let cfg = L2MemoryConfig::paper_default().unwrap();
        assert_eq!(cfg.l2_geometry.size_bytes(), 1024 * 1024);
        assert_eq!(cfg.l2_geometry.associativity(), 2);
        let slow = L2MemoryConfig::paper_slow_bus().unwrap();
        assert!(slow.bus_cycles_per_line > cfg.bus_cycles_per_line);
    }
}
