//! Bank and port contention.
//!
//! The paper's L1 data cache is multi-ported via 8-way banking; the
//! cache-assist buffers have two read and two write ports where a full
//! line operation occupies a port for two cycles and a swap occupies
//! two ports for two cycles. [`BankedPorts`] models both cases as a
//! set of resources that each become free at some cycle.

use sim_core::{Cycle, LineAddr};

/// A set of independently scheduled resources (cache banks or buffer
/// ports): each request reserves one resource for a span of cycles and
/// is granted at the earliest time the target resource is free.
///
/// # Examples
///
/// ```
/// use cache_model::BankedPorts;
/// use sim_core::{Cycle, LineAddr};
///
/// // 2 buffer ports, requests addressed by line hash.
/// let mut ports = BankedPorts::new(2);
/// let now = Cycle::ZERO;
/// assert_eq!(ports.acquire_any(now, 2), now);       // port 0 busy till 2
/// assert_eq!(ports.acquire_any(now, 2), now);       // port 1 busy till 2
/// assert_eq!(ports.acquire_any(now, 2), Cycle::new(2)); // must wait
/// ```
#[derive(Debug, Clone)]
pub struct BankedPorts {
    free_at: Vec<Cycle>,
}

impl BankedPorts {
    /// Creates `count` resources, all free at cycle zero.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "need at least one bank/port");
        BankedPorts {
            free_at: vec![Cycle::ZERO; count],
        }
    }

    /// Number of resources.
    #[must_use]
    pub fn count(&self) -> usize {
        self.free_at.len()
    }

    /// Reserves the bank a line maps to (line-addressed banking) for
    /// `busy` cycles starting no earlier than `now`; returns the grant
    /// time.
    pub fn acquire_for_line(&mut self, line: LineAddr, now: Cycle, busy: u64) -> Cycle {
        let bank = (line.raw() % self.free_at.len() as u64) as usize;
        self.acquire_index(bank, now, busy)
    }

    /// Reserves whichever resource frees first (port pools) for `busy`
    /// cycles starting no earlier than `now`; returns the grant time.
    pub fn acquire_any(&mut self, now: Cycle, busy: u64) -> Cycle {
        let idx = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .expect("at least one resource");
        self.acquire_index(idx, now, busy)
    }

    /// Reserves `n` resources simultaneously (a line swap needs two
    /// ports); returns the common grant time.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the resource count.
    pub fn acquire_many(&mut self, n: usize, now: Cycle, busy: u64) -> Cycle {
        assert!(
            n <= self.free_at.len(),
            "requested {n} of {} resources",
            self.free_at.len()
        );
        // Pick the n earliest-free resources; the grant time is when
        // the last of them frees.
        let mut order: Vec<usize> = (0..self.free_at.len()).collect();
        order.sort_by_key(|&i| self.free_at[i]);
        let chosen = &order[..n];
        let grant = chosen
            .iter()
            .map(|&i| self.free_at[i])
            .fold(now, Cycle::max);
        for &i in chosen {
            self.free_at[i] = grant + busy;
        }
        grant
    }

    fn acquire_index(&mut self, idx: usize, now: Cycle, busy: u64) -> Cycle {
        let grant = self.free_at[idx].max(now);
        self.free_at[idx] = grant + busy;
        grant
    }

    /// The earliest time any resource is free (no reservation made).
    #[must_use]
    pub fn earliest_free(&self) -> Cycle {
        self.free_at
            .iter()
            .copied()
            .min()
            .expect("at least one resource")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_banks_no_contention() {
        let mut b = BankedPorts::new(8);
        let now = Cycle::ZERO;
        // Lines 0..8 hash to distinct banks.
        for n in 0..8 {
            assert_eq!(b.acquire_for_line(LineAddr::new(n), now, 1), now);
        }
    }

    #[test]
    fn same_bank_serializes() {
        let mut b = BankedPorts::new(8);
        let now = Cycle::ZERO;
        let l = LineAddr::new(3);
        assert_eq!(b.acquire_for_line(l, now, 1), Cycle::new(0));
        assert_eq!(b.acquire_for_line(l, now, 1), Cycle::new(1));
        // Line 11 maps to the same bank (11 % 8 == 3).
        assert_eq!(b.acquire_for_line(LineAddr::new(11), now, 1), Cycle::new(2));
    }

    #[test]
    fn swap_takes_two_ports_for_two_cycles() {
        let mut p = BankedPorts::new(2);
        let now = Cycle::ZERO;
        assert_eq!(p.acquire_many(2, now, 2), now);
        // Both ports busy until cycle 2.
        assert_eq!(p.acquire_any(now, 1), Cycle::new(2));
    }

    #[test]
    fn acquire_many_waits_for_slowest_needed_port() {
        let mut p = BankedPorts::new(3);
        p.acquire_index(0, Cycle::ZERO, 10);
        p.acquire_index(1, Cycle::ZERO, 4);
        // Two free-est ports are 2 (free at 0) and 1 (free at 4).
        assert_eq!(p.acquire_many(2, Cycle::ZERO, 1), Cycle::new(4));
    }

    #[test]
    fn grant_never_before_now() {
        let mut p = BankedPorts::new(1);
        assert_eq!(p.acquire_any(Cycle::new(100), 1), Cycle::new(100));
    }

    #[test]
    fn earliest_free_tracks_reservations() {
        let mut p = BankedPorts::new(2);
        assert_eq!(p.earliest_free(), Cycle::ZERO);
        p.acquire_any(Cycle::ZERO, 5);
        assert_eq!(p.earliest_free(), Cycle::ZERO); // second port untouched
        p.acquire_any(Cycle::ZERO, 3);
        assert_eq!(p.earliest_free(), Cycle::new(3));
    }
}
