//! An LRU set-associative cache with per-line metadata.

use sim_core::probe;
use sim_core::LineAddr;

use crate::{CacheGeometry, CacheStats};

/// Which resident line a full set sacrifices on a fill.
///
/// The paper's caches use LRU; FIFO and Random are provided for
/// substrate completeness (victim choice is itself a variable some of
/// the cited work explores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Replacement {
    /// Evict the least recently used line (default).
    #[default]
    Lru,
    /// Evict the oldest-filled line, ignoring hits.
    Fifo,
    /// Evict a pseudo-random line (deterministic per eviction count,
    /// so runs remain reproducible).
    Random,
}

/// A line displaced by a [`SetAssocCache::fill`].
///
/// Carries the evicted line's address (reconstructed from its tag and
/// set) and its metadata — for the paper's architectures the metadata
/// is the *conflict bit* that travels with the line to the victim
/// buffer or the Miss Classification Table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction<M> {
    /// The address of the displaced line.
    pub line: LineAddr,
    /// The metadata stored with the displaced line.
    pub meta: M,
}

/// A set-associative, write-allocate cache with true-LRU replacement
/// and per-line metadata of type `M`.
///
/// Timing lives elsewhere (the architecture models); this structure
/// answers only *what is resident* and *what gets displaced*. Probes
/// update LRU state, [`SetAssocCache::peek`] does not.
///
/// Internally the cache is a flat structure-of-arrays kernel: one
/// contiguous allocation each for tags, replacement stamps and line
/// metadata, indexed by `set * assoc + way`, plus a per-set occupancy
/// count. Ways `0..occupancy` of a set are resident (fills append,
/// [`Self::invalidate`] swap-removes), so a probe is a short linear
/// scan over adjacent words — the previous per-set `Vec<Way>` layout
/// paid one heap allocation per set and a pointer chase per access.
/// The flat arrays are recycled through a thread-local pool
/// ([`crate::pool`]) on drop, so experiment drivers that build one
/// cache per cell reuse warm pages instead of faulting fresh ones in
/// every time. `reference::RefSetAssocCache` preserves the original
/// per-set implementation as a differential-test oracle.
///
/// # Examples
///
/// ```
/// use cache_model::{CacheGeometry, SetAssocCache};
/// use sim_core::LineAddr;
///
/// // A tiny 2-set, 2-way cache to watch LRU happen.
/// let geom = CacheGeometry::new(256, 2, 64)?;
/// let mut c: SetAssocCache<u32> = SetAssocCache::new(geom);
/// let line = |n| LineAddr::new(n);
/// c.fill(line(0), 10);       // set 0
/// c.fill(line(2), 20);       // set 0 (second way)
/// c.probe(line(0));          // make line 0 most recent
/// let ev = c.fill(line(4), 30).unwrap();
/// assert_eq!(ev.line, line(2));  // LRU way displaced
/// assert_eq!(ev.meta, 20);
/// # Ok::<(), cache_model::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<M = ()> {
    geom: CacheGeometry,
    /// Associativity, cached as `usize` for the indexing hot path.
    assoc: usize,
    /// Tag per way slot, indexed `set * assoc + way`.
    tags: Box<[u64]>,
    /// Replacement stamp per way slot (victim = minimum). Under LRU
    /// the stamp is refreshed on every hit; under FIFO it is written
    /// only at fill time; Random never reads it.
    stamps: Box<[u64]>,
    /// Metadata per way slot; `Some` exactly for resident ways.
    meta: Box<[Option<M>]>,
    /// Resident ways per set; ways `0..occ[set]` are valid.
    occ: Box<[u32]>,
    /// Total resident lines (sum of `occ`).
    resident: usize,
    clock: u64,
    stats: CacheStats,
    replacement: Replacement,
    evictions: u64,
    /// Evictions per set. Random victim choice is seeded from this
    /// (not the global count) so the victim a set picks depends only
    /// on that set's own history — the property that lets block replay
    /// visit sets out of trace order and still match per-event replay.
    set_evictions: Box<[u32]>,
    /// Bucketing scratch for [`Self::access_block_with`], reused
    /// across blocks (taken out of the struct while a block runs).
    scratch: Option<BlockScratch>,
    probed: bool,
}

impl<M> SetAssocCache<M> {
    /// Creates an empty cache with the given geometry and LRU
    /// replacement.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        Self::with_replacement(geom, Replacement::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    #[must_use]
    pub fn with_replacement(geom: CacheGeometry, replacement: Replacement) -> Self {
        let slots = geom.num_lines();
        SetAssocCache {
            geom,
            assoc: geom.associativity() as usize,
            // Pooled arrays may hold stale values from a previous
            // cache; the kernel never reads slots past a set's
            // occupancy, so only `occ` needs zeroing.
            tags: crate::pool::take_u64(slots),
            stamps: crate::pool::take_u64(slots),
            meta: (0..slots).map(|_| None).collect(),
            occ: crate::pool::take_u32_zeroed(geom.num_sets()),
            resident: 0,
            clock: 0,
            stats: CacheStats::default(),
            replacement,
            evictions: 0,
            set_evictions: crate::pool::take_u32_zeroed(geom.num_sets()),
            // Built eagerly so block replay never allocates: the
            // empty vectors grow inside pooled/amortized scratch on
            // first use and are recycled with the cache.
            scratch: Some(BlockScratch {
                counts: crate::pool::take_u32_zeroed(geom.num_sets()),
                touched: Vec::new(),
                order: Vec::new(),
                sorted_sets: Vec::new(),
                sorted_tags: Vec::new(),
                iota: Vec::new(),
            }),
            probed: false,
        }
    }

    /// The replacement policy in use.
    #[must_use]
    pub const fn replacement(&self) -> Replacement {
        self.replacement
    }

    /// Opts this cache into per-set [`probe`] events
    /// ([`probe::ProbeEvent::SetFill`] / [`probe::ProbeEvent::SetEvict`]).
    ///
    /// Off by default so that secondary structures sharing the model
    /// (an L2, a shadow copy) do not pollute the L1's event stream;
    /// the unit that an experiment measures enables it at
    /// construction. No events are emitted either way unless a probe
    /// sink is installed.
    pub fn enable_set_probes(&mut self) {
        self.probed = true;
    }

    /// Index of the way a fill would displace in a full `set`.
    ///
    /// Stamps are globally unique (the clock advances on every probe
    /// and fill), so the minimum scans below have no ties and the
    /// victim is independent of scan order.
    fn victim_way(&self, set_index: usize) -> usize {
        let base = set_index * self.assoc;
        let occ = self.occ[set_index] as usize;
        debug_assert!(occ > 0, "victim choice in an empty set");
        match self.replacement {
            Replacement::Lru | Replacement::Fifo => min_stamp_way(&self.stamps[base..base + occ]),
            Replacement::Random => {
                // Deterministic per (set's eviction count, set): the
                // same victim is reported by eviction_candidate and
                // taken by the subsequent fill, and the choice is
                // independent of other sets' traffic (block replay
                // relies on that).
                RandomPolicy::victim(
                    &self.stamps[base..base + occ],
                    self.set_evictions[set_index],
                    set_index,
                )
            }
        }
    }

    /// Slot index of the resident way holding `tag` in `set`, if any.
    #[inline]
    fn find_slot(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.assoc;
        let occ = self.occ[set] as usize;
        self.tags[base..base + occ]
            .iter()
            .position(|&t| t == tag)
            .map(|way| base + way)
    }

    /// The cache's geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Access statistics recorded by [`Self::probe`].
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Looks a line up, updating recency and hit/miss statistics.
    ///
    /// Returns mutable access to the line's metadata on a hit so
    /// callers can, for instance, flip the conflict bit in place.
    pub fn probe(&mut self, line: LineAddr) -> Option<&mut M> {
        let set = self.geom.set_index(line);
        let tag = self.geom.tag(line);
        self.probe_at(set, tag)
    }

    /// [`Self::probe`] with the line already decomposed into its set
    /// index and tag — the kernel entry point decomposed-trace replay
    /// feeds, skipping per-access address arithmetic.
    pub fn probe_at(&mut self, set: usize, tag: u64) -> Option<&mut M> {
        self.clock += 1;
        match self.find_slot(set, tag) {
            Some(slot) => {
                self.stats.record_hit();
                // FIFO victims ignore recency; Random reads no stamps.
                if matches!(self.replacement, Replacement::Lru) {
                    self.stamps[slot] = self.clock;
                }
                self.meta[slot].as_mut()
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Looks a line up without touching recency or statistics.
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> Option<&M> {
        self.peek_at(self.geom.set_index(line), self.geom.tag(line))
    }

    /// [`Self::peek`] with the line already decomposed.
    #[must_use]
    pub fn peek_at(&self, set: usize, tag: u64) -> Option<&M> {
        self.find_slot(set, tag)
            .and_then(|slot| self.meta[slot].as_ref())
    }

    /// Returns `true` if the line is resident.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line, displacing the LRU way of a full set.
    ///
    /// The new line becomes the most recently used in its set. Returns
    /// the displaced line, if any.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already resident —
    /// architectures must not double-fill (it would duplicate a tag
    /// within a set).
    pub fn fill(&mut self, line: LineAddr, meta: M) -> Option<Eviction<M>> {
        debug_assert!(!self.contains(line), "double fill of {line}");
        self.fill_at(self.geom.set_index(line), self.geom.tag(line), meta)
    }

    /// [`Self::fill`] with the line already decomposed into its set
    /// index and tag.
    pub fn fill_at(&mut self, set_index: usize, tag: u64, meta: M) -> Option<Eviction<M>> {
        self.clock += 1;
        let clock = self.clock;
        if self.probed && probe::active() {
            probe::emit(probe::ProbeEvent::SetFill {
                set: set_index as u32,
            });
        }
        let base = set_index * self.assoc;
        let occ = self.occ[set_index] as usize;
        if occ < self.assoc {
            let slot = base + occ;
            self.tags[slot] = tag;
            self.stamps[slot] = clock;
            self.meta[slot] = Some(meta);
            self.occ[set_index] += 1;
            self.resident += 1;
            return None;
        }
        // Displace the policy's victim.
        let way = self.victim_way(set_index);
        self.evictions += 1;
        self.set_evictions[set_index] += 1;
        if self.probed && probe::active() {
            probe::emit(probe::ProbeEvent::SetEvict {
                set: set_index as u32,
            });
        }
        let slot = base + way;
        let evicted_tag = self.tags[slot];
        let evicted_meta = self.meta[slot]
            .replace(meta)
            // Ways 0..occ hold Some meta by construction (fills write
            // it, invalidate swap-removes), and no non-panicking
            // fallback exists for an arbitrary meta type M.
            // simlint: allow(transitive-panic)
            .expect("resident way has meta");
        self.tags[slot] = tag;
        self.stamps[slot] = clock;
        Some(Eviction {
            line: self.geom.line_from_parts(evicted_tag, set_index),
            meta: evicted_meta,
        })
    }

    /// Removes a line, returning its metadata if it was resident.
    ///
    /// Victim-cache swaps use this to pull a line out of the cache
    /// without filling a replacement.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<M> {
        let set = self.geom.set_index(line);
        let tag = self.geom.tag(line);
        let slot = self.find_slot(set, tag)?;
        let removed = self.meta[slot].take();
        // Swap-remove: the last resident way drops into the vacated
        // slot, matching `Vec::swap_remove` in the reference layout.
        let last = set * self.assoc + self.occ[set] as usize - 1;
        if slot != last {
            self.tags[slot] = self.tags[last];
            self.stamps[slot] = self.stamps[last];
            self.meta[slot] = self.meta[last].take();
        }
        self.occ[set] -= 1;
        self.resident -= 1;
        removed
    }

    /// The line that would be displaced if a fill hit this set now.
    ///
    /// `None` if the set still has an empty way.
    #[must_use]
    pub fn eviction_candidate(&self, line: LineAddr) -> Option<LineAddr> {
        let set_index = self.geom.set_index(line);
        if (self.occ[set_index] as usize) < self.assoc {
            return None;
        }
        let way = self.victim_way(set_index);
        let tag = self.tags[set_index * self.assoc + way];
        Some(self.geom.line_from_parts(tag, set_index))
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.resident
    }

    /// `true` if no lines are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    /// Iterates over all resident lines and their metadata, set by set
    /// in way order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &M)> + '_ {
        (0..self.occ.len()).flat_map(move |set| {
            let base = set * self.assoc;
            // filter_map keeps this total: resident ways always hold
            // Some meta, so nothing is ever actually skipped.
            (base..base + self.occ[set] as usize).filter_map(move |slot| {
                self.meta[slot]
                    .as_ref()
                    .map(|meta| (self.geom.line_from_parts(self.tags[slot], set), meta))
            })
        })
    }
}

/// The outcome of one event in a block replay
/// ([`SetAssocCache::access_block`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockOutcome {
    /// The line was resident.
    #[default]
    Hit,
    /// The line missed and filled an empty way.
    FilledEmpty,
    /// The line missed and its fill displaced a resident line.
    FilledEvicting,
}

/// Per-event callbacks a block replay drives
/// ([`SetAssocCache::access_block_with`]).
///
/// `index` is the event's position in the caller's block: the kernel
/// visits events set by set, not in block order, so sinks scatter
/// their results through the index instead of appending.
pub trait BlockSink<M> {
    /// Called on a hit with the resident line's metadata.
    fn hit(&mut self, index: usize, meta: &mut M);
    /// Called on a miss *before* the fill (the MCT protocol
    /// classifies against pre-fill state); returns the metadata the
    /// filled line carries.
    fn miss(&mut self, index: usize, set: usize, tag: u64) -> M;
    /// Called when the fill of event `index` displaced a resident
    /// line.
    fn evicted(&mut self, index: usize, set: usize, evicted_tag: u64, evicted_meta: M);
}

/// Reusable bucketing scratch for [`SetAssocCache::access_block_with`]:
/// one counting-sort workspace, recycled across blocks.
#[derive(Debug, Clone)]
struct BlockScratch {
    /// Per-set event count, then running start offset during the
    /// scatter; re-zeroed (touched sets only) after every block.
    counts: Box<[u32]>,
    /// Sets with at least one event in the current block, in
    /// first-appearance order.
    touched: Vec<u32>,
    /// Block event indices grouped by set, trace order within a set.
    order: Vec<u32>,
    /// The block's set indices in bucketed order — `sorted_sets[i]`
    /// is the set of event `order[i]`. Scattered alongside `order` so
    /// the replay walk reads sets and tags sequentially instead of
    /// gathering `sets[order[i]]` from random block positions.
    sorted_sets: Vec<u32>,
    /// The block's tags in bucketed order, paired with `sorted_sets`.
    sorted_tags: Vec<u64>,
    /// Identity indices `0..block_len`, grown on demand: the
    /// trace-order (unsorted) path slices event indices out of this
    /// instead of materializing them per block.
    iota: Vec<u32>,
}

/// Slot count (sets × ways) above which a block is bucketed by set
/// before replay. Below it the kernel arrays are cache-resident
/// anyway, so sorting is pure overhead and blocks run in trace order;
/// above it, grouping a block's events by set turns random row
/// accesses into per-set runs and an ascending sweep. The paper's
/// L1/L2 shapes (≤ 16K slots ≈ 384 KB of rows) stay below the
/// threshold; the MRC-scale geometries ROADMAP item 4 targets sit
/// above it. Public because the same boundary decides when replay
/// drivers request the decompose-time partitioned trace form
/// ([`SetAssocCache::access_partitioned_with`]) instead of per-block
/// sorting.
pub const SORT_SLOT_THRESHOLD: usize = 16 * 1024;

/// A borrowed set-partitioned event sequence: per-set runs of
/// `(original_index, tag)` pairs plus a directory of touched sets —
/// the CSR layout `trace_gen`'s `PartitionedTrace` produces at
/// decomposition time. Run `k` covers set `dir_sets[k]` and occupies
/// `indices[dir_starts[k]..dir_starts[k + 1]]` (same range of
/// `tags`); within a run events keep trace order.
///
/// This is a view, not a container, so the kernel can consume
/// presorted traces without the trace crate depending on this crate
/// (or vice versa): producers expose raw slices, consumers rebuild
/// the view.
#[derive(Debug, Clone, Copy)]
pub struct SetRuns<'a> {
    dir_sets: &'a [u32],
    dir_starts: &'a [u32],
    indices: &'a [u32],
    tags: &'a [u64],
}

impl<'a> SetRuns<'a> {
    /// Builds the view over a CSR partition.
    ///
    /// # Panics
    ///
    /// Panics if the directory shape is inconsistent: `dir_starts`
    /// must be one longer than `dir_sets`, start at 0, end at the
    /// event count, and `indices`/`tags` must be equally long.
    #[must_use]
    pub fn new(
        dir_sets: &'a [u32],
        dir_starts: &'a [u32],
        indices: &'a [u32],
        tags: &'a [u64],
    ) -> Self {
        assert_eq!(
            dir_starts.len(),
            dir_sets.len() + 1,
            "dir_starts must be one longer than dir_sets"
        );
        assert_eq!(dir_starts.first(), Some(&0), "runs must start at 0");
        // dir_starts is non-empty here (first assert), so the
        // fallback never applies; it keeps this total for the lint.
        assert_eq!(
            dir_starts.last().copied().unwrap_or(0) as usize,
            indices.len(),
            "dir_starts must end at the event count"
        );
        assert_eq!(indices.len(), tags.len(), "indices/tags length mismatch");
        SetRuns {
            dir_sets,
            dir_starts,
            indices,
            tags,
        }
    }

    /// Number of events across all runs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` if there are no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of per-set runs.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.dir_sets.len()
    }

    /// Iterates `(set, original_indices, tags)` runs in directory
    /// order.
    pub fn runs(&self) -> impl Iterator<Item = (u32, &'a [u32], &'a [u64])> + '_ {
        self.dir_sets.iter().enumerate().map(move |(k, &set)| {
            let lo = self.dir_starts[k] as usize;
            let hi = self.dir_starts[k + 1] as usize;
            (set, &self.indices[lo..hi], &self.tags[lo..hi])
        })
    }
}

impl BlockScratch {
    /// Stable counting sort of the block's events by set.
    ///
    /// Touched-set bookkeeping keeps the cost proportional to the
    /// block, not the geometry: only counters that became nonzero are
    /// visited for the prefix sum and the re-zeroing. The scatter
    /// moves whole `(index, set, tag)` tuples, not just indices: one
    /// random write per event here buys fully sequential reads in the
    /// replay walk, which would otherwise pay two random gathers per
    /// event on blocks larger than L1.
    fn bucket(&mut self, sets: &[u32], tags: &[u64]) {
        self.touched.clear();
        self.order.clear();
        self.order.resize(sets.len(), 0);
        self.sorted_sets.clear();
        self.sorted_sets.resize(sets.len(), 0);
        self.sorted_tags.clear();
        self.sorted_tags.resize(sets.len(), 0);
        for &set in sets {
            let count = &mut self.counts[set as usize];
            if *count == 0 {
                self.touched.push(set);
            }
            *count += 1;
        }
        // Counts become running start offsets, bucket order following
        // first appearance.
        let mut next = 0u32;
        for &set in &self.touched {
            let count = &mut self.counts[set as usize];
            let bucket = *count;
            *count = next;
            next += bucket;
        }
        // Forward scatter: stable, so within a set trace order
        // survives — the property the equivalence proof leans on.
        for (i, (&set, &tag)) in sets.iter().zip(tags).enumerate() {
            let slot = &mut self.counts[set as usize];
            let pos = *slot as usize;
            self.order[pos] = i as u32;
            self.sorted_sets[pos] = set;
            self.sorted_tags[pos] = tag;
            *slot += 1;
        }
        for &set in &self.touched {
            self.counts[set as usize] = 0;
        }
    }
}

/// Replacement policy, monomorphized for the block engine: the
/// per-event `match` on [`Replacement`] becomes one dispatch per
/// block.
trait BlockPolicy {
    /// Whether a hit refreshes the line's stamp (true LRU only).
    const REFRESH_ON_HIT: bool;
    /// Victim way among `stamps`, the resident stamps of `set_index`.
    fn victim(stamps: &[u64], set_evictions: u32, set_index: usize) -> usize;
}

struct LruPolicy;
struct FifoPolicy;
struct RandomPolicy;

impl BlockPolicy for LruPolicy {
    const REFRESH_ON_HIT: bool = true;
    #[inline]
    fn victim(stamps: &[u64], _set_evictions: u32, _set_index: usize) -> usize {
        min_stamp_way(stamps)
    }
}

impl BlockPolicy for FifoPolicy {
    // FIFO victims ignore recency; stamps are written at fill only.
    const REFRESH_ON_HIT: bool = false;
    #[inline]
    fn victim(stamps: &[u64], _set_evictions: u32, _set_index: usize) -> usize {
        min_stamp_way(stamps)
    }
}

impl BlockPolicy for RandomPolicy {
    const REFRESH_ON_HIT: bool = false;
    #[inline]
    fn victim(stamps: &[u64], set_evictions: u32, set_index: usize) -> usize {
        let mut rng = sim_core::rng::SplitMix64::new(
            u64::from(set_evictions) ^ (set_index as u64).rotate_left(32),
        );
        rng.next_below(stamps.len() as u64) as usize
    }
}

/// Index of the minimum stamp — a plain min scan (total even on an
/// empty slice, and branch-predictable on the 1-8 way geometries the
/// experiments sweep). Stamps are globally unique, so there are no
/// ties and the victim is independent of scan order.
#[inline]
fn min_stamp_way(stamps: &[u64]) -> usize {
    let mut way = 0;
    let mut min = u64::MAX;
    for (i, &stamp) in stamps.iter().enumerate() {
        if stamp < min {
            min = stamp;
            way = i;
        }
    }
    way
}

/// The sink behind [`SetAssocCache::access_block`]: records plain
/// outcomes and fills with default metadata.
struct OutcomeSink<'a> {
    out: &'a mut [BlockOutcome],
}

impl<M: Default> BlockSink<M> for OutcomeSink<'_> {
    #[inline]
    fn hit(&mut self, index: usize, _meta: &mut M) {
        self.out[index] = BlockOutcome::Hit;
    }
    #[inline]
    fn miss(&mut self, index: usize, _set: usize, _tag: u64) -> M {
        self.out[index] = BlockOutcome::FilledEmpty;
        M::default()
    }
    #[inline]
    fn evicted(&mut self, index: usize, _set: usize, _evicted_tag: u64, _evicted_meta: M) {
        self.out[index] = BlockOutcome::FilledEvicting;
    }
}

impl<M> SetAssocCache<M> {
    /// Replays a block of decomposed accesses through a sink.
    ///
    /// Semantically identical to the per-event loop
    ///
    /// ```ignore
    /// for i in 0..sets.len() {
    ///     match cache.probe_at(sets[i] as usize, tags[i]) {
    ///         Some(meta) => sink.hit(i, meta),
    ///         None => {
    ///             let meta = sink.miss(i, sets[i] as usize, tags[i]);
    ///             if let Some(ev) = cache.fill_at(sets[i] as usize, tags[i], meta) {
    ///                 sink.evicted(i, ..);
    ///             }
    ///         }
    ///     }
    /// }
    /// ```
    ///
    /// but the probe-armed check and the replacement-policy branch
    /// run once per block instead of once per event, and events are
    /// replayed as same-set *runs* whose row, clock, and counters
    /// live in locals. On geometries past the sort threshold the
    /// block is first bucketed by set index with a stable counting
    /// sort, so consecutive probes touch the same `tags`/`stamps`
    /// rows while they are cache-resident; cache-resident geometries
    /// keep trace order (sorting would be pure overhead). Within a
    /// set, events keep trace order either way; victim choice depends
    /// only on within-set state (per-set eviction counters for
    /// Random), so hits, misses, evictions, statistics and final
    /// contents all match per-event replay exactly.
    ///
    /// When this cache reports set probes and a probe sink is armed,
    /// the block falls back to exact per-event order so the emitted
    /// event stream is byte-identical to unbatched replay.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a set index is out of
    /// range for the geometry.
    pub fn access_block_with<S: BlockSink<M>>(&mut self, sets: &[u32], tags: &[u64], sink: &mut S) {
        assert_eq!(sets.len(), tags.len(), "sets/tags length mismatch");
        if self.probed && probe::active() {
            self.block_fallback(sets, tags, sink);
            return;
        }
        match self.replacement {
            Replacement::Lru => self.process_block::<LruPolicy, S>(sets, tags, sink),
            Replacement::Fifo => self.process_block::<FifoPolicy, S>(sets, tags, sink),
            Replacement::Random => self.process_block::<RandomPolicy, S>(sets, tags, sink),
        }
    }

    /// [`Self::access_block_with`] with a plain outcome array instead
    /// of a sink: misses fill `M::default()` metadata and each event
    /// records whether it hit, filled an empty way, or displaced a
    /// line.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length or a set index is
    /// out of range for the geometry.
    pub fn access_block(&mut self, sets: &[u32], tags: &[u64], out: &mut [BlockOutcome])
    where
        M: Default,
    {
        assert_eq!(sets.len(), out.len(), "sets/out length mismatch");
        let mut sink = OutcomeSink { out };
        self.access_block_with(sets, tags, &mut sink);
    }

    /// Replays a whole set-partitioned trace through a sink: one
    /// [`Self::block_run`] per run, straight off the presorted
    /// [`SetRuns`] arrays — no [`BlockScratch`], no per-block
    /// re-bucketing, policy dispatched once for the entire replay.
    ///
    /// Equivalence with per-event replay holds by the same argument
    /// as [`Self::access_block_with`], taken to its limit (the whole
    /// trace is one block): within a run events keep trace order, and
    /// victim choice depends only on within-set state — stamps are
    /// compared by order, not value, and Random reseeds from the
    /// set's own eviction counter — so hits, misses, evictions,
    /// statistics and final contents all match exactly. `sink`
    /// callbacks receive each event's *original trace index*, which
    /// is how consumers scatter results back into trace order.
    ///
    /// Partitioned replay visits sets out of trace order, so it
    /// cannot reproduce a per-event probe stream; callers must use
    /// trace-order replay while a probe sink is armed on a
    /// set-probe-reporting cache (debug-asserted here).
    ///
    /// # Panics
    ///
    /// Panics if a set index is out of range for the geometry.
    pub fn access_partitioned_with<S: BlockSink<M>>(&mut self, runs: SetRuns<'_>, sink: &mut S) {
        debug_assert!(
            !(self.probed && probe::active()),
            "partitioned replay cannot reproduce per-event probe streams; \
             replay in trace order while probes are armed"
        );
        match self.replacement {
            Replacement::Lru => self.process_runs::<LruPolicy, S>(runs, sink),
            Replacement::Fifo => self.process_runs::<FifoPolicy, S>(runs, sink),
            Replacement::Random => self.process_runs::<RandomPolicy, S>(runs, sink),
        }
    }

    /// [`Self::access_partitioned_with`] with a plain outcome array
    /// indexed by *original trace position*: misses fill `M::default()`
    /// metadata and each event records whether it hit, filled an empty
    /// way, or displaced a line.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the largest original index, or
    /// a set index is out of range for the geometry.
    pub fn access_partitioned(&mut self, runs: SetRuns<'_>, out: &mut [BlockOutcome])
    where
        M: Default,
    {
        assert_eq!(runs.len(), out.len(), "runs/out length mismatch");
        let mut sink = OutcomeSink { out };
        self.access_partitioned_with(runs, &mut sink);
    }

    /// The per-run engine, monomorphized per replacement policy.
    fn process_runs<P: BlockPolicy, S: BlockSink<M>>(&mut self, runs: SetRuns<'_>, sink: &mut S) {
        for (set, indices, run_tags) in runs.runs() {
            if let (&[index], &[tag]) = (indices, run_tags) {
                self.block_single::<P, S>(index as usize, set as usize, tag, sink);
            } else {
                self.block_run::<P, S>(set as usize, indices, run_tags, sink);
            }
        }
    }

    /// Probe-armed fallback: per-event order, via the exact entry
    /// points unbatched replay uses, so probe event streams are
    /// unchanged by batching.
    fn block_fallback<S: BlockSink<M>>(&mut self, sets: &[u32], tags: &[u64], sink: &mut S) {
        for (i, (&set, &tag)) in sets.iter().zip(tags).enumerate() {
            let set = set as usize;
            if let Some(meta) = self.probe_at(set, tag) {
                sink.hit(i, meta);
                continue;
            }
            let meta = sink.miss(i, set, tag);
            if let Some(ev) = self.fill_at(set, tag, meta) {
                let evicted_tag = self.geom.tag(ev.line);
                sink.evicted(i, set, evicted_tag, ev.meta);
            }
        }
    }

    /// The bucketed engine, monomorphized per replacement policy.
    fn process_block<P: BlockPolicy, S: BlockSink<M>>(
        &mut self,
        sets: &[u32],
        tags: &[u64],
        sink: &mut S,
    ) {
        // Scratch is taken out of the struct for the duration of the
        // block so its arrays and the kernel arrays borrow disjointly.
        // The constructor installs it and every taker puts it back, so
        // the `else` arm is unreachable in practice; per-event replay
        // is a total, allocation-free fallback with identical
        // semantics.
        let Some(mut scratch) = self.scratch.take() else {
            self.block_fallback(sets, tags, sink);
            return;
        };
        if self.tags.len() > SORT_SLOT_THRESHOLD {
            // Large geometry: bucket by set, then replay per-set runs
            // in an ascending sweep over the kernel arrays.
            scratch.bucket(sets, tags);
            let mut start = 0;
            let len = scratch.order.len();
            while start < len {
                let set = scratch.sorted_sets[start];
                let mut end = start + 1;
                while end < len && scratch.sorted_sets[end] == set {
                    end += 1;
                }
                if end == start + 1 {
                    self.block_single::<P, S>(
                        scratch.order[start] as usize,
                        set as usize,
                        scratch.sorted_tags[start],
                        sink,
                    );
                } else {
                    self.block_run::<P, S>(
                        set as usize,
                        &scratch.order[start..end],
                        &scratch.sorted_tags[start..end],
                        sink,
                    );
                }
                start = end;
            }
        } else {
            // Cache-resident geometry: trace order, with natural runs
            // of adjacent same-set events (spatial locality) still
            // folded into single row visits.
            if scratch.iota.len() < sets.len() {
                let from = scratch.iota.len() as u32;
                scratch.iota.extend(from..sets.len() as u32);
            }
            let mut start = 0;
            while start < sets.len() {
                let set = sets[start];
                let mut end = start + 1;
                while end < sets.len() && sets[end] == set {
                    end += 1;
                }
                if end == start + 1 {
                    self.block_single::<P, S>(start, set as usize, tags[start], sink);
                } else {
                    self.block_run::<P, S>(
                        set as usize,
                        &scratch.iota[start..end],
                        &tags[start..end],
                        sink,
                    );
                }
                start = end;
            }
        }
        self.scratch = Some(scratch);
    }

    /// Replays one isolated event of a block — a run of length one.
    ///
    /// Cuts [`Self::block_run`]'s row-slice setup and multi-field
    /// write-back down to the same touch pattern as the legacy
    /// `probe_at`/`fill_at` pair, which matters on patterns with no
    /// adjacent same-set events (a strided set walk degenerates every
    /// run to length one). The policy is still monomorphized and the
    /// probe-armed check already ran once for the whole block.
    fn block_single<P: BlockPolicy, S: BlockSink<M>>(
        &mut self,
        index: usize,
        set: usize,
        tag: u64,
        sink: &mut S,
    ) {
        let base = set * self.assoc;
        let occ = self.occ[set] as usize;
        self.clock += 1;
        if let Some(way) = self.tags[base..base + occ].iter().position(|&t| t == tag) {
            self.stats.record_hit();
            if P::REFRESH_ON_HIT {
                self.stamps[base + way] = self.clock;
            }
            // Total: ways 0..occ hold Some meta by construction.
            if let Some(meta) = self.meta[base + way].as_mut() {
                sink.hit(index, meta);
            }
            return;
        }
        self.stats.record_miss();
        let meta = sink.miss(index, set, tag);
        self.clock += 1;
        if occ < self.assoc {
            self.tags[base + occ] = tag;
            self.stamps[base + occ] = self.clock;
            self.meta[base + occ] = Some(meta);
            self.occ[set] = (occ + 1) as u32;
            self.resident += 1;
            return;
        }
        let way = P::victim(&self.stamps[base..base + occ], self.set_evictions[set], set);
        self.set_evictions[set] += 1;
        self.evictions += 1;
        let evicted_tag = self.tags[base + way];
        let evicted_meta = self.meta[base + way].replace(meta);
        self.tags[base + way] = tag;
        self.stamps[base + way] = self.clock;
        if let Some(evicted_meta) = evicted_meta {
            sink.evicted(index, set, evicted_tag, evicted_meta);
        }
    }

    /// Replays one same-set run of a bucketed block.
    ///
    /// Bucketing makes every set's events contiguous, so the whole
    /// run works against one row: the row slices are borrowed once,
    /// and the clock, occupancy, and hit/eviction counters live in
    /// locals until a single write-back — per event the loop touches
    /// only the row, the run's `(index, tag)` pair, and the sink,
    /// instead of re-loading kernel fields through `&mut self`.
    fn block_run<P: BlockPolicy, S: BlockSink<M>>(
        &mut self,
        set: usize,
        indices: &[u32],
        run_tags: &[u64],
        sink: &mut S,
    ) {
        let base = set * self.assoc;
        let row_tags = &mut self.tags[base..base + self.assoc];
        let row_stamps = &mut self.stamps[base..base + self.assoc];
        let row_meta = &mut self.meta[base..base + self.assoc];
        let start_occ = self.occ[set] as usize;
        let mut occ = start_occ;
        let mut clock = self.clock;
        let mut set_evictions = self.set_evictions[set];
        let mut hits = 0u64;
        let mut evictions = 0u64;
        for (&index, &tag) in indices.iter().zip(run_tags) {
            let index = index as usize;
            clock += 1;
            if let Some(way) = row_tags[..occ].iter().position(|&t| t == tag) {
                hits += 1;
                if P::REFRESH_ON_HIT {
                    row_stamps[way] = clock;
                }
                // Total: ways 0..occ hold Some meta by construction.
                if let Some(meta) = row_meta[way].as_mut() {
                    sink.hit(index, meta);
                }
                continue;
            }
            let meta = sink.miss(index, set, tag);
            clock += 1;
            if occ < row_tags.len() {
                row_tags[occ] = tag;
                row_stamps[occ] = clock;
                row_meta[occ] = Some(meta);
                occ += 1;
                continue;
            }
            let way = P::victim(&row_stamps[..occ], set_evictions, set);
            set_evictions += 1;
            evictions += 1;
            let evicted_tag = row_tags[way];
            let evicted_meta = row_meta[way].replace(meta);
            row_tags[way] = tag;
            row_stamps[way] = clock;
            if let Some(evicted_meta) = evicted_meta {
                sink.evicted(index, set, evicted_tag, evicted_meta);
            }
        }
        self.clock = clock;
        self.occ[set] = occ as u32;
        self.resident += occ - start_occ;
        self.set_evictions[set] = set_evictions;
        self.evictions += evictions;
        self.stats.record_bulk(hits, indices.len() as u64 - hits);
    }
}

impl<M> Drop for SetAssocCache<M> {
    fn drop(&mut self) {
        // Hand the flat arrays back to the thread-local pool so the
        // next cache of the same geometry reuses warm pages. The
        // metadata array is type-specific and dropped normally.
        crate::pool::recycle_u64(std::mem::take(&mut self.tags));
        crate::pool::recycle_u64(std::mem::take(&mut self.stamps));
        crate::pool::recycle_u32(std::mem::take(&mut self.occ));
        crate::pool::recycle_u32(std::mem::take(&mut self.set_evictions));
        if let Some(scratch) = self.scratch.take() {
            crate::pool::recycle_u32(scratch.counts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache<u32> {
        // 4 sets, 2 ways.
        SetAssocCache::new(CacheGeometry::new(512, 2, 64).unwrap())
    }

    fn dm() -> SetAssocCache<()> {
        // 4 sets, direct-mapped.
        SetAssocCache::new(CacheGeometry::new(256, 1, 64).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = dm();
        let l = LineAddr::new(5);
        assert!(c.probe(l).is_none());
        assert!(c.fill(l, ()).is_none());
        assert!(c.probe(l).is_some());
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = dm();
        // Lines 1 and 5 share set 1 in a 4-set cache.
        c.fill(LineAddr::new(1), ());
        let ev = c.fill(LineAddr::new(5), ()).unwrap();
        assert_eq!(ev.line, LineAddr::new(1));
        assert!(c.contains(LineAddr::new(5)));
        assert!(!c.contains(LineAddr::new(1)));
    }

    #[test]
    fn lru_respects_probe_order() {
        let mut c = tiny();
        // Set 0 holds lines 0, 4, 8, ... (4 sets).
        c.fill(LineAddr::new(0), 0);
        c.fill(LineAddr::new(4), 4);
        c.probe(LineAddr::new(0)); // 4 is now LRU
        let ev = c.fill(LineAddr::new(8), 8).unwrap();
        assert_eq!(ev.line, LineAddr::new(4));
        assert_eq!(ev.meta, 4);
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), 0);
        c.fill(LineAddr::new(4), 4);
        let _ = c.peek(LineAddr::new(0)); // must NOT refresh line 0
        let ev = c.fill(LineAddr::new(8), 8).unwrap();
        assert_eq!(ev.line, LineAddr::new(0));
    }

    #[test]
    fn fill_into_empty_way_evicts_nothing() {
        let mut c = tiny();
        assert!(c.fill(LineAddr::new(0), 1).is_none());
        assert!(c.fill(LineAddr::new(4), 2).is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(LineAddr::new(3), 7);
        assert_eq!(c.invalidate(LineAddr::new(3)), Some(7));
        assert_eq!(c.invalidate(LineAddr::new(3)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_candidate_matches_fill() {
        let mut c = tiny();
        assert_eq!(c.eviction_candidate(LineAddr::new(0)), None);
        c.fill(LineAddr::new(0), 0);
        assert_eq!(c.eviction_candidate(LineAddr::new(4)), None);
        c.fill(LineAddr::new(4), 4);
        let predicted = c.eviction_candidate(LineAddr::new(8)).unwrap();
        let actual = c.fill(LineAddr::new(8), 8).unwrap().line;
        assert_eq!(predicted, actual);
    }

    #[test]
    fn metadata_is_mutable_on_hit() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), 1);
        if let Some(m) = c.probe(LineAddr::new(0)) {
            *m = 99;
        }
        assert_eq!(c.peek(LineAddr::new(0)), Some(&99));
    }

    #[test]
    fn iter_reports_all_resident_lines() {
        let mut c = tiny();
        for n in [0u64, 1, 2, 3, 4] {
            c.fill(LineAddr::new(n), n as u32);
        }
        let mut lines: Vec<u64> = c.iter().map(|(l, _)| l.raw()).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fifo_ignores_probes() {
        let geom = CacheGeometry::new(512, 2, 64).unwrap();
        let mut c: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, Replacement::Fifo);
        c.fill(LineAddr::new(0), 0);
        c.fill(LineAddr::new(4), 4);
        c.probe(LineAddr::new(0)); // FIFO must NOT refresh line 0
        let ev = c.fill(LineAddr::new(8), 8).unwrap();
        assert_eq!(ev.line, LineAddr::new(0));
    }

    #[test]
    fn random_is_deterministic_and_consistent_with_candidate() {
        let geom = CacheGeometry::new(512, 2, 64).unwrap();
        let run = || {
            let mut c: SetAssocCache<()> =
                SetAssocCache::with_replacement(geom, Replacement::Random);
            let mut evicted = Vec::new();
            for n in 0..50u64 {
                let line = LineAddr::new(n);
                if !c.contains(line) {
                    let predicted = c.eviction_candidate(line);
                    let actual = c.fill(line, ()).map(|e| e.line);
                    assert_eq!(predicted, actual, "candidate must match fill victim");
                    if let Some(l) = actual {
                        evicted.push(l);
                    }
                }
            }
            evicted
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn random_spreads_victims_across_ways() {
        let geom = CacheGeometry::new(512, 4, 64).unwrap(); // 2 sets, 4 ways
        let mut c: SetAssocCache<u64> = SetAssocCache::with_replacement(geom, Replacement::Random);
        // Fill set 0, then keep inserting fresh lines and record which
        // resident line dies each time.
        let mut victims = std::collections::HashSet::new();
        for n in 0..200u64 {
            let line = LineAddr::new(n * 2); // even lines -> set 0
            if let Some(ev) = c.fill(line, n) {
                victims.insert(ev.line.raw() % 8);
            }
        }
        // All four ways should get victimised at some point.
        assert!(victims.len() >= 3, "victims {victims:?}");
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for n in 0..100 {
            c.fill(LineAddr::new(n), n as u32);
        }
        assert!(c.len() <= c.geometry().num_lines());
    }
}
