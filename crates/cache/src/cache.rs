//! An LRU set-associative cache with per-line metadata.

use sim_core::probe;
use sim_core::LineAddr;

use crate::{CacheGeometry, CacheStats};

/// Which resident line a full set sacrifices on a fill.
///
/// The paper's caches use LRU; FIFO and Random are provided for
/// substrate completeness (victim choice is itself a variable some of
/// the cited work explores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Replacement {
    /// Evict the least recently used line (default).
    #[default]
    Lru,
    /// Evict the oldest-filled line, ignoring hits.
    Fifo,
    /// Evict a pseudo-random line (deterministic per eviction count,
    /// so runs remain reproducible).
    Random,
}

/// A line displaced by a [`SetAssocCache::fill`].
///
/// Carries the evicted line's address (reconstructed from its tag and
/// set) and its metadata — for the paper's architectures the metadata
/// is the *conflict bit* that travels with the line to the victim
/// buffer or the Miss Classification Table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction<M> {
    /// The address of the displaced line.
    pub line: LineAddr,
    /// The metadata stored with the displaced line.
    pub meta: M,
}

#[derive(Debug, Clone)]
struct Way<M> {
    tag: u64,
    last_use: u64,
    filled_at: u64,
    meta: M,
}

#[derive(Debug, Clone, Default)]
struct CacheSet<M> {
    ways: Vec<Way<M>>,
}

/// A set-associative, write-allocate cache with true-LRU replacement
/// and per-line metadata of type `M`.
///
/// Timing lives elsewhere (the architecture models); this structure
/// answers only *what is resident* and *what gets displaced*. Probes
/// update LRU state, [`SetAssocCache::peek`] does not.
///
/// # Examples
///
/// ```
/// use cache_model::{CacheGeometry, SetAssocCache};
/// use sim_core::LineAddr;
///
/// // A tiny 2-set, 2-way cache to watch LRU happen.
/// let geom = CacheGeometry::new(256, 2, 64)?;
/// let mut c: SetAssocCache<u32> = SetAssocCache::new(geom);
/// let line = |n| LineAddr::new(n);
/// c.fill(line(0), 10);       // set 0
/// c.fill(line(2), 20);       // set 0 (second way)
/// c.probe(line(0));          // make line 0 most recent
/// let ev = c.fill(line(4), 30).unwrap();
/// assert_eq!(ev.line, line(2));  // LRU way displaced
/// assert_eq!(ev.meta, 20);
/// # Ok::<(), cache_model::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<M = ()> {
    geom: CacheGeometry,
    sets: Vec<CacheSet<M>>,
    clock: u64,
    stats: CacheStats,
    replacement: Replacement,
    evictions: u64,
    probed: bool,
}

impl<M> SetAssocCache<M> {
    /// Creates an empty cache with the given geometry and LRU
    /// replacement.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        Self::with_replacement(geom, Replacement::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    #[must_use]
    pub fn with_replacement(geom: CacheGeometry, replacement: Replacement) -> Self {
        let mut sets = Vec::with_capacity(geom.num_sets());
        for _ in 0..geom.num_sets() {
            sets.push(CacheSet {
                ways: Vec::with_capacity(geom.associativity() as usize),
            });
        }
        SetAssocCache {
            geom,
            sets,
            clock: 0,
            stats: CacheStats::default(),
            replacement,
            evictions: 0,
            probed: false,
        }
    }

    /// The replacement policy in use.
    #[must_use]
    pub const fn replacement(&self) -> Replacement {
        self.replacement
    }

    /// Opts this cache into per-set [`probe`] events
    /// ([`probe::ProbeEvent::SetFill`] / [`probe::ProbeEvent::SetEvict`]).
    ///
    /// Off by default so that secondary structures sharing the model
    /// (an L2, a shadow copy) do not pollute the L1's event stream;
    /// the unit that an experiment measures enables it at
    /// construction. No events are emitted either way unless a probe
    /// sink is installed.
    pub fn enable_set_probes(&mut self) {
        self.probed = true;
    }

    /// Index of the way a fill would displace in a full `set`.
    fn victim_way(&self, set_index: usize) -> usize {
        let ways = &self.sets[set_index].ways;
        match self.replacement {
            Replacement::Lru => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("full set has ways"),
            Replacement::Fifo => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.filled_at)
                .map(|(i, _)| i)
                .expect("full set has ways"),
            Replacement::Random => {
                // Deterministic per (eviction count, set): the same
                // victim is reported by eviction_candidate and taken
                // by the subsequent fill.
                let mut rng = sim_core::rng::SplitMix64::new(
                    self.evictions ^ (set_index as u64).rotate_left(32),
                );
                rng.next_below(ways.len() as u64) as usize
            }
        }
    }

    /// The cache's geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Access statistics recorded by [`Self::probe`].
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Looks a line up, updating recency and hit/miss statistics.
    ///
    /// Returns mutable access to the line's metadata on a hit so
    /// callers can, for instance, flip the conflict bit in place.
    pub fn probe(&mut self, line: LineAddr) -> Option<&mut M> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.geom.set_index(line);
        let tag = self.geom.tag(line);
        let way = self.sets[set].ways.iter_mut().find(|w| w.tag == tag);
        match way {
            Some(w) => {
                self.stats.record_hit();
                w.last_use = clock;
                Some(&mut w.meta)
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Looks a line up without touching recency or statistics.
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> Option<&M> {
        let set = self.geom.set_index(line);
        let tag = self.geom.tag(line);
        self.sets[set]
            .ways
            .iter()
            .find(|w| w.tag == tag)
            .map(|w| &w.meta)
    }

    /// Returns `true` if the line is resident.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line, displacing the LRU way of a full set.
    ///
    /// The new line becomes the most recently used in its set. Returns
    /// the displaced line, if any.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already resident —
    /// architectures must not double-fill (it would duplicate a tag
    /// within a set).
    pub fn fill(&mut self, line: LineAddr, meta: M) -> Option<Eviction<M>> {
        debug_assert!(!self.contains(line), "double fill of {line}");
        self.clock += 1;
        let clock = self.clock;
        let set_index = self.geom.set_index(line);
        let tag = self.geom.tag(line);
        let assoc = self.geom.associativity() as usize;
        if self.probed && probe::active() {
            probe::emit(probe::ProbeEvent::SetFill {
                set: set_index as u32,
            });
        }
        if self.sets[set_index].ways.len() < assoc {
            self.sets[set_index].ways.push(Way {
                tag,
                last_use: clock,
                filled_at: clock,
                meta,
            });
            return None;
        }
        // Displace the policy's victim.
        let way = self.victim_way(set_index);
        self.evictions += 1;
        if self.probed && probe::active() {
            probe::emit(probe::ProbeEvent::SetEvict {
                set: set_index as u32,
            });
        }
        let victim = &mut self.sets[set_index].ways[way];
        let evicted_tag = victim.tag;
        let evicted_meta = std::mem::replace(&mut victim.meta, meta);
        victim.tag = tag;
        victim.last_use = clock;
        victim.filled_at = clock;
        Some(Eviction {
            line: self.geom.line_from_parts(evicted_tag, set_index),
            meta: evicted_meta,
        })
    }

    /// Removes a line, returning its metadata if it was resident.
    ///
    /// Victim-cache swaps use this to pull a line out of the cache
    /// without filling a replacement.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<M> {
        let set = self.geom.set_index(line);
        let tag = self.geom.tag(line);
        let ways = &mut self.sets[set].ways;
        let pos = ways.iter().position(|w| w.tag == tag)?;
        Some(ways.swap_remove(pos).meta)
    }

    /// The line that would be displaced if a fill hit this set now.
    ///
    /// `None` if the set still has an empty way.
    #[must_use]
    pub fn eviction_candidate(&self, line: LineAddr) -> Option<LineAddr> {
        let set_index = self.geom.set_index(line);
        let set = &self.sets[set_index];
        if set.ways.len() < self.geom.associativity() as usize {
            return None;
        }
        let way = self.victim_way(set_index);
        Some(self.geom.line_from_parts(set.ways[way].tag, set_index))
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.ways.len()).sum()
    }

    /// `true` if no lines are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all resident lines and their metadata.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &M)> + '_ {
        self.sets.iter().enumerate().flat_map(move |(set, s)| {
            s.ways
                .iter()
                .map(move |w| (self.geom.line_from_parts(w.tag, set), &w.meta))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache<u32> {
        // 4 sets, 2 ways.
        SetAssocCache::new(CacheGeometry::new(512, 2, 64).unwrap())
    }

    fn dm() -> SetAssocCache<()> {
        // 4 sets, direct-mapped.
        SetAssocCache::new(CacheGeometry::new(256, 1, 64).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = dm();
        let l = LineAddr::new(5);
        assert!(c.probe(l).is_none());
        assert!(c.fill(l, ()).is_none());
        assert!(c.probe(l).is_some());
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = dm();
        // Lines 1 and 5 share set 1 in a 4-set cache.
        c.fill(LineAddr::new(1), ());
        let ev = c.fill(LineAddr::new(5), ()).unwrap();
        assert_eq!(ev.line, LineAddr::new(1));
        assert!(c.contains(LineAddr::new(5)));
        assert!(!c.contains(LineAddr::new(1)));
    }

    #[test]
    fn lru_respects_probe_order() {
        let mut c = tiny();
        // Set 0 holds lines 0, 4, 8, ... (4 sets).
        c.fill(LineAddr::new(0), 0);
        c.fill(LineAddr::new(4), 4);
        c.probe(LineAddr::new(0)); // 4 is now LRU
        let ev = c.fill(LineAddr::new(8), 8).unwrap();
        assert_eq!(ev.line, LineAddr::new(4));
        assert_eq!(ev.meta, 4);
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), 0);
        c.fill(LineAddr::new(4), 4);
        let _ = c.peek(LineAddr::new(0)); // must NOT refresh line 0
        let ev = c.fill(LineAddr::new(8), 8).unwrap();
        assert_eq!(ev.line, LineAddr::new(0));
    }

    #[test]
    fn fill_into_empty_way_evicts_nothing() {
        let mut c = tiny();
        assert!(c.fill(LineAddr::new(0), 1).is_none());
        assert!(c.fill(LineAddr::new(4), 2).is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(LineAddr::new(3), 7);
        assert_eq!(c.invalidate(LineAddr::new(3)), Some(7));
        assert_eq!(c.invalidate(LineAddr::new(3)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_candidate_matches_fill() {
        let mut c = tiny();
        assert_eq!(c.eviction_candidate(LineAddr::new(0)), None);
        c.fill(LineAddr::new(0), 0);
        assert_eq!(c.eviction_candidate(LineAddr::new(4)), None);
        c.fill(LineAddr::new(4), 4);
        let predicted = c.eviction_candidate(LineAddr::new(8)).unwrap();
        let actual = c.fill(LineAddr::new(8), 8).unwrap().line;
        assert_eq!(predicted, actual);
    }

    #[test]
    fn metadata_is_mutable_on_hit() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), 1);
        if let Some(m) = c.probe(LineAddr::new(0)) {
            *m = 99;
        }
        assert_eq!(c.peek(LineAddr::new(0)), Some(&99));
    }

    #[test]
    fn iter_reports_all_resident_lines() {
        let mut c = tiny();
        for n in [0u64, 1, 2, 3, 4] {
            c.fill(LineAddr::new(n), n as u32);
        }
        let mut lines: Vec<u64> = c.iter().map(|(l, _)| l.raw()).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fifo_ignores_probes() {
        let geom = CacheGeometry::new(512, 2, 64).unwrap();
        let mut c: SetAssocCache<u32> = SetAssocCache::with_replacement(geom, Replacement::Fifo);
        c.fill(LineAddr::new(0), 0);
        c.fill(LineAddr::new(4), 4);
        c.probe(LineAddr::new(0)); // FIFO must NOT refresh line 0
        let ev = c.fill(LineAddr::new(8), 8).unwrap();
        assert_eq!(ev.line, LineAddr::new(0));
    }

    #[test]
    fn random_is_deterministic_and_consistent_with_candidate() {
        let geom = CacheGeometry::new(512, 2, 64).unwrap();
        let run = || {
            let mut c: SetAssocCache<()> =
                SetAssocCache::with_replacement(geom, Replacement::Random);
            let mut evicted = Vec::new();
            for n in 0..50u64 {
                let line = LineAddr::new(n);
                if !c.contains(line) {
                    let predicted = c.eviction_candidate(line);
                    let actual = c.fill(line, ()).map(|e| e.line);
                    assert_eq!(predicted, actual, "candidate must match fill victim");
                    if let Some(l) = actual {
                        evicted.push(l);
                    }
                }
            }
            evicted
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn random_spreads_victims_across_ways() {
        let geom = CacheGeometry::new(512, 4, 64).unwrap(); // 2 sets, 4 ways
        let mut c: SetAssocCache<u64> = SetAssocCache::with_replacement(geom, Replacement::Random);
        // Fill set 0, then keep inserting fresh lines and record which
        // resident line dies each time.
        let mut victims = std::collections::HashSet::new();
        for n in 0..200u64 {
            let line = LineAddr::new(n * 2); // even lines -> set 0
            if let Some(ev) = c.fill(line, n) {
                victims.insert(ev.line.raw() % 8);
            }
        }
        // All four ways should get victimised at some point.
        assert!(victims.len() >= 3, "victims {victims:?}");
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for n in 0..100 {
            c.fill(LineAddr::new(n), n as u32);
        }
        assert!(c.len() <= c.geometry().num_lines());
    }
}
