//! Miss Status Holding Registers: non-blocking-miss bookkeeping.
//!
//! The paper's caches are non-blocking with up to 16 misses in flight;
//! when the limit is exceeded further misses stall the pipeline, and
//! prefetches are simply discarded. [`MshrFile`] implements exactly
//! that contract.

use sim_core::{Cycle, LineAddr};

/// What happened when a miss asked for an MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the line will be ready at the
    /// carried cycle.
    Allocated(Cycle),
    /// An entry for the same line was already in flight; the request
    /// coalesces and completes when that entry does.
    Coalesced(Cycle),
    /// The file is full. Demand misses must stall until
    /// [`MshrFile::earliest_ready`]; prefetches are dropped.
    Full {
        /// When the oldest outstanding miss completes (the earliest
        /// time an entry frees up).
        retry_at: Cycle,
    },
}

#[derive(Debug, Clone, Copy)]
struct MshrEntry {
    line: LineAddr,
    ready: Cycle,
}

/// A file of Miss Status Holding Registers.
///
/// Entries are retired lazily: every call first releases entries whose
/// fill has completed by `now`.
///
/// # Examples
///
/// ```
/// use cache_model::{MshrFile, MshrOutcome};
/// use sim_core::{Cycle, LineAddr};
///
/// let mut mshrs = MshrFile::new(2);
/// let now = Cycle::ZERO;
/// mshrs.request(LineAddr::new(1), now, now + 20);
/// mshrs.request(LineAddr::new(2), now, now + 30);
/// // Third distinct miss finds the file full.
/// assert!(matches!(
///     mshrs.request(LineAddr::new(3), now, now + 20),
///     MshrOutcome::Full { .. }
/// ));
/// // But by cycle 21 the first entry has retired.
/// assert!(matches!(
///     mshrs.request(LineAddr::new(3), Cycle::new(21), Cycle::new(41)),
///     MshrOutcome::Allocated(_)
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<MshrEntry>,
}

impl MshrFile {
    /// Creates a file with room for `capacity` outstanding misses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Requests an MSHR for a miss on `line` at time `now` whose fill
    /// would complete at `ready`.
    pub fn request(&mut self, line: LineAddr, now: Cycle, ready: Cycle) -> MshrOutcome {
        self.retire(now);
        if let Some(e) = self.entries.iter().find(|e| e.line == line) {
            return MshrOutcome::Coalesced(e.ready);
        }
        if self.entries.len() < self.capacity {
            self.entries.push(MshrEntry { line, ready });
            return MshrOutcome::Allocated(ready);
        }
        MshrOutcome::Full {
            retry_at: self.earliest_ready_inner(),
        }
    }

    /// Checks whether a miss on `line` is already in flight at `now`
    /// (coalescing), returning its completion time if so.
    ///
    /// Unlike [`Self::request`], this never allocates.
    pub fn lookup(&mut self, line: LineAddr, now: Cycle) -> Option<Cycle> {
        self.retire(now);
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.ready)
    }

    /// `true` if a new entry could be allocated at `now`.
    pub fn has_free(&mut self, now: Cycle) -> bool {
        self.retire(now);
        self.entries.len() < self.capacity
    }

    /// Allocates an entry unconditionally.
    ///
    /// Callers must have checked [`Self::has_free`]; this is the
    /// second half of a check-fetch-insert sequence where the fill
    /// latency is only known after querying the next level.
    ///
    /// # Panics
    ///
    /// Panics if the file is full.
    pub fn insert(&mut self, line: LineAddr, ready: Cycle) {
        assert!(
            self.entries.len() < self.capacity,
            "MSHR insert into full file"
        );
        self.entries.push(MshrEntry { line, ready });
    }

    /// Releases every entry whose fill has completed by `now`.
    pub fn retire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.ready > now);
    }

    /// Number of outstanding misses (after retiring completed ones).
    #[must_use]
    pub fn outstanding(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.entries.len()
    }

    /// The earliest completion time among outstanding misses, or
    /// `None` when the file is empty.
    #[must_use]
    pub fn earliest_ready(&self) -> Option<Cycle> {
        self.entries.iter().map(|e| e.ready).min()
    }

    fn earliest_ready_inner(&self) -> Cycle {
        self.earliest_ready()
            .expect("Full outcome implies nonempty file")
    }

    /// The file's capacity.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn coalesces_same_line() {
        let mut m = MshrFile::new(4);
        let now = Cycle::ZERO;
        assert_eq!(
            m.request(line(7), now, now + 100),
            MshrOutcome::Allocated(Cycle::new(100))
        );
        assert_eq!(
            m.request(line(7), now + 5, now + 105),
            MshrOutcome::Coalesced(Cycle::new(100))
        );
        assert_eq!(m.outstanding(now + 5), 1);
    }

    #[test]
    fn full_reports_earliest_retry() {
        let mut m = MshrFile::new(2);
        let now = Cycle::ZERO;
        m.request(line(1), now, now + 50);
        m.request(line(2), now, now + 20);
        match m.request(line(3), now, now + 20) {
            MshrOutcome::Full { retry_at } => assert_eq!(retry_at, Cycle::new(20)),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn retirement_frees_entries() {
        let mut m = MshrFile::new(1);
        m.request(line(1), Cycle::ZERO, Cycle::new(10));
        assert_eq!(m.outstanding(Cycle::new(9)), 1);
        assert_eq!(m.outstanding(Cycle::new(10)), 0);
        assert!(matches!(
            m.request(line(2), Cycle::new(10), Cycle::new(30)),
            MshrOutcome::Allocated(_)
        ));
    }

    #[test]
    fn paper_limit_of_sixteen() {
        let mut m = MshrFile::new(16);
        let now = Cycle::ZERO;
        for n in 0..16 {
            assert!(matches!(
                m.request(line(n), now, now + 100),
                MshrOutcome::Allocated(_)
            ));
        }
        assert!(matches!(
            m.request(line(99), now, now + 100),
            MshrOutcome::Full { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
