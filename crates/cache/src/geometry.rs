//! Cache geometry: size / associativity / line-size arithmetic.

use core::fmt;

use sim_core::{log2_exact, LineAddr};

/// An error constructing a [`CacheGeometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A parameter that must be a power of two was not.
    NotPowerOfTwo {
        /// Which parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The capacity is too small to hold even one line per way.
    TooSmall {
        /// Requested capacity in bytes.
        size_bytes: u64,
        /// Requested associativity.
        associativity: u32,
        /// Requested line size in bytes.
        line_size: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::TooSmall { size_bytes, associativity, line_size } => write!(
                f,
                "cache of {size_bytes} bytes cannot hold {associativity} ways of {line_size}-byte lines"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The shape of a cache: capacity, associativity and line size.
///
/// All address-field extraction (set index, tag) lives here so every
/// structure that mirrors the cache's indexing — the Miss
/// Classification Table above all — computes fields identically.
///
/// # Examples
///
/// ```
/// use cache_model::CacheGeometry;
/// use sim_core::Addr;
///
/// // The paper's L1: 16 KB direct-mapped, 64-byte lines => 256 sets.
/// let geom = CacheGeometry::new(16 * 1024, 1, 64)?;
/// assert_eq!(geom.num_sets(), 256);
/// let line = Addr::new(0x12345).line(64);
/// assert_eq!(geom.set_index(line), (0x12345 >> 6) as usize % 256);
/// # Ok::<(), cache_model::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheGeometry {
    size_bytes: u64,
    associativity: u32,
    line_size: u64,
    set_bits: u32,
}

impl CacheGeometry {
    /// Creates a geometry for a cache of `size_bytes` capacity,
    /// `associativity` ways, and `line_size`-byte lines.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is not a power of two,
    /// if `associativity` is zero, or if the capacity cannot hold at
    /// least one full set.
    pub fn new(size_bytes: u64, associativity: u32, line_size: u64) -> Result<Self, ConfigError> {
        if log2_exact(line_size).is_none() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "line size",
                value: line_size,
            });
        }
        if log2_exact(size_bytes).is_none() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "cache size",
                value: size_bytes,
            });
        }
        if associativity == 0 || log2_exact(u64::from(associativity)).is_none() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "associativity",
                value: u64::from(associativity),
            });
        }
        let set_bytes = line_size * u64::from(associativity);
        if size_bytes < set_bytes {
            return Err(ConfigError::TooSmall {
                size_bytes,
                associativity,
                line_size,
            });
        }
        let num_sets = size_bytes / set_bytes;
        // num_sets is a power of two because all inputs are.
        let set_bits = num_sets.trailing_zeros();
        Ok(CacheGeometry {
            size_bytes,
            associativity,
            line_size,
            set_bits,
        })
    }

    /// Total capacity in bytes.
    #[must_use]
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Number of ways per set (1 = direct-mapped).
    #[must_use]
    pub const fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Line size in bytes.
    #[must_use]
    pub const fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of sets.
    #[must_use]
    pub const fn num_sets(&self) -> usize {
        1 << self.set_bits
    }

    /// Number of index bits (log2 of the set count).
    #[must_use]
    pub const fn set_bits(&self) -> u32 {
        self.set_bits
    }

    /// Total number of lines the cache can hold.
    #[must_use]
    pub const fn num_lines(&self) -> usize {
        self.num_sets() * self.associativity as usize
    }

    /// The set a line maps to.
    #[must_use]
    pub fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() & ((1 << self.set_bits) - 1)) as usize
    }

    /// The tag of a line (the line address above the index bits).
    #[must_use]
    pub fn tag(&self, line: LineAddr) -> u64 {
        line.raw() >> self.set_bits
    }

    /// Reconstructs a line address from its tag and set index.
    ///
    /// Inverse of [`Self::set_index`] + [`Self::tag`]; used to name
    /// evicted lines.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `set` is out of range.
    #[must_use]
    pub fn line_from_parts(&self, tag: u64, set: usize) -> LineAddr {
        debug_assert!(set < self.num_sets());
        LineAddr::new((tag << self.set_bits) | set as u64)
    }

    /// Number of meaningful tag bits for a `bits`-bit address space.
    ///
    /// Used by the MCT partial-tag sweep (Figure 2) to know what
    /// "the full tag" means.
    #[must_use]
    pub fn full_tag_bits(&self, address_bits: u32) -> u32 {
        let line_bits = self.line_size.trailing_zeros();
        address_bits.saturating_sub(line_bits + self.set_bits)
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB {}-way, {}-byte lines ({} sets)",
            self.size_bytes / 1024,
            self.associativity,
            self.line_size,
            self.num_sets()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Addr;

    fn paper_l1() -> CacheGeometry {
        CacheGeometry::new(16 * 1024, 1, 64).unwrap()
    }

    #[test]
    fn paper_configurations() {
        let l1 = paper_l1();
        assert_eq!(l1.num_sets(), 256);
        assert_eq!(l1.num_lines(), 256);

        let l1_2way = CacheGeometry::new(16 * 1024, 2, 64).unwrap();
        assert_eq!(l1_2way.num_sets(), 128);
        assert_eq!(l1_2way.num_lines(), 256);

        let l2 = CacheGeometry::new(1024 * 1024, 2, 64).unwrap();
        assert_eq!(l2.num_sets(), 8192);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            CacheGeometry::new(10_000, 1, 64),
            Err(ConfigError::NotPowerOfTwo {
                what: "cache size",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(16 * 1024, 3, 64),
            Err(ConfigError::NotPowerOfTwo {
                what: "associativity",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(16 * 1024, 0, 64),
            Err(ConfigError::NotPowerOfTwo {
                what: "associativity",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(16 * 1024, 1, 48),
            Err(ConfigError::NotPowerOfTwo {
                what: "line size",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(64, 2, 64),
            Err(ConfigError::TooSmall { .. })
        ));
    }

    #[test]
    fn tag_index_round_trip() {
        let geom = paper_l1();
        for raw in [0u64, 0x40, 0x1234_5678, u64::MAX >> 8] {
            let line = Addr::new(raw).line(64);
            let set = geom.set_index(line);
            let tag = geom.tag(line);
            assert_eq!(geom.line_from_parts(tag, set), line);
        }
    }

    #[test]
    fn lines_one_cache_size_apart_share_a_set() {
        let geom = paper_l1();
        let a = Addr::new(0x0000).line(64);
        let b = Addr::new(16 * 1024).line(64);
        assert_eq!(geom.set_index(a), geom.set_index(b));
        assert_ne!(geom.tag(a), geom.tag(b));
    }

    #[test]
    fn full_tag_bits_for_paper_l1() {
        let geom = paper_l1();
        // 32-bit addresses: 32 - 6 (offset) - 8 (index) = 18 tag bits.
        assert_eq!(geom.full_tag_bits(32), 18);
        assert_eq!(geom.full_tag_bits(64), 50);
        assert_eq!(geom.full_tag_bits(10), 0);
    }

    #[test]
    fn display_mentions_shape() {
        assert_eq!(
            paper_l1().to_string(),
            "16 KB 1-way, 64-byte lines (256 sets)"
        );
    }
}
