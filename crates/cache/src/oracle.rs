//! The classic three-C miss classification (Hill), used as ground
//! truth when evaluating the Miss Classification Table.
//!
//! A miss in a set-associative cache is:
//!
//! * **compulsory** if the line has never been referenced before;
//! * **capacity** if a fully-associative LRU cache of the same total
//!   capacity would also have missed;
//! * **conflict** otherwise (the fully-associative cache would have
//!   hit — the miss exists only because of restricted placement).
//!
//! The paper groups compulsory with capacity ("non-conflict") when
//! scoring the MCT; [`OracleClass::is_conflict`] captures that split.

use std::collections::hash_map::Entry;
use std::collections::VecDeque;

use sim_core::hash::{FxHashMap, FxHashSet};
use sim_core::LineAddr;

/// The classic classification of one cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OracleClass {
    /// First-ever reference to the line.
    Compulsory,
    /// The fully-associative cache of equal capacity also missed.
    Capacity,
    /// Only the restricted placement caused the miss.
    Conflict,
}

impl OracleClass {
    /// `true` for conflict misses; compulsory and capacity misses are
    /// grouped as "non-conflict", matching the paper's convention.
    #[must_use]
    pub const fn is_conflict(self) -> bool {
        matches!(self, OracleClass::Conflict)
    }
}

/// A fully-associative LRU cache over line addresses, implemented with
/// lazy deletion: accesses push (line, stamp) onto a queue, and stale
/// queue entries are skipped during eviction.
#[derive(Debug, Clone)]
struct FullyAssocLru {
    capacity_lines: usize,
    /// line -> latest stamp for that line.
    stamps: FxHashMap<LineAddr, u64>,
    /// access order, possibly containing stale entries.
    order: VecDeque<(LineAddr, u64)>,
    clock: u64,
}

impl FullyAssocLru {
    fn new(capacity_lines: usize) -> Self {
        assert!(capacity_lines > 0, "oracle cache needs capacity");
        FullyAssocLru {
            capacity_lines,
            stamps: FxHashMap::with_capacity_and_hasher(capacity_lines * 2, Default::default()),
            order: VecDeque::with_capacity(capacity_lines * 2),
            clock: 0,
        }
    }

    /// References a line; returns `true` on hit.
    fn access(&mut self, line: LineAddr) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let hit = match self.stamps.entry(line) {
            Entry::Occupied(mut e) => {
                *e.get_mut() = clock;
                true
            }
            Entry::Vacant(e) => {
                e.insert(clock);
                false
            }
        };
        self.order.push_back((line, clock));
        if !hit {
            self.evict_to_capacity();
        }
        // Amortized compaction: drop stale entries once they dominate
        // the queue, so hit-heavy streams stay O(live lines).
        if self.order.len() > 2 * self.stamps.len().max(self.capacity_lines) {
            let stamps = &self.stamps;
            self.order.retain(|&(l, s)| stamps.get(&l) == Some(&s));
        }
        hit
    }

    fn evict_to_capacity(&mut self) {
        while self.stamps.len() > self.capacity_lines {
            let (line, stamp) = self
                .order
                .pop_front()
                .expect("stamps nonempty implies order nonempty");
            match self.stamps.get(&line) {
                Some(&latest) if latest == stamp => {
                    self.stamps.remove(&line);
                }
                // Stale entry: the line was re-referenced later.
                _ => {}
            }
        }
        // Opportunistically trim stale prefix entries so the queue
        // stays O(capacity) on hit-heavy streams.
        while let Some(&(line, stamp)) = self.order.front() {
            if self.stamps.get(&line) == Some(&stamp) {
                break;
            }
            self.order.pop_front();
        }
    }

    fn len(&self) -> usize {
        self.stamps.len()
    }
}

/// Ground-truth miss classifier: runs a fully-associative LRU shadow
/// cache and a compulsory-set next to the real cache.
///
/// Feed it **every** reference the real cache sees, in order, and ask
/// it to classify the ones that missed. (It must also observe the
/// hits — the shadow LRU state depends on them.)
///
/// # Examples
///
/// ```
/// use cache_model::oracle::{OracleClass, ThreeCClassifier};
/// use sim_core::LineAddr;
///
/// // Shadow model with room for 2 lines.
/// let mut oracle = ThreeCClassifier::new(2);
/// assert_eq!(oracle.observe(LineAddr::new(1)), OracleClass::Compulsory);
/// assert_eq!(oracle.observe(LineAddr::new(2)), OracleClass::Compulsory);
/// // Line 1 is still in a 2-line FA cache: if the real cache missed
/// // here, it was a conflict miss.
/// assert_eq!(oracle.observe(LineAddr::new(1)), OracleClass::Conflict);
/// ```
#[derive(Debug, Clone)]
pub struct ThreeCClassifier {
    shadow: FullyAssocLru,
    seen: FxHashSet<LineAddr>,
}

impl ThreeCClassifier {
    /// Creates a classifier whose shadow cache holds `capacity_lines`
    /// lines (the real cache's total line count).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero.
    #[must_use]
    pub fn new(capacity_lines: usize) -> Self {
        ThreeCClassifier {
            shadow: FullyAssocLru::new(capacity_lines),
            seen: FxHashSet::default(),
        }
    }

    /// Observes one reference and returns how a miss at this point
    /// *would* classify.
    ///
    /// Call this for every reference; ignore the return value for
    /// references that hit in the real cache.
    pub fn observe(&mut self, line: LineAddr) -> OracleClass {
        let first_touch = self.seen.insert(line);
        let shadow_hit = self.shadow.access(line);
        if first_touch {
            OracleClass::Compulsory
        } else if shadow_hit {
            OracleClass::Conflict
        } else {
            OracleClass::Capacity
        }
    }

    /// Number of lines currently resident in the shadow cache.
    #[must_use]
    pub fn shadow_len(&self) -> usize {
        self.shadow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn first_touch_is_compulsory() {
        let mut o = ThreeCClassifier::new(4);
        for n in 0..10 {
            assert_eq!(o.observe(line(n)), OracleClass::Compulsory);
        }
    }

    #[test]
    fn rereference_within_capacity_is_conflict() {
        let mut o = ThreeCClassifier::new(4);
        o.observe(line(0));
        o.observe(line(1));
        // Both fit in a 4-line FA cache, so a real-cache miss on
        // line 0 now can only come from placement conflicts.
        assert_eq!(o.observe(line(0)), OracleClass::Conflict);
    }

    #[test]
    fn rereference_beyond_capacity_is_capacity() {
        let mut o = ThreeCClassifier::new(2);
        o.observe(line(0));
        o.observe(line(1));
        o.observe(line(2)); // evicts 0 from the shadow
        assert_eq!(o.observe(line(0)), OracleClass::Capacity);
    }

    #[test]
    fn shadow_is_lru_not_fifo() {
        let mut o = ThreeCClassifier::new(2);
        o.observe(line(0));
        o.observe(line(1));
        o.observe(line(0)); // refresh 0; LRU is now 1
        o.observe(line(2)); // evicts 1, not 0
        assert_eq!(o.observe(line(0)), OracleClass::Conflict);
        assert_eq!(o.observe(line(1)), OracleClass::Capacity);
    }

    #[test]
    fn shadow_never_exceeds_capacity() {
        let mut o = ThreeCClassifier::new(8);
        let mut rng = sim_core::rng::SplitMix64::new(1);
        for _ in 0..10_000 {
            o.observe(line(rng.next_below(64)));
            assert!(o.shadow_len() <= 8);
        }
    }

    #[test]
    fn hit_heavy_stream_does_not_grow_queue_unboundedly() {
        let mut o = ThreeCClassifier::new(2);
        o.observe(line(0));
        o.observe(line(1));
        for _ in 0..100_000 {
            o.observe(line(0));
            o.observe(line(1));
        }
        // Amortized compaction must keep the order queue bounded.
        assert!(
            o.shadow.order.len() <= 8,
            "order queue grew to {}",
            o.shadow.order.len()
        );
    }

    #[test]
    fn is_conflict_groups_paper_style() {
        assert!(!OracleClass::Compulsory.is_conflict());
        assert!(!OracleClass::Capacity.is_conflict());
        assert!(OracleClass::Conflict.is_conflict());
    }
}
