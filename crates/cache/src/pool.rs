//! Thread-local recycling of the cache kernel's flat arrays.
//!
//! Experiment drivers construct one memory system per cell, and the
//! paper's 1 MB L2 alone needs ~300 KB of slot arrays — large enough
//! that every construction used to pay an `mmap` plus a page fault per
//! touched 4 KB page, and every drop an `munmap`. At the harness's
//! benchmark point (2 000 events per cell) those faults dominated the
//! per-cell cost. This pool keeps dropped arrays on the owning thread
//! and hands them back to the next [`crate::SetAssocCache`] of the
//! same size, so steady-state cell construction touches only warm
//! pages.
//!
//! Recycled buffers are returned **with their previous contents**
//! ([`take_u64`]); the kernel never reads a slot past a set's
//! occupancy count, so only the occupancy array needs zeroing
//! ([`take_u32_zeroed`]). Pools are `thread_local!`, so no
//! synchronisation is involved and worker threads' pools die with the
//! threads that own them.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use sim_core::hash::FxHashMap;

/// Buffers retained per (element type, length) — enough for the
/// handful of live caches an experiment cell juggles, small enough
/// that odd sizes cannot accumulate unbounded memory.
const MAX_PER_LEN: usize = 16;

// Process-wide traffic counters (the pools themselves stay
// thread-local and lock-free; one relaxed increment per take/recycle
// is noise next to the allocation it replaces). Surfaced in the
// `trace-repro/1` runtime-metrics record.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REUSES: AtomicU64 = AtomicU64::new(0);
static RECYCLES: AtomicU64 = AtomicU64::new(0);

/// Process-wide pool traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests that fell through to a fresh heap allocation.
    pub allocs: u64,
    /// Requests served by recycling a pooled buffer.
    pub reuses: u64,
    /// Buffers returned to a pool on drop (bounded; overflow past
    /// [`MAX_PER_LEN`] per length is freed, not counted).
    pub recycles: u64,
}

/// Snapshot of the process-wide pool counters.
#[must_use]
pub fn stats() -> PoolStats {
    PoolStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        reuses: REUSES.load(Ordering::Relaxed),
        recycles: RECYCLES.load(Ordering::Relaxed),
    }
}

thread_local! {
    static U64_POOL: RefCell<FxHashMap<usize, Vec<Box<[u64]>>>> =
        RefCell::new(FxHashMap::default());
    static U32_POOL: RefCell<FxHashMap<usize, Vec<Box<[u32]>>>> =
        RefCell::new(FxHashMap::default());
}

/// A `u64` buffer of exactly `len` elements. Recycled buffers keep
/// their previous contents; fresh ones are zeroed. Callers must not
/// read elements they have not written. Public so the streaming
/// replay pipeline's chunk buffers flow through the same pool (and
/// the same counters) as the kernel arrays.
pub fn take_u64(len: usize) -> Box<[u64]> {
    match U64_POOL.with_borrow_mut(|pool| pool.get_mut(&len).and_then(Vec::pop)) {
        Some(buf) => {
            REUSES.fetch_add(1, Ordering::Relaxed);
            buf
        }
        None => {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            vec![0; len].into_boxed_slice()
        }
    }
}

/// A zeroed `u32` buffer of exactly `len` elements.
pub fn take_u32_zeroed(len: usize) -> Box<[u32]> {
    match U32_POOL.with_borrow_mut(|pool| pool.get_mut(&len).and_then(Vec::pop)) {
        Some(mut buf) => {
            REUSES.fetch_add(1, Ordering::Relaxed);
            buf.fill(0);
            buf
        }
        None => {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            vec![0; len].into_boxed_slice()
        }
    }
}

/// Returns a buffer taken with [`take_u64`] to the pool.
pub fn recycle_u64(buf: Box<[u64]>) {
    if buf.is_empty() {
        return;
    }
    U64_POOL.with_borrow_mut(|pool| {
        let slot = pool.entry(buf.len()).or_default();
        if slot.len() < MAX_PER_LEN {
            slot.push(buf);
            RECYCLES.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Returns a buffer taken with [`take_u32_zeroed`] to the pool.
pub fn recycle_u32(buf: Box<[u32]>) {
    if buf.is_empty() {
        return;
    }
    U32_POOL.with_borrow_mut(|pool| {
        let slot = pool.entry(buf.len()).or_default();
        if slot.len() < MAX_PER_LEN {
            slot.push(buf);
            RECYCLES.fetch_add(1, Ordering::Relaxed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_buffer() {
        let mut buf = take_u64(4099);
        buf[0] = 0xdead;
        recycle_u64(buf);
        let again = take_u64(4099);
        // Same length back (possibly the same allocation, contents
        // preserved — that is the contract callers must tolerate).
        assert_eq!(again.len(), 4099);
    }

    #[test]
    fn u32_take_is_always_zeroed() {
        let mut buf = take_u32_zeroed(513);
        buf.fill(7);
        recycle_u32(buf);
        let again = take_u32_zeroed(513);
        assert!(again.iter().all(|&x| x == 0));
    }

    #[test]
    fn lengths_do_not_mix() {
        recycle_u64(vec![9; 64].into_boxed_slice());
        assert_eq!(take_u64(65).len(), 65);
        assert_eq!(take_u64(64).len(), 64);
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..100 {
            recycle_u64(vec![0; 32].into_boxed_slice());
        }
        U64_POOL.with_borrow(|pool| {
            assert!(pool.get(&32).is_none_or(|v| v.len() <= MAX_PER_LEN));
        });
    }
}
