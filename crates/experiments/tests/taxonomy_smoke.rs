//! Smoke tests threading the kernel-taxonomy workloads (`uniform`,
//! `working_set_{128,512}`) through the figure-driver machinery: the
//! same `replay_for` → `replay_accuracy` pipeline fig1 runs for the
//! SPEC95 analogs, swept over the paper's four cache configurations
//! at 1 and 4 worker threads. The reports must be sane (full
//! coverage, non-degenerate miss behavior) and bit-identical across
//! thread counts.

use mct::accuracy::{AccuracyEvaluator, AccuracyReport};
use mct::TagBits;

const EVENTS: usize = 5_000;

fn evaluate(workload: &workloads::Workload, geom: cache_model::CacheGeometry) -> AccuracyReport {
    let mut eval = AccuracyEvaluator::new(geom, TagBits::Full);
    let trace = experiments::replay_for(workload, &geom, EVENTS);
    experiments::replay_accuracy(&trace, &mut eval);
    eval.finish()
}

#[test]
fn taxonomy_workloads_survive_the_figure_sweep() {
    for workload in workloads::taxonomy_suite() {
        for (config, geom) in experiments::fig1::configurations() {
            let report = evaluate(&workload, geom);
            assert_eq!(
                report.accesses,
                EVENTS as u64,
                "{config}/{}: incomplete replay",
                workload.name()
            );
            assert!(
                report.misses > 0,
                "{config}/{}: a degenerate all-hit trace exercises nothing",
                workload.name()
            );
            assert!(
                report.misses <= report.accesses,
                "{config}/{}: more misses than accesses",
                workload.name()
            );
        }
    }
}

#[test]
fn taxonomy_sweep_is_thread_count_invariant() {
    let cells: Vec<(workloads::Workload, String, cache_model::CacheGeometry)> =
        workloads::taxonomy_suite()
            .into_iter()
            .flat_map(|w| {
                experiments::fig1::configurations()
                    .into_iter()
                    .map(move |(name, geom)| (w, name, geom))
            })
            .collect();
    let run = |threads: usize| -> Vec<AccuracyReport> {
        sim_core::parallel::par_map_threads(threads, cells.clone(), |(w, _, geom)| {
            evaluate(&w, geom)
        })
    };
    let serial = run(1);
    let parallel = run(4);
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            a,
            b,
            "cell {} ({}/{}) differs between 1 and 4 threads",
            i,
            cells[i].1,
            cells[i].0.name()
        );
    }
}

#[test]
fn taxonomy_working_sets_separate_on_capacity() {
    // The two working-set patterns are sized around the 16 KB cache's
    // 256-line capacity: 128 lines fits, 512 lines does not, so the
    // smaller sweep must miss strictly less on the small cache.
    let geom = experiments::fig1::configurations()[0].1;
    let small = evaluate(&workloads::by_name("working_set_128").unwrap(), geom);
    let large = evaluate(&workloads::by_name("working_set_512").unwrap(), geom);
    assert!(
        (small.misses as f64 / small.accesses as f64)
            < (large.misses as f64 / large.accesses as f64),
        "working_set_128 ({}/{}) should miss less than working_set_512 ({}/{})",
        small.misses,
        small.accesses,
        large.misses,
        large.accesses
    );
}
