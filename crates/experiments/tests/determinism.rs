//! The repo's byte-identity guarantees, end to end:
//!
//! * **streamed vs arena** — replaying a memoized [`experiments::trace_for`]
//!   slice yields exactly the events the workload's streaming source
//!   generates;
//! * **arena memoization** — a repeated `(workload, seed, events)` key
//!   returns the *same allocation* (pointer-equal `Arc`), not a copy;
//! * **serial vs parallel** — rendered figure reports are bit-for-bit
//!   identical whether the scheduler runs inline or on worker threads;
//! * **telemetry accounting** — the per-figure `simulated_events`
//!   formulas match the live counter the drivers feed.
//!
//! Everything lives in ONE `#[test]` because the worker-thread cap
//! ([`sim_core::parallel::set_max_threads`]) is process-global state:
//! splitting these into separate tests would let the harness run them
//! concurrently and race on it.

use std::sync::Arc;

use experiments::cli::Target;
use trace_gen::{TraceEvent, TraceSource};

#[test]
fn repro_is_deterministic_across_schedules_and_replay() {
    const EVENTS: usize = 3_000;

    // Streamed generation and arena replay are the same event stream.
    for w in workloads::full_suite() {
        let mut src = w.source(experiments::SEED);
        let streamed: Vec<TraceEvent> = (0..EVENTS).map(|_| src.next_event()).collect();
        let arena = experiments::trace_for(&w, EVENTS);
        assert_eq!(
            streamed.as_slice(),
            &arena[..],
            "{}: arena replay must match streaming",
            w.name()
        );
    }

    // The arena memoizes: same key, same allocation.
    let suite = workloads::full_suite();
    let first = experiments::trace_for(&suite[0], EVENTS);
    let again = experiments::trace_for(&suite[0], EVENTS);
    assert!(
        Arc::ptr_eq(&first, &again),
        "repeated key must return the cached Arc, not a new copy"
    );
    let other_len = experiments::trace_for(&suite[0], EVENTS / 2);
    assert!(
        !Arc::ptr_eq(&first, &other_len),
        "a different event count is a different trace"
    );

    // Serial reference run, with the telemetry formulas cross-checked
    // against the live counter while nothing else is running.
    sim_core::parallel::set_max_threads(1);
    let before = experiments::telemetry::events_simulated();
    let fig1_serial = Target::Fig1.run(EVENTS);
    let fig1_counted = experiments::telemetry::events_simulated() - before;
    assert_eq!(
        fig1_counted,
        Target::Fig1.simulated_events(EVENTS),
        "fig1 event formula must match the live counter"
    );
    let before = experiments::telemetry::events_simulated();
    let fig3_serial = Target::Fig3.run(EVENTS);
    let fig3_counted = experiments::telemetry::events_simulated() - before;
    assert_eq!(
        fig3_counted,
        Target::Fig3.simulated_events(EVENTS),
        "fig3 event formula must match the live counter"
    );

    // Parallel runs render byte-identical reports.
    sim_core::parallel::set_max_threads(4);
    let fig1_parallel = Target::Fig1.run(EVENTS);
    let fig3_parallel = Target::Fig3.run(EVENTS);
    sim_core::parallel::set_max_threads(0);
    assert_eq!(
        fig1_serial, fig1_parallel,
        "fig1 must be bit-for-bit identical serial vs parallel"
    );
    assert_eq!(
        fig3_serial, fig3_parallel,
        "fig3 must be bit-for-bit identical serial vs parallel"
    );
}
