//! Golden tests pinning the machine-readable schemas the workspace
//! emits: `bench-repro/2` (from `repro --bench-json`), `obs-repro/1`
//! (from `repro --probe`), `fault-repro/1` (from
//! `repro --checkpoint`), `trace-repro/1` (from `repro --trace-out`),
//! `mrc-repro/1` (from `repro --mrc`), and `lint-repro/2` (from
//! `cargo run -p simlint -- --json`).
//! Downstream tooling parses these files across PRs, so any field
//! rename, reordering, or escaping change must show up as a deliberate
//! diff here (and a schema version bump).

use experiments::checkpoint::{self, CellEntry, CellStatus, CheckpointWriter};
use experiments::probe::{render_jsonl, CellRecord, ProbeMode, RunHeader};
use experiments::telemetry::{BenchReport, FigureBench};
use experiments::tracing::{self, MetricsSnapshot, TraceHeader};
use sim_core::parallel::WorkerTally;
use sim_core::probe::{EpochSnapshot, Registry};
use sim_core::span::{ScopeKind, ScopeRecord, SpanRecord};
use trace_gen::arena::ArenaStats;

#[test]
fn bench_repro_2_json_is_stable() {
    let report = BenchReport {
        threads: 2,
        events_per_workload: 1000,
        figures: vec![
            FigureBench::ok("fig1", 1.5, 72_000),
            FigureBench {
                degraded: true,
                ..FigureBench::ok("fig\"odd\\name", 0.0, 10)
            },
            FigureBench {
                resumed: true,
                ..FigureBench::ok("fig3", 0.0, 60_000)
            },
        ],
        total_wall_seconds: 2.0,
    };
    let arena = ArenaStats {
        hits: 7,
        misses: 3,
        traces: 3,
        resident_events: 9_000,
    };
    let expected = concat!(
        "{\n",
        "  \"schema\": \"bench-repro/2\",\n",
        "  \"threads\": 2,\n",
        "  \"events_per_workload\": 1000,\n",
        "  \"figures\": [\n",
        "    {\"name\": \"fig1\", \"wall_seconds\": 1.500000, \"events\": 72000, \"events_per_sec\": 48000.000000, \"degraded\": false, \"resumed\": false},\n",
        "    {\"name\": \"fig\\\"odd\\\\name\", \"wall_seconds\": 0.000000, \"events\": 10, \"events_per_sec\": 0.000000, \"degraded\": true, \"resumed\": false},\n",
        "    {\"name\": \"fig3\", \"wall_seconds\": 0.000000, \"events\": 60000, \"events_per_sec\": 0.000000, \"degraded\": false, \"resumed\": true}\n",
        "  ],\n",
        "  \"total\": {\"wall_seconds\": 2.000000, \"events\": 132010, \"events_per_sec\": 66005.000000},\n",
        "  \"arena\": {\"traces\": 3, \"resident_events\": 9000, \"replay_hits\": 7, \"materializations\": 3}\n",
        "}\n",
    );
    assert_eq!(report.to_json_with_arena(&arena), expected);
}

#[test]
fn fault_repro_1_jsonl_is_stable() {
    let dir = std::env::temp_dir().join("golden_fault_repro");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.jsonl");

    let writer = CheckpointWriter::create(&path, 2000, &["fig1", "fig2"]).unwrap();
    writer
        .record(&CellEntry {
            target: "fig1".to_owned(),
            status: CellStatus::Ok,
            events: 144_000,
            // Exercise the escapes a rendered table needs: newlines
            // and quotes.
            rendered: "line \"one\"\nline two\n".to_owned(),
            message: None,
        })
        .unwrap();
    writer
        .record(&CellEntry {
            target: "fig2".to_owned(),
            status: CellStatus::Degraded,
            events: 0,
            rendered: "fig2: degraded (injected worker fault (attempt 5))".to_owned(),
            message: Some("injected worker fault (attempt 5)".to_owned()),
        })
        .unwrap();
    drop(writer);

    let expected = concat!(
        "{\"schema\":\"fault-repro/1\",\"events_per_workload\":2000,\"targets\":[\"fig1\",\"fig2\"]}\n",
        "{\"type\":\"cell\",\"target\":\"fig1\",\"status\":\"ok\",\"events\":144000,\"rendered\":\"line \\\"one\\\"\\u000aline two\\u000a\"}\n",
        "{\"type\":\"cell\",\"target\":\"fig2\",\"status\":\"degraded\",\"events\":0,\"rendered\":\"fig2: degraded (injected worker fault (attempt 5))\",\"message\":\"injected worker fault (attempt 5)\"}\n",
    );
    let written = std::fs::read_to_string(&path).unwrap();
    assert_eq!(written, expected);

    // The checkpoint must round-trip through the workspace's own JSON
    // reader and its own loader.
    let values = experiments::jsonl::parse_lines(&written).expect("golden checkpoint parses");
    assert_eq!(values[0].str_field("schema"), Some(checkpoint::SCHEMA));
    assert_eq!(
        values[1].str_field("rendered"),
        Some("line \"one\"\nline two\n")
    );
    let loaded = checkpoint::load(&path, 2000);
    assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
    assert_eq!(loaded.cells.len(), 2);
    assert_eq!(loaded.cells[0].rendered, "line \"one\"\nline two\n");
    assert_eq!(loaded.cells[1].status, CellStatus::Degraded);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn obs_repro_1_jsonl_is_stable() {
    let mut totals = Registry::new();
    totals.bump("access", 4);
    totals.bump("access.hit", 3);
    totals.bump("classify.conflict", 2);
    totals.record("epoch.misses", 1);
    let epoch_cell = CellRecord {
        target: "fig1",
        // Exercise string escaping in the cell label.
        cell: "16KB \"DM\"/swim".to_owned(),
        epochs: vec![EpochSnapshot {
            epoch: 0,
            accesses: 4,
            hits: 3,
            conflict: 2,
            capacity: 0,
            alias: 1,
            oracle_agree: 1,
            oracle_total: 2,
            hot_sets: vec![(5, 2)],
        }],
        totals,
        hot_sets: vec![(5, 2)],
        raw: None,
    };
    let raw_cell = CellRecord {
        target: "fig2",
        cell: "1 bit/swim".to_owned(),
        epochs: Vec::new(),
        totals: Registry::new(),
        hot_sets: Vec::new(),
        raw: Some("{\"kind\":\"access\",\"hit\":true}\n".to_owned()),
    };
    let header = RunHeader {
        mode: ProbeMode::Epoch(4),
        events_per_workload: 4,
        targets: vec!["fig1", "fig2"],
    };
    let expected = concat!(
        "{\"schema\":\"obs-repro/1\",\"mode\":\"epoch\",\"epoch_len\":4,\"events_per_workload\":4,\"targets\":[\"fig1\",\"fig2\"]}\n",
        "{\"type\":\"epoch\",\"target\":\"fig1\",\"cell\":\"16KB \\\"DM\\\"/swim\",\"epoch\":0,\"accesses\":4,\"hits\":3,\"misses\":1,\"conflict\":2,\"capacity\":0,\"alias\":1,\"oracle_agree\":1,\"oracle_total\":2,\"hot_sets\":[[5,2]]}\n",
        "{\"type\":\"cell\",\"target\":\"fig1\",\"cell\":\"16KB \\\"DM\\\"/swim\",\"epochs\":1,\"counters\":{\"access\":4,\"access.hit\":3,\"classify.conflict\":2},\"hist\":{\"epoch.misses\":{\"count\":1,\"mean\":1.000000,\"max\":1}},\"hot_sets\":[[5,2]]}\n",
        "{\"type\":\"event\",\"target\":\"fig2\",\"cell\":\"1 bit/swim\",\"kind\":\"access\",\"hit\":true}\n",
        "{\"type\":\"cell\",\"target\":\"fig2\",\"cell\":\"1 bit/swim\",\"epochs\":0,\"counters\":{},\"hist\":{},\"hot_sets\":[]}\n",
        "{\"type\":\"totals\",\"cells\":2,\"counters\":{\"access\":4,\"access.hit\":3,\"classify.conflict\":2}}\n",
    );
    let rendered = render_jsonl(&[epoch_cell, raw_cell], &header);
    assert_eq!(rendered, expected);

    // The golden text must also round-trip through the workspace's own
    // JSON reader (escapes included).
    let values = experiments::jsonl::parse_lines(&rendered).expect("golden JSONL parses");
    assert_eq!(values.len(), 6);
    assert_eq!(values[1].str_field("cell"), Some("16KB \"DM\"/swim"));
}

#[test]
fn trace_repro_1_jsonl_is_stable() {
    let records = vec![
        ScopeRecord {
            kind: ScopeKind::Cell,
            // Exercise string escaping in the cell label.
            target: "fig1".to_owned(),
            label: "16KB \"DM\"/swim".to_owned(),
            worker: 2,
            spans: vec![
                SpanRecord {
                    name: "cell_run",
                    id: 1,
                    parent: 0,
                    depth: 0,
                    start_ns: 1_000,
                    dur_ns: 9_500,
                    events: 0,
                },
                SpanRecord {
                    name: "replay_block",
                    id: 2,
                    parent: 1,
                    depth: 1,
                    start_ns: 2_000,
                    dur_ns: 7_000,
                    events: 2_000,
                },
            ],
        },
        ScopeRecord {
            kind: ScopeKind::Subsystem,
            target: "arena".to_owned(),
            label: "swim/1/2000".to_owned(),
            worker: 1,
            spans: vec![SpanRecord {
                name: "arena_materialize",
                id: 1,
                parent: 0,
                depth: 0,
                start_ns: 500,
                dur_ns: 400,
                events: 2_000,
            }],
        },
    ];
    let header = TraceHeader {
        logical: false,
        events_per_workload: 2_000,
        targets: vec!["fig1"],
    };
    let metrics = MetricsSnapshot {
        arena: ArenaStats {
            hits: 7,
            misses: 3,
            traces: 3,
            resident_events: 9_000,
        },
        decomposed_hits: 5,
        decomposed_misses: 2,
        partitioned_hits: 4,
        partitioned_misses: 1,
        partitioned_resident_bytes: 4_800,
        pool: cache_model::pool::PoolStats {
            allocs: 4,
            reuses: 12,
            recycles: 16,
        },
        workers: vec![
            (
                1,
                WorkerTally {
                    cells: 3,
                    chunks: 2,
                    busy_ns: 10_000,
                },
            ),
            (
                2,
                WorkerTally {
                    cells: 1,
                    chunks: 1,
                    busy_ns: 9_500,
                },
            ),
        ],
        fault_injected: 1,
        fault_exhausted: 0,
        degraded: 0,
    };
    let expected = concat!(
        "{\"schema\":\"trace-repro/1\",\"logical\":false,\"events_per_workload\":2000,\"targets\":[\"fig1\"]}\n",
        "{\"type\":\"span\",\"scope\":\"cell\",\"target\":\"fig1\",\"label\":\"16KB \\\"DM\\\"/swim\",\"worker\":2,\"name\":\"cell_run\",\"id\":1,\"parent\":0,\"depth\":0,\"start_ns\":1000,\"dur_ns\":9500,\"events\":0}\n",
        "{\"type\":\"span\",\"scope\":\"cell\",\"target\":\"fig1\",\"label\":\"16KB \\\"DM\\\"/swim\",\"worker\":2,\"name\":\"replay_block\",\"id\":2,\"parent\":1,\"depth\":1,\"start_ns\":2000,\"dur_ns\":7000,\"events\":2000}\n",
        "{\"type\":\"span\",\"scope\":\"subsystem\",\"target\":\"arena\",\"label\":\"swim/1/2000\",\"worker\":1,\"name\":\"arena_materialize\",\"id\":1,\"parent\":0,\"depth\":0,\"start_ns\":500,\"dur_ns\":400,\"events\":2000}\n",
        "{\"type\":\"metrics\",\"arena\":{\"hits\":7,\"misses\":3,\"traces\":3,\"resident_events\":9000},\"decomposed\":{\"hits\":5,\"misses\":2,\"partitioned\":{\"hits\":4,\"misses\":1,\"resident_bytes\":4800}},\"pool\":{\"allocs\":4,\"reuses\":12,\"recycles\":16},\"workers\":[{\"worker\":1,\"cells\":3,\"chunks\":2,\"busy_ns\":10000},{\"worker\":2,\"cells\":1,\"chunks\":1,\"busy_ns\":9500}],\"fault\":{\"injected\":1,\"exhausted\":0,\"degraded\":0}}\n",
        "{\"type\":\"totals\",\"scopes\":2,\"spans\":3,\"events\":4000}\n",
    );
    let rendered = tracing::render_jsonl(&records, &header, Some(&metrics));
    assert_eq!(rendered, expected);

    // The golden text must round-trip through the workspace's own JSON
    // reader, and every span name must carry a registered prefix (the
    // same invariants `obs verify-trace` checks in CI).
    let values = experiments::jsonl::parse_lines(&rendered).expect("golden trace parses");
    assert_eq!(values.len(), 6);
    assert_eq!(values[0].str_field("schema"), Some("trace-repro/1"));
    assert_eq!(values[1].str_field("label"), Some("16KB \"DM\"/swim"));
    for v in &values {
        if v.str_field("type") == Some("span") {
            let name = v.str_field("name").unwrap();
            assert!(sim_core::span::name_registered(name), "{name}");
        }
    }
    let verdict = experiments::traceview::verify(&rendered).expect("golden trace verifies");
    assert!(verdict.contains("trace OK"), "{verdict}");

    // The logical rendering of the same records zeroes every
    // machine-dependent field and withholds the metrics record.
    let logical_header = TraceHeader {
        logical: true,
        ..header
    };
    let logical = tracing::render_jsonl(&records, &logical_header, Some(&metrics));
    assert!(!logical.contains("\"type\":\"metrics\""));
    assert!(logical.contains("\"worker\":0,\"name\":\"cell_run\",\"id\":1,\"parent\":0,\"depth\":0,\"start_ns\":0,\"dur_ns\":0"));
}

#[test]
fn mrc_repro_1_jsonl_is_stable() {
    let run = experiments::mrc::MrcRun {
        sample: Some(0.25),
        events: 2000,
        curves: vec![experiments::mrc::WorkloadCurve {
            // Exercise string escaping in the workload name.
            workload: "swim \"odd\"".to_owned(),
            events: 2000,
            sampled_events: 512,
            distinct_lines: 40,
            points: vec![
                mrc::CurvePoint {
                    capacity_lines: 16,
                    miss_ratio: 0.5,
                },
                mrc::CurvePoint {
                    capacity_lines: 256,
                    miss_ratio: 0.125,
                },
            ],
        }],
        cells: vec![experiments::mrc::CapacityCell {
            config: "16KB DM".to_owned(),
            workload: "swim \"odd\"".to_owned(),
            capacity_lines: 256,
            mrc_miss_ratio: 0.125,
            mct_capacity_ratio: 0.1,
            real_miss_ratio: 0.2,
        }],
    };
    let expected = concat!(
        "{\"schema\":\"mrc-repro/1\",\"mode\":\"sampled\",\"sample_rate\":0.250000,\"events\":2000,\"workloads\":1,\"cells\":1}\n",
        "{\"type\":\"curve\",\"workload\":\"swim \\\"odd\\\"\",\"events\":2000,\"sampled_events\":512,\"distinct_lines\":40,\"points\":[[16,0.500000],[256,0.125000]]}\n",
        "{\"type\":\"cell\",\"config\":\"16KB DM\",\"workload\":\"swim \\\"odd\\\"\",\"capacity_lines\":256,\"mrc_miss_ratio\":0.125000,\"mct_capacity_ratio\":0.100000,\"real_miss_ratio\":0.200000}\n",
    );
    let rendered = run.to_jsonl();
    assert_eq!(rendered, expected);

    // The golden text must round-trip through the workspace's own JSON
    // reader (escapes included) and carry the registered schema.
    let values = experiments::jsonl::parse_lines(&rendered).expect("golden mrc JSONL parses");
    assert_eq!(values.len(), 3);
    assert_eq!(
        values[0].str_field("schema"),
        Some(sim_core::registry::SCHEMA_MRC)
    );
    assert_eq!(values[1].str_field("workload"), Some("swim \"odd\""));
    let points = values[1].get("points").and_then(|v| v.as_array()).unwrap();
    assert_eq!(points.len(), 2);
    assert_eq!(values[2].u64_field("capacity_lines"), Some(256));

    // ... and render through the `obs mrc` view without loss.
    let report = experiments::mrc::render(&rendered).expect("golden mrc renders");
    assert!(report.contains("swim \"odd\""), "{report}");
    assert!(report.contains("rate=0.25"), "{report}");
}

#[test]
fn lint_repro_2_jsonl_is_stable() {
    let report = simlint::Report {
        findings: vec![
            simlint::Finding::new(
                "wallclock",
                "crates/cpu/src/baseline.rs",
                7,
                "wall-clock access with an \"odd\\quote\"".to_owned(),
            ),
            simlint::Finding::new(
                "transitive-panic",
                "crates/cache/src/cache.rs",
                9,
                "panicking call (expect) reachable from hot entry point `access_block`".to_owned(),
            )
            .with_path(vec![
                "access_block (crates/cache/src/cache.rs:3)".to_owned(),
                "victim (crates/cache/src/cache.rs:8)".to_owned(),
            ]),
        ],
        waived: 1,
        files_scanned: 101,
    };
    let expected = concat!(
        "{\"schema\":\"lint-repro/2\",\"rules\":[\"bench-prefix\",\"default-hasher\",\"hot-path-alloc\",\"probe-guard\",\"registry-drift\",\"span-name\",\"transitive-panic\",\"unseeded-rng\",\"waiver\",\"wallclock\"],\"files_scanned\":101}\n",
        "{\"type\":\"finding\",\"rule\":\"wallclock\",\"file\":\"crates/cpu/src/baseline.rs\",\"line\":7,\"message\":\"wall-clock access with an \\\"odd\\\\quote\\\"\",\"path\":[]}\n",
        "{\"type\":\"finding\",\"rule\":\"transitive-panic\",\"file\":\"crates/cache/src/cache.rs\",\"line\":9,\"message\":\"panicking call (expect) reachable from hot entry point `access_block`\",\"path\":[\"access_block (crates/cache/src/cache.rs:3)\",\"victim (crates/cache/src/cache.rs:8)\"]}\n",
        "{\"type\":\"summary\",\"findings\":2,\"waived\":1,\"files_scanned\":101}\n",
    );
    let rendered = report.render_json();
    assert_eq!(rendered, expected);
    assert!(rendered.starts_with(&format!("{{\"schema\":\"{}\"", simlint::SCHEMA)));
    assert_eq!(simlint::SCHEMA, sim_core::registry::SCHEMA_LINT);

    // The lint JSONL must round-trip through the same reader the other
    // two schemas use, so CI tooling needs exactly one parser.
    let values = experiments::jsonl::parse_lines(&rendered).expect("lint JSONL parses");
    assert_eq!(values.len(), 4);
    assert_eq!(values[0].str_field("schema"), Some("lint-repro/2"));
    let rules = values[0].get("rules").and_then(|v| v.as_array()).unwrap();
    assert_eq!(rules.len(), simlint::rules::RULE_NAMES.len());
    assert_eq!(values[1].str_field("rule"), Some("wallclock"));
    assert_eq!(values[1].u64_field("line"), Some(7));
    assert_eq!(
        values[1].str_field("message"),
        Some("wall-clock access with an \"odd\\quote\"")
    );
    let path = values[2].get("path").and_then(|v| v.as_array()).unwrap();
    assert_eq!(path.len(), 2, "call-path evidence survives the round trip");
    assert_eq!(values[3].u64_field("findings"), Some(2));
    assert_eq!(values[3].u64_field("waived"), Some(1));
    assert_eq!(values[3].u64_field("files_scanned"), Some(101));
}
