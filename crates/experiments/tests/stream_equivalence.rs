//! The PR's two replay-mode guarantees, end to end:
//!
//! * **stream vs arena** — `repro --stream` pipes each workload
//!   generator through the chunked constant-memory pipeline and must
//!   render figure reports byte-identical to arena replay, at any
//!   worker-thread count;
//! * **partitioned vs trace order** — above
//!   [`cache_model::SORT_SLOT_THRESHOLD`] the drivers replay the
//!   memoized set-partitioned form, which must produce the exact
//!   accuracy report of per-event trace-order replay.
//!
//! Everything lives in ONE `#[test]` because stream mode
//! ([`experiments::set_stream_mode`]) and the worker-thread cap
//! ([`sim_core::parallel::set_max_threads`]) are process-global:
//! separate tests would race on them.

use cache_model::CacheGeometry;
use experiments::cli::Target;
use mct::accuracy::AccuracyEvaluator;
use mct::TagBits;

#[test]
fn stream_and_partitioned_replay_match_arena_trace_order() {
    const EVENTS: usize = 3_000;

    // Arena-mode reference reports, serial.
    sim_core::parallel::set_max_threads(1);
    assert!(!experiments::stream_mode(), "stream mode must default off");
    let fig1_arena = Target::Fig1.run(EVENTS);
    let fig2_arena = Target::Fig2.run(EVENTS);

    // Streaming replay, serial: byte-identical reports.
    experiments::set_stream_mode(true);
    let fig1_stream = Target::Fig1.run(EVENTS);
    let fig2_stream = Target::Fig2.run(EVENTS);
    assert_eq!(
        fig1_arena, fig1_stream,
        "fig1 must be bit-for-bit identical arena vs stream (1 thread)"
    );
    assert_eq!(
        fig2_arena, fig2_stream,
        "fig2 must be bit-for-bit identical arena vs stream (1 thread)"
    );

    // Streaming replay on worker threads: still byte-identical.
    sim_core::parallel::set_max_threads(4);
    let fig1_stream4 = Target::Fig1.run(EVENTS);
    assert_eq!(
        fig1_arena, fig1_stream4,
        "fig1 must be bit-for-bit identical arena vs stream (4 threads)"
    );
    experiments::set_stream_mode(false);
    sim_core::parallel::set_max_threads(0);

    // A streamed trace longer than one chunk exercises torn chunk
    // boundaries in the pipeline itself (not just the figure sweep).
    let big = experiments::STREAM_CHUNK + 1_537;
    let w = workloads::by_name("gcc").expect("gcc analog exists");
    let geom = CacheGeometry::new(16 * 1024, 2, 32).unwrap();
    let mut reference = AccuracyEvaluator::new(geom, TagBits::Low(8));
    let arena_trace = experiments::replay_for(&w, &geom, big);
    experiments::replay_accuracy(&arena_trace, &mut reference);
    experiments::set_stream_mode(true);
    let stream_trace = experiments::replay_for(&w, &geom, big);
    let mut streamed = AccuracyEvaluator::new(geom, TagBits::Low(8));
    experiments::replay_accuracy(&stream_trace, &mut streamed);
    experiments::set_stream_mode(false);
    assert_eq!(
        reference.report(),
        streamed.report(),
        "chunked streaming must match arena replay across chunk seams"
    );

    // Above the sort threshold `replay_for` hands back the memoized
    // partitioned form; its report must equal per-event trace-order
    // replay of the same decomposed trace.
    let mrc_geom = CacheGeometry::new(4 * 1024 * 1024, 2, 64).unwrap();
    assert!(mrc_geom.num_lines() > cache_model::SORT_SLOT_THRESHOLD);
    let replay = experiments::replay_for(&w, &mrc_geom, EVENTS);
    match &replay {
        experiments::ReplayTrace::Arena { partitioned, .. } => {
            assert!(
                partitioned.is_some(),
                "above-threshold geometry must carry the partitioned form"
            );
        }
        experiments::ReplayTrace::Stream { .. } => panic!("arena mode expected"),
    }
    let mut via_partitioned = AccuracyEvaluator::new(mrc_geom, TagBits::Low(8));
    experiments::replay_accuracy(&replay, &mut via_partitioned);
    let decomposed = experiments::decomposed_for(&w, &mrc_geom, EVENTS);
    let mut via_events = AccuracyEvaluator::new(mrc_geom, TagBits::Low(8));
    decomposed.for_each(|set, tag| via_events.observe_parts(set, tag));
    assert_eq!(
        via_partitioned.report(),
        via_events.report(),
        "partitioned replay must match per-event trace-order replay"
    );
}
