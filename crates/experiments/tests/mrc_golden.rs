//! Golden test for the `obs mrc` view: the committed fixture
//! `tests/fixtures/MRC_fixture.jsonl` rendered byte-for-byte against
//! the committed expected report. A formatting change to the view
//! must show up as a deliberate diff to the `.txt` fixture.

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn mrc_report_matches_golden() {
    let report = experiments::mrc::render(&fixture("MRC_fixture.jsonl")).expect("fixture renders");
    assert_eq!(report, fixture("MRC_fixture.report.txt"));
}

#[test]
fn fixture_round_trips_through_the_jsonl_reader() {
    let text = fixture("MRC_fixture.jsonl");
    let values = experiments::jsonl::parse_lines(&text).expect("fixture parses");
    assert_eq!(values.len(), 8);
    assert_eq!(
        values[0].str_field("schema"),
        Some(sim_core::registry::SCHEMA_MRC)
    );
    let curves = values
        .iter()
        .filter(|v| v.str_field("type") == Some("curve"))
        .count();
    let cells = values
        .iter()
        .filter(|v| v.str_field("type") == Some("cell"))
        .count();
    assert_eq!((curves, cells), (3, 4));
}
