//! Cross-ground-truth check: the MRC engine and the three-C shadow
//! oracle implement the *same* mathematical object — a
//! fully-associative LRU cache of the geometry's line capacity — via
//! unrelated code (an order-statistic tree over stack distances vs. a
//! lazy-deletion LRU queue). On the Figure 1 smoke sweep their
//! capacity-miss counts must therefore agree **exactly**: an access
//! misses the oracle's shadow cache (Compulsory or Capacity class)
//! iff its LRU stack distance is at least the capacity (or the line
//! is cold). Any disagreement cell is printed with both counts.

use cache_model::oracle::{OracleClass, ThreeCClassifier};
use mrc::StackDistanceEngine;

/// Small smoke-sweep event count: 4 configurations × the full
/// workload suite stays a sub-second test at opt-level 1.
const EVENTS: usize = 4_000;

/// Streams a workload's first `EVENTS` line addresses (64 B lines,
/// the paper's line size) at the experiments seed.
fn lines_of(workload: &workloads::Workload) -> Vec<u64> {
    let mut source = workload.source(experiments::SEED);
    (0..EVENTS)
        .map(|_| source.next_event().access.addr.line(64).raw())
        .collect()
}

#[test]
fn mrc_capacity_estimate_matches_three_c_oracle_exactly() {
    let mut disagreements: Vec<String> = Vec::new();
    for (config, geom) in experiments::fig1::configurations() {
        let capacity = geom.num_lines();
        for workload in experiments::mrc::workload_suite() {
            let lines = lines_of(&workload);

            let mut oracle = ThreeCClassifier::new(capacity);
            let mut oracle_fa_misses = 0u64;
            for &line in &lines {
                match oracle.observe(sim_core::LineAddr::new(line)) {
                    OracleClass::Compulsory | OracleClass::Capacity => oracle_fa_misses += 1,
                    OracleClass::Conflict => {}
                }
            }

            let mut engine = StackDistanceEngine::new();
            for &line in &lines {
                engine.record_line(line);
            }
            let mrc_fa_misses = engine.histogram().tail(capacity as u64);

            if mrc_fa_misses != oracle_fa_misses {
                disagreements.push(format!(
                    "{config}/{}: oracle {} vs mrc {} FA misses at {capacity} lines",
                    workload.name(),
                    oracle_fa_misses,
                    mrc_fa_misses,
                ));
            }
        }
    }
    assert!(
        disagreements.is_empty(),
        "MRC and three-C oracle disagree on {} cell(s):\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
}

#[test]
fn mrc_driver_cells_carry_the_oracle_ratio() {
    // The driver's cross-check cells compute `mrc_miss_ratio` through
    // the decomposed block-replay path; recomputing the oracle ratio
    // from a raw stream must give the identical f64 (same integer
    // counts, same division).
    let run = experiments::mrc::run(EVENTS, None);
    let mut disagreements: Vec<String> = Vec::new();
    for cell in &run.cells {
        let workload = workloads::by_name(&cell.workload).expect("cell workload exists");
        let mut oracle = ThreeCClassifier::new(cell.capacity_lines as usize);
        let mut fa_misses = 0u64;
        for line in lines_of(&workload) {
            if !matches!(
                oracle.observe(sim_core::LineAddr::new(line)),
                OracleClass::Conflict
            ) {
                fa_misses += 1;
            }
        }
        let oracle_ratio = fa_misses as f64 / EVENTS as f64;
        if cell.mrc_miss_ratio != oracle_ratio {
            disagreements.push(format!(
                "{}/{}: driver {} vs oracle {oracle_ratio}",
                cell.config, cell.workload, cell.mrc_miss_ratio,
            ));
        }
    }
    assert!(
        disagreements.is_empty(),
        "driver MRC ratio deviates from the oracle on {} cell(s):\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
}
