//! Probe-layer guarantees, end to end:
//!
//! * every figure target produces valid, parseable `obs-repro/1` JSONL
//!   under `--probe epoch:N`;
//! * the rendered probe document is **byte-identical** across
//!   `--threads 1` and `--threads 4` (cells fold their own events on
//!   the worker thread that runs them, and records are sorted);
//! * the stdout figure tables are unchanged by an armed probe, and a
//!   disabled probe collects nothing;
//! * raw mode streams parseable per-event records.
//!
//! One `#[test]` because both the probe configuration
//! ([`experiments::probe::configure`]) and the worker-thread cap
//! ([`sim_core::parallel::set_max_threads`]) are process-global.

use experiments::cli::Target;
use experiments::probe::{self, ProbeMode, RunHeader};

fn run_all(events: usize) -> (Vec<String>, String) {
    probe::configure(Some(ProbeMode::Epoch(500)));
    let reports: Vec<String> = Target::ALL.iter().map(|t| t.run(events)).collect();
    let records = probe::drain();
    let header = RunHeader {
        mode: ProbeMode::Epoch(500),
        events_per_workload: events,
        targets: Target::ALL.iter().map(|t| t.name()).collect(),
    };
    (reports, probe::render_jsonl(&records, &header))
}

#[test]
fn probe_output_is_deterministic_and_tables_unchanged() {
    const EVENTS: usize = 1_000;

    // Reference: probes disabled, serial.
    sim_core::parallel::set_max_threads(1);
    probe::configure(None);
    let plain: Vec<String> = Target::ALL.iter().map(|t| t.run(EVENTS)).collect();
    assert!(
        probe::drain().is_empty(),
        "disabled probe must collect nothing"
    );

    // Probed serial run: same stdout tables, valid JSONL, every target
    // contributes cells.
    let (probed_reports, jsonl_serial) = run_all(EVENTS);
    assert_eq!(
        plain, probed_reports,
        "an armed probe must not change the rendered figure tables"
    );
    let values = experiments::jsonl::parse_lines(&jsonl_serial).expect("valid obs-repro/1 JSONL");
    assert_eq!(values[0].str_field("schema"), Some("obs-repro/1"));
    for t in Target::ALL {
        assert!(
            values
                .iter()
                .any(|v| v.str_field("type") == Some("cell")
                    && v.str_field("target") == Some(t.name())),
            "{} must contribute at least one probe cell",
            t.name()
        );
    }
    // The folded access totals are real (the simulators actually
    // emitted through the probe layer).
    let totals = values.last().expect("totals footer");
    assert_eq!(totals.str_field("type"), Some("totals"));
    let access = totals
        .get("counters")
        .and_then(|c| c.u64_field("access"))
        .unwrap_or(0);
    assert!(access > 0, "no access events reached the probe sinks");

    // Parallel run: byte-identical probe document.
    sim_core::parallel::set_max_threads(4);
    let (_, jsonl_parallel) = run_all(EVENTS);
    assert_eq!(
        jsonl_serial, jsonl_parallel,
        "probe JSONL must be byte-identical at any thread count"
    );

    // Raw mode: per-event records parse and carry cell context.
    probe::configure(Some(ProbeMode::Raw));
    let _ = Target::Fig1.run(200);
    let records = probe::drain();
    assert!(!records.is_empty());
    let header = RunHeader {
        mode: ProbeMode::Raw,
        events_per_workload: 200,
        targets: vec![Target::Fig1.name()],
    };
    let raw = probe::render_jsonl(&records, &header);
    let values = experiments::jsonl::parse_lines(&raw).expect("valid raw JSONL");
    assert!(values
        .iter()
        .any(|v| v.str_field("type") == Some("event") && v.str_field("kind").is_some()));

    // Leave the process clean for any test that runs after us.
    probe::configure(None);
    sim_core::parallel::set_max_threads(0);
}
