//! Golden tests for the trace analytics views: `obs timeline`,
//! `obs flame`, and `obs phases` each rendered against the committed
//! fixture trace `tests/fixtures/TRACE_fixture.jsonl` and compared
//! byte-for-byte to a committed expected report. A formatting change
//! to any view must show up as a deliberate diff to the `.txt`
//! fixtures.

use experiments::traceview;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn fixture_trace_verifies() {
    let report = traceview::verify(&fixture("TRACE_fixture.jsonl")).expect("fixture verifies");
    assert_eq!(
        report,
        "trace OK: 6 scopes, 10 spans, all names registered\n"
    );
}

#[test]
fn timeline_matches_golden() {
    let report = traceview::timeline(&fixture("TRACE_fixture.jsonl")).expect("timeline renders");
    assert_eq!(report, fixture("TRACE_fixture.timeline.txt"));
}

#[test]
fn flame_matches_golden() {
    let report = traceview::flame(&fixture("TRACE_fixture.jsonl")).expect("flame renders");
    assert_eq!(report, fixture("TRACE_fixture.flame.txt"));
}

#[test]
fn phases_matches_golden() {
    let report = traceview::phases(&fixture("TRACE_fixture.jsonl")).expect("phases renders");
    assert_eq!(report, fixture("TRACE_fixture.phases.txt"));
}
