//! Checkpoint/resume round-trips against the real `repro` binary:
//!
//! * a sweep killed mid-run (`--crash-after`) and resumed produces
//!   stdout **byte-identical** to an uninterrupted run;
//! * a truncated (torn-write) checkpoint degrades gracefully — the
//!   torn cell re-runs, the output is still byte-identical;
//! * a sweep degraded by persistent faults exits nonzero, and a clean
//!   `--resume` afterwards heals it back to the fault-free output.
//!
//! Each scenario spawns its own processes and its own temp dir, so
//! the tests are free to run concurrently.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Exit code `repro --crash-after` uses for its simulated kill.
const CRASH_EXIT: i32 = 3;

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("repro stdout is UTF-8")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro_ckpt_{name}"));
    // Stale state from a previous run must not leak into this one.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The shared sweep shape: two figures, serial, small traces. Serial
/// (`--threads 1`) pins the cell order so `--crash-after 1` always
/// kills between fig1 and fig2.
fn sweep_args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = vec!["--threads", "1", "--events", "400"];
    args.extend_from_slice(extra);
    args.extend_from_slice(&["fig1", "fig2"]);
    args
}

fn baseline_stdout() -> String {
    let out = repro(&sweep_args(&[]));
    assert!(
        out.status.success(),
        "baseline run failed: {}",
        stderr_of(&out)
    );
    stdout_of(&out)
}

#[test]
fn killed_and_resumed_sweep_matches_uninterrupted_run() {
    let dir = scratch_dir("kill_resume");
    let ckpt = dir.join("ckpt.jsonl");
    let ckpt_str = ckpt.to_str().unwrap();
    let baseline = baseline_stdout();

    // Kill after the first cell is checkpointed.
    let crashed = repro(&sweep_args(&[
        "--checkpoint",
        ckpt_str,
        "--crash-after",
        "1",
    ]));
    assert_eq!(
        crashed.status.code(),
        Some(CRASH_EXIT),
        "crash-after must exit {CRASH_EXIT}: {}",
        stderr_of(&crashed)
    );
    assert!(stderr_of(&crashed).contains("simulating a kill"));
    let ckpt_text = std::fs::read_to_string(&ckpt).expect("checkpoint written before the kill");
    assert!(ckpt_text.contains("\"schema\":\"fault-repro/1\""));
    assert!(ckpt_text.contains("\"target\":\"fig1\""));
    assert!(
        !ckpt_text.contains("\"target\":\"fig2\""),
        "the kill must land before fig2 completes"
    );

    // Resume: fig1 reprints from the checkpoint, fig2 runs fresh.
    let resumed = repro(&sweep_args(&["--checkpoint", ckpt_str, "--resume"]));
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        stderr_of(&resumed)
    );
    assert!(
        stderr_of(&resumed).contains("resuming: 1 of 2"),
        "stderr: {}",
        stderr_of(&resumed)
    );
    assert_eq!(
        stdout_of(&resumed),
        baseline,
        "killed+resumed sweep must be byte-identical to an uninterrupted run"
    );

    // The merged checkpoint now covers both cells, so a second resume
    // re-runs nothing.
    let idle = repro(&sweep_args(&["--checkpoint", ckpt_str, "--resume"]));
    assert!(idle.status.success());
    assert!(stderr_of(&idle).contains("resuming: 2 of 2"));
    assert_eq!(stdout_of(&idle), baseline);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_checkpoint_degrades_gracefully() {
    let dir = scratch_dir("torn");
    let ckpt = dir.join("ckpt.jsonl");
    let ckpt_str = ckpt.to_str().unwrap();
    let baseline = baseline_stdout();

    // A complete checkpointed run, then tear the tail off the last
    // line — the classic half-flushed-then-killed shape.
    let full = repro(&sweep_args(&["--checkpoint", ckpt_str]));
    assert!(full.status.success(), "{}", stderr_of(&full));
    let text = std::fs::read_to_string(&ckpt).unwrap();
    assert!(text.ends_with('\n'));
    std::fs::write(&ckpt, &text[..text.len() - 10]).unwrap();
    tear_then_resume_matches(&ckpt, &baseline, "resuming: 1 of 2");

    // An outright corrupt checkpoint (not even a JSON header) is
    // ignored wholesale: warn, run everything, same bytes.
    std::fs::write(&ckpt, "not json at all\n").unwrap();
    tear_then_resume_matches(&ckpt, &baseline, "");

    std::fs::remove_dir_all(&dir).ok();
}

fn tear_then_resume_matches(ckpt: &Path, baseline: &str, expect_resume: &str) {
    let out = repro(&sweep_args(&[
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--resume",
    ]));
    assert!(out.status.success(), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("[ckpt]"),
        "a damaged checkpoint must warn: {err}"
    );
    if !expect_resume.is_empty() {
        assert!(err.contains(expect_resume), "stderr: {err}");
    }
    assert_eq!(
        stdout_of(&out),
        baseline,
        "damage must cost re-runs, never bytes"
    );
}

#[test]
fn persistent_faults_degrade_then_a_clean_resume_heals() {
    let dir = scratch_dir("heal");
    let ckpt = dir.join("ckpt.jsonl");
    let ckpt_str = ckpt.to_str().unwrap();
    let baseline = baseline_stdout();

    // Persistent faults at rate 1.0 defeat every retry: the sweep
    // completes (no wedge, no abort) but every cell degrades and the
    // run exits nonzero.
    let degraded = repro(&sweep_args(&[
        "--checkpoint",
        ckpt_str,
        "--fault",
        "7:1.0",
        "--fault-persistent",
    ]));
    assert_eq!(degraded.status.code(), Some(1), "{}", stderr_of(&degraded));
    let out = stdout_of(&degraded);
    assert!(out.contains("degraded ("), "stdout: {out}");
    let err = stderr_of(&degraded);
    assert!(err.contains("[fault] plan installed"));
    assert!(err.contains("exhausted retries"));

    // A clean resume ignores the degraded entries (only `ok` cells are
    // skippable) and reproduces the fault-free bytes.
    let healed = repro(&sweep_args(&["--checkpoint", ckpt_str, "--resume"]));
    assert!(healed.status.success(), "{}", stderr_of(&healed));
    assert_eq!(
        stdout_of(&healed),
        baseline,
        "a degraded sweep must heal to the fault-free output on clean resume"
    );

    std::fs::remove_dir_all(&dir).ok();
}
