//! Chaos differential property: under any *recoverable* fault plan —
//! transient bursts at any site subset, any seed, any rate — the repro
//! pipeline's rendered tables and probe JSONL are **byte-identical**
//! to the fault-free run, at every thread count. Determinism must
//! survive injection, retry, and backoff, not just the happy path.
//!
//! Recoverability is by construction, not by luck:
//! `MAX_RECOVERABLE_BURST < max_attempts`, so a non-persistent plan
//! can never exhaust a retry budget (pinned in
//! `sim_core/tests/panic_recovery.rs`), and worker trips fire *before*
//! the cell body, so a retried cell's side effects happen exactly
//! once.
//!
//! Everything lives in ONE proptest (the only test in this binary)
//! because the fault plan, the probe sink, the worker-thread cap, and
//! the trace arenas are process-global state.

use experiments::cli::Target;
use experiments::probe::{render_jsonl, ProbeMode, RunHeader};
use proptest::prelude::*;
use sim_core::fault::{self, FaultPlan, FaultSite, RetryPolicy};
use trace_gen::arena::TraceArena;
use trace_gen::decomposed::DecomposedArena;

const EVENTS: usize = 800;
const EPOCH: u64 = 400;
const TARGETS: [Target; 2] = [Target::Fig1, Target::Fig3];

/// Runs the figure suite the way `repro` does — probe configured,
/// targets through the recovering scheduler — and returns
/// `(rendered tables, obs JSONL)`. The arenas are cleared first so
/// every run re-materializes and the `ArenaMaterialize` site actually
/// fires instead of hitting the memoized entries of the previous run.
fn run_suite(threads: usize) -> (String, String) {
    TraceArena::global().clear();
    DecomposedArena::global().clear();
    sim_core::parallel::set_max_threads(threads);
    experiments::probe::configure(Some(ProbeMode::Epoch(EPOCH)));

    let outcomes = experiments::try_par_map(TARGETS.to_vec(), |target| target.run(EVENTS));
    let rendered: Vec<String> = outcomes
        .into_iter()
        .map(|cell| cell.expect("a recoverable plan must never degrade a cell"))
        .collect();

    let records = experiments::probe::drain();
    let header = RunHeader {
        mode: ProbeMode::Epoch(EPOCH),
        events_per_workload: EVENTS,
        targets: TARGETS.iter().map(|t| t.name()).collect(),
    };
    let obs = render_jsonl(&records, &header);
    experiments::probe::configure(None);
    (rendered.join("\n"), obs)
}

/// Builds the site subset a drawn bitmask selects (always non-empty:
/// masks are drawn from `1..16`).
fn sites_from_mask(mask: u8) -> Vec<FaultSite> {
    FaultSite::ALL
        .into_iter()
        .filter(|site| mask & site.bit() != 0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn recoverable_fault_plans_leave_every_byte_unchanged(
        seed in 0u64..1_000_000,
        rate_pct in 5u32..101,
        mask in 1u8..16,
    ) {
        fault::clear();
        fault::silence_injected_panics();

        // Fault-free reference, which must itself be thread-invariant
        // (the pre-existing determinism guarantee this suite extends).
        let baseline = run_suite(1);
        prop_assert_eq!(
            &run_suite(4), &baseline,
            "fault-free runs must already be thread-invariant"
        );

        let sites = sites_from_mask(mask);
        let plan = FaultPlan::new(seed, f64::from(rate_pct) / 100.0)
            .with_sites(&sites)
            // Zero-sleep retries: the backoff *schedule* is pinned by
            // sim_core's unit tests; here only determinism is on trial.
            .with_retry(RetryPolicy {
                max_attempts: 5,
                base_delay_micros: 0,
                max_delay_micros: 0,
            });

        for threads in [1usize, 4] {
            fault::install(plan);
            let chaotic = run_suite(threads);
            let stats = fault::stats();
            fault::clear();
            prop_assert!(
                chaotic.0 == baseline.0,
                "rendered tables diverged under plan seed={} rate={}% sites={:?} threads={} \
                 ({} faults injected)",
                seed, rate_pct, sites, threads, stats.injected
            );
            prop_assert!(
                chaotic.1 == baseline.1,
                "probe JSONL diverged under plan seed={} rate={}% sites={:?} threads={} \
                 ({} faults injected)",
                seed, rate_pct, sites, threads, stats.injected
            );
            prop_assert_eq!(
                stats.exhausted, 0,
                "transient bursts must never exhaust a retry budget"
            );
            // Rate >= 5% over hundreds of arrivals: a plan that never
            // fires would make this whole property vacuous.
            prop_assert!(
                stats.injected > 0,
                "plan seed={} rate={}% sites={:?} never injected — vacuous case",
                seed, rate_pct, sites
            );
        }
        sim_core::parallel::set_max_threads(0);
    }
}
