//! Span-layer guarantees, end to end:
//!
//! * every figure target produces valid, verifiable `trace-repro/1`
//!   JSONL under an armed span layer;
//! * under the logical clock the rendered trace is **byte-identical**
//!   across `--threads 1` and `--threads 4` (scopes are collected per
//!   logical cell and drained in a sorted order, and the logical
//!   render zeroes every machine-dependent field);
//! * the stdout figure tables are unchanged by an armed span layer,
//!   and a disarmed layer collects nothing.
//!
//! One `#[test]` because both the span layer (`sim_core::span`) and
//! the worker-thread cap ([`sim_core::parallel::set_max_threads`]) are
//! process-global.

use experiments::cli::Target;
use experiments::tracing::{self, TraceHeader};

fn run_all(events: usize) -> (Vec<String>, String) {
    tracing::arm(true);
    let reports: Vec<String> = Target::ALL.iter().map(|t| t.run(events)).collect();
    let records = tracing::drain();
    let header = TraceHeader {
        logical: true,
        events_per_workload: events,
        targets: Target::ALL.iter().map(|t| t.name()).collect(),
    };
    (reports, tracing::render_jsonl(&records, &header, None))
}

#[test]
fn trace_output_is_deterministic_and_tables_unchanged() {
    const EVENTS: usize = 1_000;

    // Reference: tracing off, serial. This pass also warms the global
    // trace arenas, so both traced runs below replay from cache —
    // scope structure must not depend on which run happened to
    // materialize a shared trace.
    sim_core::parallel::set_max_threads(1);
    let plain: Vec<String> = Target::ALL.iter().map(|t| t.run(EVENTS)).collect();
    assert!(
        tracing::drain().is_empty(),
        "disarmed span layer must collect nothing"
    );

    // Traced serial run: same stdout tables, a verifiable trace, every
    // target contributes a figure scope with real event counts.
    let (traced_reports, trace_serial) = run_all(EVENTS);
    assert_eq!(
        plain, traced_reports,
        "an armed span layer must not change the rendered figure tables"
    );
    let verdict = experiments::traceview::verify(&trace_serial).expect("trace verifies");
    assert!(verdict.contains("trace OK"), "{verdict}");
    let values = experiments::jsonl::parse_lines(&trace_serial).expect("valid trace-repro/1");
    assert_eq!(values[0].str_field("schema"), Some("trace-repro/1"));
    for t in Target::ALL {
        assert!(
            values.iter().any(|v| v.str_field("scope") == Some("figure")
                && v.str_field("target") == Some(t.name())),
            "{} must contribute a figure scope",
            t.name()
        );
    }
    let totals = values.last().expect("totals footer");
    assert_eq!(totals.str_field("type"), Some("totals"));
    assert!(
        totals.u64_field("events").unwrap_or(0) > 0,
        "replay spans must attribute events"
    );
    assert!(
        !values
            .iter()
            .any(|v| v.str_field("type") == Some("metrics")),
        "logical traces must withhold the machine-dependent metrics record"
    );

    // Parallel run: byte-identical trace document.
    sim_core::parallel::set_max_threads(4);
    let (_, trace_parallel) = run_all(EVENTS);
    assert_eq!(
        trace_serial, trace_parallel,
        "logical-clock trace must be byte-identical at any thread count"
    );

    // Leave the process clean for any test that runs after us.
    sim_core::parallel::set_max_threads(0);
}
