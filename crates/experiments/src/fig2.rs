//! Figure 2: classification accuracy when only the low bits of the
//! evicted tag are stored, on the 16 KB direct-mapped cache.
//!
//! Paper reference points: very little accuracy is lost with 8 bits;
//! with 1 bit, conflict accuracy is artificially high and capacity
//! accuracy low (but even a single bit excludes nearly half of
//! capacity misses).

use cache_model::CacheGeometry;
use mct::accuracy::{AccuracyEvaluator, AccuracyReport};
use mct::TagBits;
use workloads::full_suite;

use crate::table::{pct, pct_ratio};
use crate::Table;

/// One point of the tag-bit sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Tag width at this point.
    pub bits: TagBits,
    /// Suite-wide accuracy.
    pub report: AccuracyReport,
}

/// The Figure 2 reproduction.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// The sweep, in increasing tag width, ending with the full tag.
    pub points: Vec<SweepPoint>,
    /// Events simulated per workload.
    pub events: usize,
}

/// The tag widths swept (the paper's x-axis, plus the full tag).
#[must_use]
pub fn widths() -> Vec<TagBits> {
    let mut v: Vec<TagBits> = [1u32, 2, 3, 4, 6, 8, 10, 12, 14, 16]
        .into_iter()
        .map(TagBits::Low)
        .collect();
    v.push(TagBits::Full);
    v
}

/// Runs the Figure 2 experiment with `events` references per
/// workload.
#[must_use]
pub fn run(events: usize) -> Fig2 {
    let geom = CacheGeometry::new(16 * 1024, 1, 64).expect("paper geometry is valid");
    let points = crate::par_map(widths(), |bits| {
        let mut total = AccuracyReport::default();
        for w in full_suite() {
            let report = crate::probe::cell(
                "fig2",
                || format!("{bits}/{}", w.name()),
                || {
                    let mut eval = AccuracyEvaluator::new(geom, bits);
                    let trace = crate::replay_for(&w, &geom, events);
                    crate::telemetry::record_events(events as u64);
                    crate::replay_accuracy(&trace, &mut eval);
                    eval.finish()
                },
            );
            total.merge(&report);
        }
        SweepPoint {
            bits,
            report: total,
        }
    });
    Fig2 { points, events }
}

/// Trace events this figure simulates: one pass per (tag-width,
/// workload) cell.
#[must_use]
pub fn simulated_events(events: usize) -> u64 {
    (widths().len() * full_suite().len() * events) as u64
}

impl std::fmt::Display for Fig2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 2: accuracy vs saved tag bits, 16KB DM ({} events/workload)\n",
            self.events
        )?;
        let mut table = Table::new(vec![
            "tag bits".into(),
            "conflict acc%".into(),
            "capacity acc%".into(),
            "overall%".into(),
        ]);
        for p in &self.points {
            table.row(vec![
                p.bits.to_string(),
                pct_ratio(p.report.conflict),
                pct_ratio(p.report.capacity),
                pct(p.report.overall()),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(
            f,
            "\npaper: ~8 bits ≈ full accuracy; 1 bit skews toward conflict"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_one_bit_to_full() {
        let w = widths();
        assert_eq!(w.first(), Some(&TagBits::Low(1)));
        assert_eq!(w.last(), Some(&TagBits::Full));
    }

    #[test]
    fn monotone_shape_on_small_run() {
        let fig = run(3_000);
        let first = &fig.points.first().unwrap().report;
        let last = &fig.points.last().unwrap().report;
        // 1 bit: conflict accuracy at least as high as full tags,
        // capacity accuracy lower.
        assert!(first.conflict.value() >= last.conflict.value() - 0.02);
        assert!(first.capacity.value() <= last.capacity.value());
        let display = fig.to_string();
        assert!(display.contains("full tag"));
    }
}
