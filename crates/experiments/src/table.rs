//! Minimal fixed-width table formatting for experiment reports.

use std::fmt;

/// A simple left-aligned-first-column table.
///
/// # Examples
///
/// ```
/// use experiments::Table;
///
/// let mut t = Table::new(vec!["bench".into(), "miss%".into()]);
/// t.row(vec!["swim".into(), "12.5".into()]);
/// let s = t.to_string();
/// assert!(s.contains("swim"));
/// assert!(s.contains("miss%"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Table {
    /// Renders the table as CSV (quoted only when needed; commas in
    /// cells are not expected in this workspace).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    /// Fixed-width text by default; CSV with the alternate flag
    /// (`{table:#}`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            return f.write_str(&self.to_csv());
        }
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "  {cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        print_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub(crate) fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats a [`sim_core::stats::Ratio`] as a percentage, rendering a
/// zero-denominator ratio as `n/a` instead of the misleading `0.0`
/// that [`sim_core::stats::Ratio::value`] would produce (a workload
/// with no capacity misses has *undefined* capacity accuracy, not a
/// 0% one — see EXPERIMENTS.md §"Figure 1 degenerate cells").
#[must_use]
pub(crate) fn pct_ratio(r: sim_core::stats::Ratio) -> String {
    if r.denominator() == 0 {
        "n/a".to_owned()
    } else {
        pct(r.value())
    }
}

/// Formats a speedup with three decimals.
#[must_use]
pub(crate) fn speedup(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_separator() {
        let mut t = Table::new(vec!["name".into(), "v".into()]);
        t.row(vec!["longer-name".into(), "1.0".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("longer-name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_mode() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(format!("{t:#}"), "a,b\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.8849), "88.5");
        assert_eq!(speedup(1.03456), "1.035");
    }

    #[test]
    fn zero_denominator_renders_na() {
        let mut r = sim_core::stats::Ratio::default();
        assert_eq!(pct_ratio(r), "n/a");
        r.record(true);
        r.record(false);
        assert_eq!(pct_ratio(r), "50.0");
    }
}
