//! Figures 6 and 7: the Adaptive Miss Buffer policy combinations.
//!
//! Paper reference points: VictPref is the best 8-entry combination,
//! more than doubling the gain of any single policy; with 16 entries
//! the do-everything VicPreExc becomes more attractive; the hit-rate
//! components (Figure 7) show each miss class covered by its own
//! optimization, with a ~1.4× average miss-rate improvement over the
//! best single policy.

use amb::{AmbConfig, AmbPolicy, AmbStats, AmbSystem};
use cpu_model::{BaselineSystem, CpuReport};
use sim_core::stats::GeoMean;
use workloads::suite;

use crate::table::{pct, speedup};
use crate::{drive, Table};

/// Results for one AMB policy at one buffer size.
#[derive(Debug, Clone)]
pub struct PolicyResult {
    /// The policy combination.
    pub policy: AmbPolicy,
    /// Buffer entries.
    pub entries: usize,
    /// Geometric-mean speedup over the no-buffer baseline.
    pub mean_speedup: f64,
    /// Suite-aggregated Figure 7 components.
    pub stats: AmbStats,
}

/// The Figures 6 + 7 reproduction.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// All policies at 8 entries, then all at 16, in the paper's
    /// order.
    pub results: Vec<PolicyResult>,
    /// Suite-average baseline hit rate / miss rate context.
    pub baseline_hit_rate: f64,
    /// Events per workload.
    pub events: usize,
}

/// Trace events this figure simulates: the no-buffer baseline plus
/// one run per (policy, buffer-size) cell, per workload.
#[must_use]
pub fn simulated_events(events: usize) -> u64 {
    ((1 + 2 * AmbPolicy::ALL.len()) * suite().len() * events) as u64
}

/// Runs the Figures 6 + 7 experiment.
#[must_use]
pub fn run(events: usize) -> Fig6 {
    let benchmarks = suite();
    let baseline_cells: Vec<(CpuReport, f64)> = crate::par_map(benchmarks.clone(), |w| {
        crate::probe::cell(
            "fig6",
            || format!("baseline/{}", w.name()),
            || {
                let mut sys = BaselineSystem::paper_default().expect("paper config");
                let report = drive(&mut sys, &w, events);
                (report, sys.l1_stats().hit_rate())
            },
        )
    });
    let mut baselines: Vec<CpuReport> = Vec::new();
    let mut base_hr = 0.0;
    for (report, hr) in baseline_cells {
        baselines.push(report);
        base_hr += hr;
    }
    let baseline_hit_rate = base_hr / benchmarks.len() as f64;

    let mut cells = Vec::new();
    for entries in [8usize, 16] {
        for policy in AmbPolicy::ALL {
            cells.push((entries, policy));
        }
    }
    let results = crate::par_map(cells, |(entries, policy)| {
        let cfg = if entries == 8 {
            AmbConfig::new(policy)
        } else {
            AmbConfig::large(policy)
        };
        let mut mean = GeoMean::default();
        let mut agg = AmbStats::default();
        for (w, base) in benchmarks.iter().zip(&baselines) {
            let (report, s) = crate::probe::cell(
                "fig6",
                || format!("{policy}-{entries}/{}", w.name()),
                || {
                    let mut sys = AmbSystem::paper_default(cfg).expect("paper config");
                    let report = drive(&mut sys, w, events);
                    (report, *sys.stats())
                },
            );
            mean.push(report.speedup_over(base));
            let s = &s;
            agg.accesses += s.accesses;
            agg.d_hits += s.d_hits;
            agg.victim_hits += s.victim_hits;
            agg.prefetch_hits += s.prefetch_hits;
            agg.exclusion_hits += s.exclusion_hits;
            agg.demand_misses += s.demand_misses;
            agg.prefetches_issued += s.prefetches_issued;
            agg.prefetches_discarded += s.prefetches_discarded;
        }
        PolicyResult {
            policy,
            entries,
            mean_speedup: mean.mean(),
            stats: agg,
        }
    });

    Fig6 {
        results,
        baseline_hit_rate,
        events,
    }
}

impl Fig6 {
    /// The result for a policy at a buffer size, if present.
    #[must_use]
    pub fn result(&self, policy: AmbPolicy, entries: usize) -> Option<&PolicyResult> {
        self.results
            .iter()
            .find(|r| r.policy == policy && r.entries == entries)
    }
}

impl std::fmt::Display for Fig6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 6: adaptive miss buffer, speedup over no buffer ({} events/workload)\n",
            self.events
        )?;
        let mut fig6 = Table::new(vec![
            "policy".into(),
            "8 entries".into(),
            "16 entries".into(),
        ]);
        for policy in AmbPolicy::ALL {
            let s8 = self
                .result(policy, 8)
                .map_or("-".into(), |r| speedup(r.mean_speedup));
            let s16 = self
                .result(policy, 16)
                .map_or("-".into(), |r| speedup(r.mean_speedup));
            fig6.row(vec![policy.to_string(), s8, s16]);
        }
        write!(f, "{fig6}")?;

        writeln!(
            f,
            "\nFigure 7: hit-rate components, 8-entry buffer (% of accesses; baseline D$ {}%)\n",
            pct(self.baseline_hit_rate)
        )?;
        let mut fig7 = Table::new(vec![
            "policy".into(),
            "D$".into(),
            "victim".into(),
            "prefetch".into(),
            "exclusion".into(),
            "total".into(),
        ]);
        for policy in AmbPolicy::ALL {
            if let Some(r) = self.result(policy, 8) {
                fig7.row(vec![
                    policy.to_string(),
                    pct(r.stats.d_hit_rate()),
                    pct(r.stats.victim_hit_rate()),
                    pct(r.stats.prefetch_hit_rate()),
                    pct(r.stats.exclusion_hit_rate()),
                    pct(r.stats.total_hit_rate()),
                ]);
            }
        }
        write!(f, "{fig7}")?;
        writeln!(
            f,
            "\npaper: VictPref best at 8 entries (2x any single policy); VicPreExc gains at 16"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_beats_singles_on_small_run() {
        let fig = run(6_000);
        let victpref = fig.result(AmbPolicy::VictPref, 8).unwrap().mean_speedup;
        let vict = fig.result(AmbPolicy::Vict, 8).unwrap().mean_speedup;
        let pref = fig.result(AmbPolicy::Pref, 8).unwrap().mean_speedup;
        let excl = fig.result(AmbPolicy::Excl, 8).unwrap().mean_speedup;
        let best_single = vict.max(pref).max(excl);
        assert!(
            victpref >= best_single - 0.01,
            "VictPref {victpref:.3} vs best single {best_single:.3}"
        );
        assert!(fig.to_string().contains("VicPreExc"));
    }
}
