//! The reproduction harness: regenerates every table and figure of
//! the paper's evaluation.
//!
//! ```text
//! repro [--events N] [--threads N] [--bench-json PATH] [--stream]
//!       [--probe epoch:N|raw] [--probe-out PATH]
//!       [--trace-out PATH [--trace-format jsonl|chrome] [--trace-logical-clock]]
//!       [--fault SEED:RATE [--fault-persistent]]
//!       [--checkpoint PATH [--resume] [--crash-after N]] [TARGET ...]
//! ```
//!
//! Independent figures run concurrently through the same deterministic
//! scheduler the figures use internally, so the rendered tables are
//! byte-identical at any thread count: each target's report is
//! buffered and printed in request order once all targets finish.
//! Throughput telemetry goes to stderr (and, with `--bench-json`, to a
//! machine-readable `BENCH_repro.json`) — never to stdout.
//!
//! Robustness (see EXPERIMENTS.md §"Robustness"): a failing cell is
//! retried under `sim_core::fault`'s deterministic backoff and, if it
//! keeps failing, recorded as *degraded* (placeholder on stdout,
//! `"degraded": true` in the bench JSON, exit code 1) instead of
//! aborting the sweep. `--checkpoint` persists each completed cell as
//! `fault-repro/1` JSONL and `--resume` reprints those cells without
//! re-running them, so a killed sweep continues where it died.
//! `--fault SEED:RATE` injects seeded faults for chaos testing;
//! `--crash-after N` simulates the kill.

use std::env;
use std::process::ExitCode;

use experiments::checkpoint::{self, CellEntry, CellStatus, CheckpointWriter};
use experiments::cli::{self, Target};
use experiments::ioutil;
use experiments::telemetry::{BenchReport, FigureBench, Stopwatch};
use experiments::tracing::{self, MetricsSnapshot, TraceFormat, TraceHeader};

/// Exit code of a `--crash-after` simulated kill (distinct from the
/// degraded-run failure exit).
const CRASH_EXIT: i32 = 3;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--events N] [--threads N] [--bench-json PATH] \
         [--block-size N] [--stream] [--probe epoch:N|raw] [--probe-out PATH] \
         [--trace-out PATH] [--trace-format jsonl|chrome] [--trace-logical-clock] \
         [--fault SEED:RATE] [--fault-persistent] \
         [--checkpoint PATH] [--resume] [--crash-after N] \
         [--mrc] [--mrc-sample R] [--mrc-out PATH] \
         [fig1|fig2|fig3|tab1|fig4|fig5|sec54|sec56|fig6|fig7|ablation|all]\n\
         \n\
         --events N       trace events per workload (default {})\n\
         --threads N      worker-thread cap (1 = fully serial; default: all cores)\n\
         --bench-json P   write machine-readable throughput telemetry to P\n\
         --block-size N   event-block size for decomposed replay (default {};\n\
         \u{20}                1 = per-event replay)\n\
         --stream         chunked generator replay, O(chunk) memory per cell\n\
         \u{20}                (bypasses the trace arenas; output is byte-identical)\n\
         --probe MODE     collect per-cell probe data: epoch:N (fold into\n\
         \u{20}                epochs of N accesses) or raw (every event; small runs)\n\
         --probe-out P    probe JSONL path (default OBS_repro.jsonl); inspect\n\
         \u{20}                with `obs summarize P`\n\
         --trace-out P    write a span trace of the sweep to P; inspect with\n\
         \u{20}                `obs timeline|flame|phases P`\n\
         --trace-format F trace output format: jsonl (trace-repro/1, default)\n\
         \u{20}                or chrome (chrome://tracing / Perfetto JSON)\n\
         --trace-logical-clock  zero durations so the trace is byte-identical\n\
         \u{20}                at any --threads (determinism tests)\n\
         --fault S:R      inject seeded faults: seed S, rate R in [0,1]\n\
         --fault-persistent  injected faults defeat every retry (degrades cells)\n\
         --mrc            run the miss-ratio-curve family (alone, or after the\n\
         \u{20}                listed targets): per-workload LRU stack-distance\n\
         \u{20}                curves plus the MCT capacity cross-check\n\
         --mrc-sample R   SHARDS spatial sampling at rate R in (0,1] instead of\n\
         \u{20}                the exact engine (O(sampled lines) memory)\n\
         --mrc-out P      mrc-repro/1 JSONL path (default MRC_repro.jsonl);\n\
         \u{20}                inspect with `obs mrc P`\n\
         --checkpoint P   persist completed cells to P as fault-repro/1 JSONL\n\
         --resume         skip cells already completed in the checkpoint\n\
         --crash-after N  exit({CRASH_EXIT}) after N cells are checkpointed (chaos tests)\n\
         \n\
         fig1   MCT classification accuracy (4 cache configs)\n\
         fig2   accuracy vs saved tag bits\n\
         fig3   victim-cache policies (includes Table 1)\n\
         tab1   alias for fig3\n\
         fig4   next-line prefetch filters (slow bus)\n\
         fig5   cache-exclusion policies\n\
         sec54  pseudo-associative cache comparison\n\
         sec56  co-scheduling on a shared cache (SMT)\n\
         fig6   adaptive miss buffer (includes Figure 7)\n\
         fig7   alias for fig6\n\
         ablation  shadow-directory depth / CPU window / buffer size sweeps\n\
         all    everything (default)",
        experiments::DEFAULT_EVENTS,
        experiments::DEFAULT_REPLAY_BLOCK,
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let opts = match cli::parse_args(env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("repro: {msg}\n");
            }
            return usage();
        }
    };
    if let Some(threads) = opts.threads {
        sim_core::parallel::set_max_threads(threads);
    }
    experiments::probe::configure(opts.probe);
    experiments::set_replay_block_size(opts.block_size);
    experiments::set_stream_mode(opts.stream);
    if opts.trace_out.is_some() {
        tracing::arm(opts.trace_logical_clock);
    }
    if let Some(spec) = opts.fault {
        sim_core::fault::install(spec.plan());
        sim_core::fault::silence_injected_panics();
        eprintln!(
            "[fault] plan installed: seed {}, rate {}{}",
            spec.seed,
            spec.rate,
            if spec.persistent { ", persistent" } else { "" },
        );
    }

    let events = opts.events;
    let target_names: Vec<&'static str> = opts.targets.iter().map(|t| t.name()).collect();

    // Checkpoint bookkeeping: cells completed by a previous run are
    // reprinted from the checkpoint instead of re-running.
    let mut resumed: Vec<CellEntry> = Vec::new();
    if opts.resume {
        if let Some(path) = &opts.checkpoint {
            let loaded = checkpoint::load(path, events);
            for warning in &loaded.warnings {
                eprintln!("[ckpt] {warning}");
            }
            resumed = loaded
                .cells
                .into_iter()
                .filter(|c| c.status == CellStatus::Ok && target_names.contains(&c.target.as_str()))
                .collect();
            if !resumed.is_empty() {
                eprintln!(
                    "[ckpt] resuming: {} of {} cell(s) restored from {}",
                    resumed.len(),
                    target_names.len(),
                    path.display(),
                );
            }
        }
    }
    let writer = match &opts.checkpoint {
        Some(path) => {
            match CheckpointWriter::with_preserved(path, events, &target_names, &resumed) {
                Ok(w) => Some(w),
                Err(err) => {
                    eprintln!("repro: cannot open checkpoint {}: {err}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let is_resumed = |target: Target| resumed.iter().any(|c| c.target == target.name());
    let pending: Vec<Target> = opts
        .targets
        .iter()
        .copied()
        .filter(|t| !is_resumed(*t))
        .collect();

    // Figure-level parallelism: independent targets overlap on the
    // same scheduler the per-figure cell loops use. Reports are
    // buffered (order-preserving) and printed afterwards, so stdout is
    // byte-identical to a serial run. try_par_map isolates cell
    // panics: a target that exhausts its retry budget comes back as a
    // failure and degrades instead of aborting the others.
    let writer_ref = writer.as_ref();
    let crash_after = opts.crash_after;
    let total_start = Stopwatch::start();
    let outcomes = sim_core::span::scope(
        sim_core::span::ScopeKind::Sweep,
        "sweep_repro",
        "repro",
        String::new,
        || {
            sim_core::parallel::try_par_map(pending.clone(), |target: Target| {
                let start = Stopwatch::start();
                let rendered = target.run(events);
                let bench = FigureBench::ok(
                    target.name(),
                    start.elapsed_seconds(),
                    target.simulated_events(events),
                );
                if let Some(w) = writer_ref {
                    let entry = CellEntry {
                        target: target.name().to_owned(),
                        status: CellStatus::Ok,
                        events: bench.events,
                        rendered: rendered.clone(),
                        message: None,
                    };
                    match w.record(&entry) {
                        Ok(count) => {
                            if crash_after.is_some_and(|n| count >= n) {
                                eprintln!("[ckpt] --crash-after {}: simulating a kill", count);
                                std::process::exit(CRASH_EXIT);
                            }
                        }
                        // The checkpoint is best-effort: losing a line
                        // costs a re-run on resume, never the current
                        // sweep.
                        Err(err) => eprintln!("[ckpt] cannot record {}: {err}", target.name()),
                    }
                }
                (rendered, bench)
            })
        },
    );
    let total_wall_seconds = total_start.elapsed_seconds();

    // Merge fresh, resumed, and degraded cells back into request
    // order.
    let mut fresh = outcomes.into_iter();
    let mut figures: Vec<FigureBench> = Vec::with_capacity(opts.targets.len());
    let mut rendered_all: Vec<String> = Vec::with_capacity(opts.targets.len());
    let mut failures: Vec<String> = Vec::new();
    let mut degraded_targets: Vec<&'static str> = Vec::new();
    for target in &opts.targets {
        if let Some(cell) = resumed.iter().find(|c| c.target == target.name()) {
            rendered_all.push(cell.rendered.clone());
            figures.push(FigureBench {
                resumed: true,
                ..FigureBench::ok(target.name(), 0.0, cell.events)
            });
            continue;
        }
        match fresh.next().expect("one outcome per pending target") {
            Ok((rendered, bench)) => {
                rendered_all.push(rendered);
                figures.push(bench);
            }
            Err(failure) => {
                let placeholder = format!("{}: degraded ({})", target.name(), failure.message);
                if let Some(w) = writer_ref {
                    let entry = CellEntry {
                        target: target.name().to_owned(),
                        status: CellStatus::Degraded,
                        events: 0,
                        rendered: placeholder.clone(),
                        message: Some(failure.message.clone()),
                    };
                    if let Err(err) = w.record(&entry) {
                        eprintln!("[ckpt] cannot record {}: {err}", target.name());
                    }
                }
                rendered_all.push(placeholder);
                figures.push(FigureBench {
                    degraded: true,
                    ..FigureBench::ok(target.name(), 0.0, 0)
                });
                degraded_targets.push(target.name());
                failures.push(format!(
                    "{} degraded after {} attempt(s): {}",
                    target.name(),
                    failure.attempts,
                    failure.message,
                ));
            }
        }
    }

    // The MRC family rides along after the targets: it reuses the
    // same arenas (or streams) but is not a checkpointable Target, so
    // it runs once the sweep proper has settled.
    let mut mrc_run = None;
    if opts.mrc {
        let start = Stopwatch::start();
        let run = sim_core::span::scope(
            sim_core::span::ScopeKind::Figure,
            "fig_mrc",
            "mrc",
            String::new,
            || experiments::mrc::run(events, opts.mrc_sample),
        );
        rendered_all.push(run.to_string());
        figures.push(FigureBench::ok(
            "mrc",
            start.elapsed_seconds(),
            experiments::mrc::simulated_events(events),
        ));
        mrc_run = Some(run);
    }

    for rendered in &rendered_all {
        println!("{rendered}\n");
    }

    // Record the worker count the run actually used: with no --threads
    // flag the scheduler resolves to the machine's core count, and the
    // bench JSON must say so rather than a placeholder 0.
    let report = BenchReport {
        threads: sim_core::parallel::effective_threads(usize::MAX),
        events_per_workload: events,
        figures,
        total_wall_seconds,
    };
    for figure in &report.figures {
        eprintln!("{}", figure.summary_line());
    }
    // The chosen block size rides along on stderr: the bench-repro/2
    // schema is pinned by goldens, so the knob is recorded here (and
    // in EXPERIMENTS.md) rather than in the JSON.
    eprintln!(
        "[bench] replay block size {}{}{}",
        opts.block_size,
        if opts.block_size == 1 {
            " (per-event)"
        } else {
            ""
        },
        if opts.stream { ", streaming" } else { "" },
    );
    eprintln!(
        "[bench] total    {:>8.2}s  {:.1}M events/s  ({} events, {} worker threads)",
        report.total_wall_seconds,
        report.total_events_per_sec() / 1e6,
        report.total_events(),
        sim_core::parallel::effective_threads(usize::MAX),
    );

    if let Some(path) = &opts.bench_json {
        if let Err(err) = ioutil::write_with_retry(path, &report.to_json()) {
            eprintln!("repro: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[bench] wrote {}", path.display());
    }

    if let (Some(run), Some(path)) = (&mrc_run, &opts.mrc_out) {
        if let Err(err) = ioutil::write_with_retry(path, &run.to_jsonl()) {
            eprintln!("repro: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[mrc] wrote {} ({} engine, {} curves, {} cross-check cells)",
            path.display(),
            run.mode(),
            run.curves.len(),
            run.cells.len(),
        );
    }

    if let (Some(mode), Some(path)) = (opts.probe, &opts.probe_out) {
        let mut records = experiments::probe::drain();
        // An aborted attempt of a retried figure may have flushed
        // partial records before its panic; keep only the final
        // attempt's record per cell (labels are unique per target) and
        // none at all for degraded figures.
        records.retain(|r| !degraded_targets.contains(&r.target));
        let mut seen = sim_core::hash::FxHashSet::default();
        for i in (0..records.len()).rev() {
            if !seen.insert((records[i].target, records[i].cell.clone())) {
                records.remove(i);
            }
        }
        let header = experiments::probe::RunHeader {
            mode,
            events_per_workload: events,
            targets: target_names.clone(),
        };
        let cells = records.len();
        if let Err(err) =
            ioutil::write_with_retry(path, &experiments::probe::render_jsonl(&records, &header))
        {
            eprintln!("repro: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[probe] wrote {} ({cells} cells, mode {})",
            path.display(),
            mode.name()
        );
    }

    if let Some(path) = &opts.trace_out {
        let records = tracing::drain();
        let header = TraceHeader {
            logical: opts.trace_logical_clock,
            events_per_workload: events,
            targets: target_names.clone(),
        };
        let rendered = match opts.trace_format {
            TraceFormat::Jsonl => {
                let metrics = MetricsSnapshot::capture(degraded_targets.len() as u64);
                tracing::render_jsonl(&records, &header, Some(&metrics))
            }
            TraceFormat::Chrome => tracing::render_chrome(&records, &header),
        };
        if let Err(err) = ioutil::write_with_retry(path, &rendered) {
            eprintln!("repro: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        let spans: usize = records.iter().map(|r| r.spans.len()).sum();
        eprintln!(
            "[trace] wrote {} ({} scopes, {spans} spans, format {})",
            path.display(),
            records.len(),
            match opts.trace_format {
                TraceFormat::Jsonl => "jsonl",
                TraceFormat::Chrome => "chrome",
            },
        );
    }

    if sim_core::fault::active() {
        let stats = sim_core::fault::stats();
        eprintln!(
            "[fault] injected {} fault(s), {} operation(s) exhausted retries, {} cell(s) degraded",
            stats.injected,
            stats.exhausted,
            degraded_targets.len(),
        );
    }
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("repro: {failure}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
