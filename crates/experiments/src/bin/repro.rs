//! The reproduction harness: regenerates every table and figure of
//! the paper's evaluation.
//!
//! ```text
//! repro [--events N] [--threads N] [--bench-json PATH]
//!       [--probe epoch:N|raw] [--probe-out PATH] [TARGET ...]
//! ```
//!
//! Independent figures run concurrently through the same deterministic
//! scheduler the figures use internally, so the rendered tables are
//! byte-identical at any thread count: each target's report is
//! buffered and printed in request order once all targets finish.
//! Throughput telemetry goes to stderr (and, with `--bench-json`, to a
//! machine-readable `BENCH_repro.json`) — never to stdout.

use std::env;
use std::process::ExitCode;

use experiments::cli::{self, Target};
use experiments::telemetry::{BenchReport, FigureBench, Stopwatch};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--events N] [--threads N] [--bench-json PATH] \
         [--probe epoch:N|raw] [--probe-out PATH] \
         [fig1|fig2|fig3|tab1|fig4|fig5|sec54|sec56|fig6|fig7|ablation|all]\n\
         \n\
         --events N       trace events per workload (default {})\n\
         --threads N      worker-thread cap (1 = fully serial; default: all cores)\n\
         --bench-json P   write machine-readable throughput telemetry to P\n\
         --probe MODE     collect per-cell probe data: epoch:N (fold into\n\
         \u{20}                epochs of N accesses) or raw (every event; small runs)\n\
         --probe-out P    probe JSONL path (default OBS_repro.jsonl); inspect\n\
         \u{20}                with `obs summarize P`\n\
         \n\
         fig1   MCT classification accuracy (4 cache configs)\n\
         fig2   accuracy vs saved tag bits\n\
         fig3   victim-cache policies (includes Table 1)\n\
         tab1   alias for fig3\n\
         fig4   next-line prefetch filters (slow bus)\n\
         fig5   cache-exclusion policies\n\
         sec54  pseudo-associative cache comparison\n\
         sec56  co-scheduling on a shared cache (SMT)\n\
         fig6   adaptive miss buffer (includes Figure 7)\n\
         fig7   alias for fig6\n\
         ablation  shadow-directory depth / CPU window / buffer size sweeps\n\
         all    everything (default)",
        experiments::DEFAULT_EVENTS
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let opts = match cli::parse_args(env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("repro: {msg}\n");
            }
            return usage();
        }
    };
    if let Some(threads) = opts.threads {
        sim_core::parallel::set_max_threads(threads);
    }
    experiments::probe::configure(opts.probe);

    // Figure-level parallelism: independent targets overlap on the
    // same scheduler the per-figure cell loops use. Reports are
    // buffered (order-preserving) and printed afterwards, so stdout is
    // byte-identical to a serial run.
    let events = opts.events;
    let total_start = Stopwatch::start();
    let results: Vec<(String, FigureBench)> =
        experiments::par_map(opts.targets.clone(), |target: Target| {
            let start = Stopwatch::start();
            let rendered = target.run(events);
            let bench = FigureBench {
                name: target.name(),
                wall_seconds: start.elapsed_seconds(),
                events: target.simulated_events(events),
            };
            (rendered, bench)
        });
    let total_wall_seconds = total_start.elapsed_seconds();

    for (rendered, _) in &results {
        println!("{rendered}\n");
    }

    // Record the worker count the run actually used: with no --threads
    // flag the scheduler resolves to the machine's core count, and the
    // bench JSON must say so rather than a placeholder 0.
    let report = BenchReport {
        threads: sim_core::parallel::effective_threads(usize::MAX),
        events_per_workload: events,
        figures: results.into_iter().map(|(_, bench)| bench).collect(),
        total_wall_seconds,
    };
    for figure in &report.figures {
        eprintln!("{}", figure.summary_line());
    }
    eprintln!(
        "[bench] total    {:>8.2}s  {:.1}M events/s  ({} events, {} worker threads)",
        report.total_wall_seconds,
        report.total_events_per_sec() / 1e6,
        report.total_events(),
        sim_core::parallel::effective_threads(usize::MAX),
    );

    if let Some(path) = &opts.bench_json {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("repro: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[bench] wrote {}", path.display());
    }

    if let (Some(mode), Some(path)) = (opts.probe, &opts.probe_out) {
        let records = experiments::probe::drain();
        let header = experiments::probe::RunHeader {
            mode,
            events_per_workload: events,
            targets: opts.targets.iter().map(|t| t.name()).collect(),
        };
        let cells = records.len();
        if let Err(err) = std::fs::write(path, experiments::probe::render_jsonl(&records, &header))
        {
            eprintln!("repro: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[probe] wrote {} ({cells} cells, mode {})",
            path.display(),
            mode.name()
        );
    }
    ExitCode::SUCCESS
}
