//! The reproduction harness: regenerates every table and figure of
//! the paper's evaluation.
//!
//! ```text
//! repro [--events N] [fig1|fig2|fig3|tab1|fig4|fig5|sec54|sec56|fig6|fig7|ablation|all]
//! ```

use std::env;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--events N] [fig1|fig2|fig3|tab1|fig4|fig5|sec54|sec56|fig6|fig7|ablation|all]\n\
         \n\
         fig1   MCT classification accuracy (4 cache configs)\n\
         fig2   accuracy vs saved tag bits\n\
         fig3   victim-cache policies (includes Table 1)\n\
         tab1   alias for fig3\n\
         fig4   next-line prefetch filters (slow bus)\n\
         fig5   cache-exclusion policies\n\
         sec54  pseudo-associative cache comparison\n\
         sec56  co-scheduling on a shared cache (SMT)\n\
         fig6   adaptive miss buffer (includes Figure 7)\n\
         fig7   alias for fig6\n\
         ablation  shadow-directory depth / CPU window / buffer size sweeps\n\
         all    everything (default)"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut events = experiments::DEFAULT_EVENTS;
    let mut targets: Vec<String> = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--events needs a positive integer");
                    return usage();
                };
                events = n;
            }
            "--help" | "-h" => return usage(),
            other => targets.push(other.to_owned()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_owned());
    }

    for target in &targets {
        match target.as_str() {
            "fig1" => println!("{}\n", experiments::fig1::run(events)),
            "fig2" => println!("{}\n", experiments::fig2::run(events)),
            "fig3" | "tab1" => println!("{}\n", experiments::fig3::run(events)),
            "fig4" => println!("{}\n", experiments::fig4::run(events)),
            "fig5" => println!("{}\n", experiments::fig5::run(events)),
            "sec54" => println!("{}\n", experiments::sec54::run(events)),
            "sec56" => println!("{}\n", experiments::sec56::run(events)),
            "fig6" | "fig7" => println!("{}\n", experiments::fig6::run(events)),
            "ablation" => println!("{}\n", experiments::ablation::run(events)),
            "all" => {
                println!("{}\n", experiments::fig1::run(events));
                println!("{}\n", experiments::fig2::run(events));
                println!("{}\n", experiments::fig3::run(events));
                println!("{}\n", experiments::fig4::run(events));
                println!("{}\n", experiments::fig5::run(events));
                println!("{}\n", experiments::sec54::run(events));
                println!("{}\n", experiments::sec56::run(events));
                println!("{}\n", experiments::fig6::run(events));
                println!("{}\n", experiments::ablation::run(events));
            }
            _ => {
                eprintln!("unknown target: {target}");
                return usage();
            }
        }
    }
    ExitCode::SUCCESS
}
