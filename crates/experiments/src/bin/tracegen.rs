//! Trace utility: record a SPEC95-analog workload to the binary trace
//! format, or summarize a recorded trace.
//!
//! ```text
//! tracegen record <workload> <out.trace> [--events N] [--seed S]
//! tracegen info <in.trace>
//! tracegen list
//! ```
//!
//! Recorded traces replay through any tool that speaks the
//! `trace-gen` codec, and freeze a workload for regression comparison
//! across versions.

use std::env;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use trace_gen::{AccessKind, Trace};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n\
         \x20 tracegen record <workload> <out.trace> [--events N] [--seed S]\n\
         \x20 tracegen info <in.trace>\n\
         \x20 tracegen list"
    );
    ExitCode::FAILURE
}

fn record(args: &[String]) -> ExitCode {
    let (Some(name), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let mut events = 300_000usize;
    let mut seed = 1u64;
    let mut it = args[2..].iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--events", Some(v)) => match v.parse() {
                Ok(n) => events = n,
                Err(_) => return usage(),
            },
            ("--seed", Some(v)) => match v.parse() {
                Ok(s) => seed = s,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(workload) = workloads::by_name(name) else {
        eprintln!("unknown workload '{name}' (try `tracegen list`)");
        return ExitCode::FAILURE;
    };
    let mut src = workload.source(seed);
    let trace: Trace = (0..events).map(|_| src.next_event()).collect();
    let file = match File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = trace.write_to(BufWriter::new(file)) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("recorded {events} events of {workload} (seed {seed}) to {path}");
    ExitCode::SUCCESS
}

fn info(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::read_from(BufReader::new(file)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stores = trace
        .iter()
        .filter(|e| e.access.kind == AccessKind::Store)
        .count();
    println!("events       : {}", trace.len());
    println!("instructions : {}", trace.instructions());
    println!(
        "stores       : {stores} ({:.1}%)",
        100.0 * stores as f64 / trace.len().max(1) as f64
    );
    println!(
        "footprint    : {} lines ({} KB at 64B lines)",
        trace.footprint_lines(64),
        trace.footprint_lines(64) * 64 / 1024
    );
    ExitCode::SUCCESS
}

fn list() -> ExitCode {
    for w in workloads::full_suite() {
        println!("{:10} [{}] {}", w.name(), w.category(), w.description());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("list") => list(),
        _ => usage(),
    }
}
