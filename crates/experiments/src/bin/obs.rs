//! Inspect `obs-repro/1` probe files and `trace-repro/1` span traces
//! written by `repro`.
//!
//! ```text
//! obs summarize FILE [--cell SUBSTR] [--top K]
//! obs mrc FILE
//! obs timeline FILE
//! obs flame FILE
//! obs phases FILE
//! obs verify-trace FILE
//! obs diff [--fail-above PCT] OLD.json NEW.json
//! ```
//!
//! `summarize` renders per-cell miss/conflict/accuracy summaries for a
//! probe file. `timeline`, `flame`, and `phases` render per-worker
//! lanes, folded flamegraph stacks, and a per-phase time/throughput
//! table for a span trace; `verify-trace` checks a trace's structural
//! invariants. `diff` compares two `bench-repro` throughput files —
//! with `--fail-above PCT` it exits non-zero when total events/s
//! regressed by more than PCT percent, which is how CI gates
//! throughput (see BENCHMARKS.md for the baseline-refresh workflow). All
//! logic lives in [`experiments::obs`] and [`experiments::traceview`];
//! this binary only parses arguments and does I/O.

use std::env;
use std::process::ExitCode;

use experiments::obs::{summarize, SummarizeOptions};
use experiments::traceview;

fn usage() -> ExitCode {
    eprintln!(
        "usage: obs COMMAND FILE...\n\
         \n\
         summarize FILE   render epoch/cell/hot-set tables for a probe file\n\
         \u{20}  --cell SUBSTR  also print the per-epoch table of cells whose\n\
         \u{20}                 target/cell name contains SUBSTR\n\
         \u{20}  --top K        rows in the hottest-sets section (default 10)\n\
         mrc FILE         render miss-ratio curves + the MCT capacity cross-check\n\
         \u{20}                 for an mrc-repro/1 file (from `repro --mrc`)\n\
         timeline FILE    per-worker busy lanes + utilization for a span trace\n\
         flame FILE       folded stacks (flamegraph.pl / speedscope input)\n\
         phases FILE      total/self time, call count, events/s per phase\n\
         verify-trace FILE  check a span trace's structural invariants\n\
         diff OLD NEW     per-figure events/s delta between two bench files\n\
         \u{20}  --fail-above PCT  exit non-zero if total events/s regressed\n\
         \u{20}                 by more than PCT percent (the CI gate)\n\
         \n\
         Probe files come from `repro --probe epoch:N --probe-out FILE`;\n\
         span traces from `repro --trace-out FILE`; bench files are the\n\
         BENCH_repro.json reports `repro` writes after every sweep."
    );
    ExitCode::FAILURE
}

fn read(file: &str) -> Result<String, String> {
    std::fs::read_to_string(file).map_err(|err| format!("cannot read {file}: {err}"))
}

fn summarize_cmd(mut args: std::vec::IntoIter<String>) -> Result<String, String> {
    let mut file = None;
    let mut opts = SummarizeOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cell" => {
                opts.cell_filter = Some(args.next().ok_or("--cell needs a substring")?);
            }
            "--top" => {
                let value = args.next().ok_or("--top needs a count")?;
                opts.top = value
                    .parse()
                    .map_err(|_| format!("--top needs a positive integer, got `{value}`"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other if file.is_none() => file = Some(other.to_owned()),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    let file = file.ok_or("missing probe file argument")?;
    summarize(&read(&file)?, &opts)
}

fn one_file(
    mut args: std::vec::IntoIter<String>,
    what: &str,
    f: impl FnOnce(&str) -> Result<String, String>,
) -> Result<String, String> {
    let file = args
        .next()
        .ok_or_else(|| format!("missing {what} argument"))?;
    if let Some(extra) = args.next() {
        return Err(format!("unexpected argument: {extra}"));
    }
    f(&read(&file)?)
}

/// A command's result: the report to print, plus an optional gate
/// verdict (`obs diff --fail-above`) that turns a printed report into
/// a non-zero exit.
struct Output {
    report: String,
    gate_failure: Option<String>,
}

impl Output {
    fn pass(report: String) -> Self {
        Output {
            report,
            gate_failure: None,
        }
    }
}

fn diff_cmd(args: std::vec::IntoIter<String>) -> Result<Output, String> {
    let mut fail_above: Option<f64> = None;
    let mut files = Vec::new();
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fail-above" => {
                let value = args.next().ok_or("--fail-above needs a percentage")?;
                let pct: f64 = value
                    .parse()
                    .map_err(|_| format!("--fail-above needs a percentage, got `{value}`"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!("--fail-above must be non-negative, got `{value}`"));
                }
                fail_above = Some(pct);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other => files.push(other.to_owned()),
        }
    }
    let [old, new] = files.as_slice() else {
        return Err("diff needs OLD and NEW bench files".to_owned());
    };
    let report = traceview::diff_report(&read(old)?, &read(new)?)?;
    let gate_failure = match (fail_above, report.total_delta_pct) {
        (Some(threshold), Some(delta)) if delta < -threshold => Some(format!(
            "total events/s regressed {:.1}% (gate: {threshold}%); if the slowdown is \
             justified, regenerate the baseline per BENCHMARKS.md",
            -delta
        )),
        (Some(_), None) => Some("cannot gate: bench files lack comparable totals".to_owned()),
        _ => None,
    };
    Ok(Output {
        report: report.table,
        gate_failure,
    })
}

fn run(args: Vec<String>) -> Result<Output, String> {
    let mut args = args.into_iter();
    match args.next().as_deref() {
        Some("summarize") => summarize_cmd(args).map(Output::pass),
        Some("mrc") => one_file(args, "mrc file", experiments::mrc::render).map(Output::pass),
        Some("timeline") => one_file(args, "trace file", traceview::timeline).map(Output::pass),
        Some("flame") => one_file(args, "trace file", traceview::flame).map(Output::pass),
        Some("phases") => one_file(args, "trace file", traceview::phases).map(Output::pass),
        Some("verify-trace") => one_file(args, "trace file", traceview::verify).map(Output::pass),
        Some("diff") => diff_cmd(args),
        Some("--help" | "-h") => Err(String::new()),
        Some(other) => Err(format!("unknown command: {other}")),
        None => Err("missing command".to_owned()),
    }
}

fn main() -> ExitCode {
    match run(env::args().skip(1).collect()) {
        Ok(output) => {
            print!("{}", output.report);
            match output.gate_failure {
                None => ExitCode::SUCCESS,
                Some(msg) => {
                    eprintln!("obs: {msg}");
                    ExitCode::from(2)
                }
            }
        }
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("obs: {msg}\n");
            }
            usage()
        }
    }
}
