//! Inspect `obs-repro/1` probe files written by `repro --probe`.
//!
//! ```text
//! obs summarize FILE [--cell SUBSTR] [--top K]
//! ```
//!
//! Renders per-cell miss/conflict/accuracy summaries, the hottest
//! conflict sets, and (with `--cell`) the full epoch table of every
//! matching cell. All logic lives in [`experiments::obs`]; this binary
//! only parses arguments and does I/O.

use std::env;
use std::process::ExitCode;

use experiments::obs::{summarize, SummarizeOptions};

fn usage() -> ExitCode {
    eprintln!(
        "usage: obs summarize FILE [--cell SUBSTR] [--top K]\n\
         \n\
         summarize        render epoch/cell/hot-set tables for a probe file\n\
         --cell SUBSTR    also print the per-epoch table of cells whose\n\
         \u{20}               target/cell name contains SUBSTR\n\
         --top K          rows in the hottest-sets section (default 10)\n\
         \n\
         Probe files are written by `repro --probe epoch:N --probe-out FILE`."
    );
    ExitCode::FAILURE
}

fn run(args: Vec<String>) -> Result<String, String> {
    let mut args = args.into_iter();
    match args.next().as_deref() {
        Some("summarize") => {}
        Some(other) => return Err(format!("unknown command: {other}")),
        None => return Err("missing command".to_owned()),
    }
    let mut file = None;
    let mut opts = SummarizeOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cell" => {
                opts.cell_filter = Some(args.next().ok_or("--cell needs a substring")?);
            }
            "--top" => {
                let value = args.next().ok_or("--top needs a count")?;
                opts.top = value
                    .parse()
                    .map_err(|_| format!("--top needs a positive integer, got `{value}`"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other if file.is_none() => file = Some(other.to_owned()),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    let file = file.ok_or("missing probe file argument")?;
    let text =
        std::fs::read_to_string(&file).map_err(|err| format!("cannot read {file}: {err}"))?;
    summarize(&text, &opts)
}

fn main() -> ExitCode {
    match run(env::args().skip(1).collect()) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("obs: {msg}\n");
            }
            usage()
        }
    }
}
