//! General-purpose simulator front-end: run any workload through any
//! cache-assist architecture and print the full report.
//!
//! ```text
//! sim --workload gcc --arch amb:victpref [--events N] [--seed S]
//!     [--l1-size KB] [--l1-assoc W] [--entries E] [--window I]
//! sim --list-archs
//! ```
//!
//! Architectures:
//!   baseline, two-way,
//!   victim:{traditional|swaps|fills|both},
//!   prefetch:{none|in|out|and|or}, rpt, rpt:filtered,
//!   exclusion:{mat|conflict|conflict-history|capacity|capacity-history},
//!   pseudo:{lru|mct}, remap:{all|conflict},
//!   amb:{vict|pref|excl|victpref|prefexcl|victexcl|vicpreexc}

use std::env;
use std::process::ExitCode;

use amb::{AmbConfig, AmbPolicy, AmbSystem};
use cache_model::{CacheGeometry, L2MemoryConfig};
use conflict_remap::{CountPolicy, RemapConfig, RemapSystem};
use cpu_model::{BaselineSystem, CpuConfig, MemTimings, MemorySystem, OooModel, Plumbing};
use exclusion::{ExclusionConfig, ExclusionPolicy, ExclusionSystem};
use mct::ConflictFilter;
use prefetcher::{NextLineSystem, PrefetchConfig, RptConfig, RptSystem};
use pseudo_assoc::{PseudoAssocSystem, PseudoConfig, PseudoPolicy};
use victim_cache::{VictimConfig, VictimPolicy, VictimSystem};

struct Options {
    workload: String,
    arch: String,
    events: usize,
    seed: u64,
    l1_kb: u64,
    l1_assoc: u32,
    entries: Option<usize>,
    window: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workload: "gcc".to_owned(),
            arch: "baseline".to_owned(),
            events: 300_000,
            seed: 1,
            l1_kb: 16,
            l1_assoc: 1,
            entries: None,
            window: CpuConfig::paper_default().window,
        }
    }
}

const ARCHS: &[&str] = &[
    "baseline",
    "two-way",
    "victim:traditional",
    "victim:swaps",
    "victim:fills",
    "victim:both",
    "prefetch:none",
    "prefetch:in",
    "prefetch:out",
    "prefetch:and",
    "prefetch:or",
    "rpt",
    "rpt:filtered",
    "exclusion:mat",
    "exclusion:conflict",
    "exclusion:conflict-history",
    "exclusion:capacity",
    "exclusion:capacity-history",
    "pseudo:lru",
    "pseudo:mct",
    "remap:all",
    "remap:conflict",
    "amb:vict",
    "amb:pref",
    "amb:excl",
    "amb:victpref",
    "amb:prefexcl",
    "amb:victexcl",
    "amb:vicpreexc",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: sim --workload <name> --arch <arch> [--events N] [--seed S]\n\
         \x20          [--l1-size KB] [--l1-assoc W] [--entries E] [--window I]\n\
         \x20      sim --list-archs\n\
         \x20      sim --list-workloads"
    );
    ExitCode::FAILURE
}

fn build_system(opts: &Options) -> Result<Box<dyn MemorySystem>, String> {
    let geom =
        CacheGeometry::new(opts.l1_kb * 1024, opts.l1_assoc, 64).map_err(|e| e.to_string())?;
    let plumbing = || {
        Plumbing::new(
            MemTimings::paper_default(),
            L2MemoryConfig::paper_default().expect("paper config"),
        )
    };
    let victim_cfg = |policy| {
        let mut cfg = VictimConfig::new(policy);
        if let Some(e) = opts.entries {
            cfg.entries = e;
        }
        cfg
    };
    let amb_cfg = |policy| {
        let mut cfg = AmbConfig::new(policy);
        if let Some(e) = opts.entries {
            cfg.entries = e;
        }
        cfg
    };
    let prefetch_cfg = |filter: Option<ConflictFilter>| {
        let mut cfg = match filter {
            None => PrefetchConfig::unfiltered(),
            Some(f) => PrefetchConfig::filtered(f),
        };
        if let Some(e) = opts.entries {
            cfg.entries = e;
        }
        cfg
    };
    let excl_cfg = |policy| {
        let mut cfg = ExclusionConfig::new(policy);
        if let Some(e) = opts.entries {
            cfg.entries = e;
        }
        cfg
    };

    Ok(match opts.arch.as_str() {
        "baseline" => Box::new(BaselineSystem::new(geom, plumbing())),
        "two-way" => {
            let geom = CacheGeometry::new(opts.l1_kb * 1024, 2, 64).map_err(|e| e.to_string())?;
            Box::new(BaselineSystem::new(geom, plumbing()))
        }
        "victim:traditional" => Box::new(VictimSystem::new(
            victim_cfg(VictimPolicy::Traditional),
            geom,
            plumbing(),
        )),
        "victim:swaps" => Box::new(VictimSystem::new(
            victim_cfg(VictimPolicy::FilterSwaps),
            geom,
            plumbing(),
        )),
        "victim:fills" => Box::new(VictimSystem::new(
            victim_cfg(VictimPolicy::FilterFills),
            geom,
            plumbing(),
        )),
        "victim:both" => Box::new(VictimSystem::new(
            victim_cfg(VictimPolicy::FilterBoth),
            geom,
            plumbing(),
        )),
        "prefetch:none" => Box::new(NextLineSystem::new(prefetch_cfg(None), geom, plumbing())),
        "prefetch:in" => Box::new(NextLineSystem::new(
            prefetch_cfg(Some(ConflictFilter::InConflict)),
            geom,
            plumbing(),
        )),
        "prefetch:out" => Box::new(NextLineSystem::new(
            prefetch_cfg(Some(ConflictFilter::OutConflict)),
            geom,
            plumbing(),
        )),
        "prefetch:and" => Box::new(NextLineSystem::new(
            prefetch_cfg(Some(ConflictFilter::AndConflict)),
            geom,
            plumbing(),
        )),
        "prefetch:or" => Box::new(NextLineSystem::new(
            prefetch_cfg(Some(ConflictFilter::OrConflict)),
            geom,
            plumbing(),
        )),
        "rpt" => Box::new(RptSystem::new(
            RptConfig::default_config(),
            geom,
            plumbing(),
        )),
        "rpt:filtered" => Box::new(RptSystem::new(RptConfig::filtered(), geom, plumbing())),
        "exclusion:mat" => Box::new(ExclusionSystem::new(
            excl_cfg(ExclusionPolicy::Mat),
            geom,
            plumbing(),
        )),
        "exclusion:conflict" => Box::new(ExclusionSystem::new(
            excl_cfg(ExclusionPolicy::Conflict),
            geom,
            plumbing(),
        )),
        "exclusion:conflict-history" => Box::new(ExclusionSystem::new(
            excl_cfg(ExclusionPolicy::ConflictHistory),
            geom,
            plumbing(),
        )),
        "exclusion:capacity" => Box::new(ExclusionSystem::new(
            excl_cfg(ExclusionPolicy::Capacity),
            geom,
            plumbing(),
        )),
        "exclusion:capacity-history" => Box::new(ExclusionSystem::new(
            excl_cfg(ExclusionPolicy::CapacityHistory),
            geom,
            plumbing(),
        )),
        "pseudo:lru" => Box::new(PseudoAssocSystem::new(
            PseudoConfig::new(PseudoPolicy::Lru),
            geom,
            plumbing(),
        )),
        "pseudo:mct" => Box::new(PseudoAssocSystem::new(
            PseudoConfig::new(PseudoPolicy::ConflictBit),
            geom,
            plumbing(),
        )),
        "remap:all" => Box::new(RemapSystem::new(
            RemapConfig::new(CountPolicy::AllMisses),
            geom,
            plumbing(),
        )),
        "remap:conflict" => Box::new(RemapSystem::new(
            RemapConfig::new(CountPolicy::ConflictOnly),
            geom,
            plumbing(),
        )),
        "amb:vict" => Box::new(AmbSystem::new(amb_cfg(AmbPolicy::Vict), geom, plumbing())),
        "amb:pref" => Box::new(AmbSystem::new(amb_cfg(AmbPolicy::Pref), geom, plumbing())),
        "amb:excl" => Box::new(AmbSystem::new(amb_cfg(AmbPolicy::Excl), geom, plumbing())),
        "amb:victpref" => Box::new(AmbSystem::new(
            amb_cfg(AmbPolicy::VictPref),
            geom,
            plumbing(),
        )),
        "amb:prefexcl" => Box::new(AmbSystem::new(
            amb_cfg(AmbPolicy::PrefExcl),
            geom,
            plumbing(),
        )),
        "amb:victexcl" => Box::new(AmbSystem::new(
            amb_cfg(AmbPolicy::VictExcl),
            geom,
            plumbing(),
        )),
        "amb:vicpreexc" => Box::new(AmbSystem::new(
            amb_cfg(AmbPolicy::VicPreExc),
            geom,
            plumbing(),
        )),
        other => return Err(format!("unknown architecture '{other}' (try --list-archs)")),
    })
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--workload" => opts.workload = value("--workload")?,
            "--arch" => opts.arch = value("--arch")?,
            "--events" => {
                opts.events = value("--events")?
                    .parse()
                    .map_err(|_| "--events: bad number".to_owned())?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed: bad number".to_owned())?
            }
            "--l1-size" => {
                opts.l1_kb = value("--l1-size")?
                    .parse()
                    .map_err(|_| "--l1-size: bad number".to_owned())?
            }
            "--l1-assoc" => {
                opts.l1_assoc = value("--l1-assoc")?
                    .parse()
                    .map_err(|_| "--l1-assoc: bad number".to_owned())?
            }
            "--entries" => {
                opts.entries = Some(
                    value("--entries")?
                        .parse()
                        .map_err(|_| "--entries: bad number".to_owned())?,
                )
            }
            "--window" => {
                opts.window = value("--window")?
                    .parse()
                    .map_err(|_| "--window: bad number".to_owned())?
            }
            "--list-archs" => {
                for a in ARCHS {
                    println!("{a}");
                }
                return Ok(None);
            }
            "--list-workloads" => {
                for w in workloads::full_suite() {
                    println!("{:10} [{}] {}", w.name(), w.category(), w.description());
                }
                return Ok(None);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse(env::args().skip(1)) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("{msg}");
            }
            return usage();
        }
    };

    let Some(workload) = workloads::by_name(&opts.workload) else {
        eprintln!(
            "unknown workload '{}' (try --list-workloads)",
            opts.workload
        );
        return ExitCode::FAILURE;
    };
    let mut system = match build_system(&opts) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let cpu = OooModel::new(CpuConfig {
        window: opts.window,
        ..CpuConfig::paper_default()
    });
    let mut src = workload.source(opts.seed);
    let trace = std::iter::from_fn(move || Some(src.next_event())).take(opts.events);
    let report = cpu.run(&mut system, trace);

    println!("workload     : {workload}");
    println!("architecture : {}", system.label());
    println!(
        "events       : {} ({} instructions)",
        opts.events, report.instructions
    );
    println!("cycles       : {}", report.cycles);
    println!("IPC          : {:.4}", report.ipc());
    ExitCode::SUCCESS
}
