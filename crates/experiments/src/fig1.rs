//! Figure 1: the accuracy of miss classification across four cache
//! configurations (16 KB DM, 16 KB 2-way, 64 KB DM, 64 KB 2-way).
//!
//! Paper reference points: 88% of conflict and 86% of capacity misses
//! correctly identified on the 16 KB DM cache; 91%/92% on the 64 KB DM
//! cache.

use cache_model::CacheGeometry;
use mct::accuracy::{AccuracyEvaluator, AccuracyReport};
use mct::TagBits;
use workloads::{full_suite, Workload};

use crate::table::pct_ratio;
use crate::Table;

/// One cache configuration's results.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// Human-readable configuration name.
    pub name: String,
    /// Per-benchmark accuracy reports.
    pub benchmarks: Vec<(String, AccuracyReport)>,
    /// Suite-wide (miss-weighted) accuracy.
    pub average: AccuracyReport,
}

/// The full Figure 1 reproduction.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// The four configurations, in the paper's order.
    pub configs: Vec<ConfigResult>,
    /// Events simulated per workload.
    pub events: usize,
}

/// The paper's four cache configurations.
#[must_use]
pub fn configurations() -> Vec<(String, CacheGeometry)> {
    [(16u64, 1u32), (16, 2), (64, 1), (64, 2)]
        .into_iter()
        .map(|(kb, ways)| {
            let geom = CacheGeometry::new(kb * 1024, ways, 64).expect("paper geometry is valid");
            (
                format!(
                    "{kb}KB {}",
                    if ways == 1 {
                        "DM".into()
                    } else {
                        format!("{ways}-way")
                    }
                ),
                geom,
            )
        })
        .collect()
}

fn evaluate(workload: &Workload, geom: CacheGeometry, events: usize) -> AccuracyReport {
    let mut eval = AccuracyEvaluator::new(geom, TagBits::Full);
    let trace = crate::replay_for(workload, &geom, events);
    crate::telemetry::record_events(events as u64);
    crate::replay_accuracy(&trace, &mut eval);
    eval.finish()
}

/// Trace events this figure simulates: one pass per (configuration,
/// workload) cell.
#[must_use]
pub fn simulated_events(events: usize) -> u64 {
    (configurations().len() * full_suite().len() * events) as u64
}

/// Runs the Figure 1 experiment with `events` references per
/// workload.
#[must_use]
pub fn run(events: usize) -> Fig1 {
    let configs = configurations()
        .into_iter()
        .map(|(name, geom)| {
            let benchmarks: Vec<(String, AccuracyReport)> = crate::par_map(full_suite(), |w| {
                let report = crate::probe::cell(
                    "fig1",
                    || format!("{name}/{}", w.name()),
                    || evaluate(&w, geom, events),
                );
                (w.name().to_owned(), report)
            });
            let mut average = AccuracyReport::default();
            for (_, report) in &benchmarks {
                average.merge(report);
            }
            ConfigResult {
                name,
                benchmarks,
                average,
            }
        })
        .collect();
    Fig1 { configs, events }
}

impl std::fmt::Display for Fig1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 1: miss classification accuracy ({} events/workload)\n",
            self.events
        )?;
        let mut header = vec!["benchmark".to_owned()];
        for c in &self.configs {
            header.push(format!("{} conf%", c.name));
            header.push(format!("{} cap%", c.name));
        }
        let mut table = Table::new(header);
        let names: Vec<&String> = self.configs[0].benchmarks.iter().map(|(n, _)| n).collect();
        for (i, name) in names.iter().enumerate() {
            let mut row = vec![(*name).clone()];
            for c in &self.configs {
                let r = &c.benchmarks[i].1;
                row.push(pct_ratio(r.conflict));
                row.push(pct_ratio(r.capacity));
            }
            table.row(row);
        }
        let mut avg = vec!["AVERAGE".to_owned()];
        for c in &self.configs {
            avg.push(pct_ratio(c.average.conflict));
            avg.push(pct_ratio(c.average.capacity));
        }
        table.row(avg);
        write!(f, "{table}")?;
        writeln!(
            f,
            "\npaper: 16KB DM 88/86, 64KB DM 91/92 (conflict%/capacity%)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_paper_configurations() {
        let configs = configurations();
        assert_eq!(configs.len(), 4);
        assert_eq!(configs[0].0, "16KB DM");
        assert_eq!(configs[1].0, "16KB 2-way");
        assert_eq!(configs[3].1.associativity(), 2);
    }

    #[test]
    fn small_run_has_sane_shape() {
        let fig = run(3_000);
        assert_eq!(fig.configs.len(), 4);
        for c in &fig.configs {
            assert_eq!(c.benchmarks.len(), workloads::full_suite().len());
            assert!(c.average.misses > 0);
        }
        let display = fig.to_string();
        assert!(display.contains("AVERAGE"));
        assert!(display.contains("tomcatv"));
    }
}
