//! Figure 5: cache-exclusion policies — no buffer, the MAT, and the
//! four MCT-based filters.
//!
//! Paper reference point: simply excluding capacity misses provides
//! the best performance, beating both the MAT and the more complex
//! MCT variants, with a higher overall hit rate.

use cpu_model::{BaselineSystem, CpuReport};
use exclusion::{ExclusionConfig, ExclusionPolicy, ExclusionStats, ExclusionSystem};
use sim_core::stats::GeoMean;
use workloads::suite;

use crate::table::{pct, speedup};
use crate::{drive, Table};

/// Results for one exclusion policy.
#[derive(Debug, Clone)]
pub struct PolicyResult {
    /// The policy.
    pub policy: ExclusionPolicy,
    /// Suite-aggregated counters.
    pub stats: ExclusionStats,
    /// Geometric-mean speedup over the no-buffer baseline.
    pub mean_speedup: f64,
}

/// The Figure 5 reproduction.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Suite-average baseline (no buffer) hit rate.
    pub baseline_hit_rate: f64,
    /// One result per policy, in the paper's bar order.
    pub policies: Vec<PolicyResult>,
    /// Events per workload.
    pub events: usize,
}

/// Trace events this figure simulates: the no-buffer baseline plus
/// one run per exclusion policy, per workload.
#[must_use]
pub fn simulated_events(events: usize) -> u64 {
    ((1 + ExclusionPolicy::ALL.len()) * suite().len() * events) as u64
}

/// Runs the Figure 5 experiment.
#[must_use]
pub fn run(events: usize) -> Fig5 {
    let benchmarks = suite();
    let baseline_cells: Vec<(CpuReport, f64)> = crate::par_map(benchmarks.clone(), |w| {
        crate::probe::cell(
            "fig5",
            || format!("baseline/{}", w.name()),
            || {
                let mut sys = BaselineSystem::paper_default().expect("paper config");
                let report = drive(&mut sys, &w, events);
                (report, sys.l1_stats().hit_rate())
            },
        )
    });
    let mut baselines: Vec<CpuReport> = Vec::new();
    let mut base_hr = 0.0;
    for (report, hr) in baseline_cells {
        baselines.push(report);
        base_hr += hr;
    }
    let baseline_hit_rate = base_hr / benchmarks.len() as f64;

    let policies = crate::par_map(ExclusionPolicy::ALL.to_vec(), |policy| {
        let mut agg = ExclusionStats::default();
        let mut mean = GeoMean::default();
        for (w, base) in benchmarks.iter().zip(&baselines) {
            let (report, s) = crate::probe::cell(
                "fig5",
                || format!("{policy}/{}", w.name()),
                || {
                    let mut sys = ExclusionSystem::paper_default(ExclusionConfig::new(policy))
                        .expect("paper config");
                    let report = drive(&mut sys, w, events);
                    (report, *sys.stats())
                },
            );
            mean.push(report.speedup_over(base));
            let s = &s;
            agg.accesses += s.accesses;
            agg.d_hits += s.d_hits;
            agg.buffer_hits += s.buffer_hits;
            agg.demand_misses += s.demand_misses;
            agg.excluded += s.excluded;
        }
        PolicyResult {
            policy,
            stats: agg,
            mean_speedup: mean.mean(),
        }
    });

    Fig5 {
        baseline_hit_rate,
        policies,
        events,
    }
}

impl std::fmt::Display for Fig5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 5: cache-exclusion policies ({} events/workload)\n",
            self.events
        )?;
        let mut table = Table::new(vec![
            "policy".into(),
            "D$ HR%".into(),
            "buffer HR%".into(),
            "total HR%".into(),
            "excluded".into(),
            "speedup".into(),
        ]);
        table.row(vec![
            "no buffer".into(),
            pct(self.baseline_hit_rate),
            "0".into(),
            pct(self.baseline_hit_rate),
            "0".into(),
            "1.000".into(),
        ]);
        for p in &self.policies {
            table.row(vec![
                p.policy.to_string(),
                pct(p.stats.d_hit_rate()),
                pct(p.stats.buffer_hit_rate()),
                pct(p.stats.total_hit_rate()),
                p.stats.excluded.to_string(),
                speedup(p.mean_speedup),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(
            f,
            "\npaper: the capacity filter beats the MAT and the other variants"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_competitive_on_small_run() {
        let fig = run(4_000);
        assert_eq!(fig.policies.len(), 5);
        let capacity = fig
            .policies
            .iter()
            .find(|p| p.policy == ExclusionPolicy::Capacity)
            .expect("capacity policy present");
        let mat = fig
            .policies
            .iter()
            .find(|p| p.policy == ExclusionPolicy::Mat)
            .expect("MAT present");
        // The paper's qualitative claim on the suite: capacity ≥ MAT.
        assert!(
            capacity.stats.total_hit_rate() >= mat.stats.total_hit_rate() - 0.02,
            "capacity {} vs MAT {}",
            capacity.stats.total_hit_rate(),
            mat.stats.total_hit_rate()
        );
        assert!(fig.to_string().contains("no buffer"));
    }
}
