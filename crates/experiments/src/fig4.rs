//! Figure 4: next-line prefetch strategies — a conventional prefetcher
//! against the four conflict filters, on the slow-bus system.
//!
//! Paper reference points: filtered prefetching raises prefetch
//! accuracy by ~25% by eliminating low-probability prefetches, with
//! little coverage loss; speedups are small ("the performance
//! advantage is not significant").

use cache_model::{CacheGeometry, L2MemoryConfig};
use cpu_model::{CpuConfig, CpuReport, OooModel, Plumbing};
use mct::ConflictFilter;
use prefetcher::{NextLineSystem, PrefetchConfig, PrefetchStats};
use sim_core::stats::GeoMean;
use workloads::{suite, Workload};

use crate::table::{pct, speedup};
use crate::Table;

/// Results for one prefetch strategy.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    /// `None` = conventional (unfiltered) next-line prefetching.
    pub filter: Option<ConflictFilter>,
    /// Suite-aggregated effectiveness counters.
    pub stats: PrefetchStats,
    /// Geometric-mean speedup over no prefetching (slow bus).
    pub mean_speedup: f64,
}

/// The Figure 4 reproduction.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// The five strategies in the paper's bar order.
    pub strategies: Vec<StrategyResult>,
    /// Events per workload.
    pub events: usize,
}

/// The five Figure 4 strategies.
#[must_use]
pub fn strategies() -> Vec<Option<ConflictFilter>> {
    vec![
        None,
        Some(ConflictFilter::InConflict),
        Some(ConflictFilter::OutConflict),
        Some(ConflictFilter::AndConflict),
        Some(ConflictFilter::OrConflict),
    ]
}

fn drive_slow_bus<M: cpu_model::MemorySystem>(
    system: &mut M,
    workload: &Workload,
    events: usize,
) -> CpuReport {
    let cpu = OooModel::new(CpuConfig::paper_default());
    crate::telemetry::record_events(events as u64);
    cpu.run(system, crate::events_for(workload, crate::SEED, events))
}

/// Trace events this figure simulates: the no-prefetch baseline plus
/// one run per strategy, per workload.
#[must_use]
pub fn simulated_events(events: usize) -> u64 {
    ((1 + strategies().len()) * suite().len() * events) as u64
}

/// A no-prefetch baseline on the slow-bus system.
fn slow_baseline(workload: &Workload, events: usize) -> CpuReport {
    let plumbing = Plumbing::new(
        cpu_model::MemTimings::paper_default(),
        L2MemoryConfig::paper_slow_bus().expect("paper config"),
    );
    let mut sys = cpu_model::BaselineSystem::new(
        CacheGeometry::new(16 * 1024, 1, 64).expect("paper geometry"),
        plumbing,
    );
    drive_slow_bus(&mut sys, workload, events)
}

/// Runs the Figure 4 experiment.
#[must_use]
pub fn run(events: usize) -> Fig4 {
    let benchmarks = suite();
    let baselines: Vec<CpuReport> = crate::par_map(benchmarks.clone(), |w| {
        crate::probe::cell(
            "fig4",
            || format!("baseline/{}", w.name()),
            || slow_baseline(&w, events),
        )
    });

    let strategies = crate::par_map(strategies(), |filter| {
        let cfg = match filter {
            None => PrefetchConfig::unfiltered(),
            Some(f) => PrefetchConfig::filtered(f),
        };
        let mut agg = PrefetchStats::default();
        let mut mean = GeoMean::default();
        let strategy_name = match filter {
            None => "next-line".to_owned(),
            Some(f) => format!("ignore {f}"),
        };
        for (w, base) in benchmarks.iter().zip(&baselines) {
            let (report, s) = crate::probe::cell(
                "fig4",
                || format!("{strategy_name}/{}", w.name()),
                || {
                    let mut sys = NextLineSystem::paper_slow_bus(cfg).expect("paper config");
                    let report = drive_slow_bus(&mut sys, w, events);
                    (report, *sys.stats())
                },
            );
            mean.push(report.speedup_over(base));
            let s = &s;
            agg.accesses += s.accesses;
            agg.d_hits += s.d_hits;
            agg.buffer_hits += s.buffer_hits;
            agg.demand_misses += s.demand_misses;
            agg.issued += s.issued;
            agg.wasted += s.wasted;
            agg.discarded += s.discarded;
            agg.filtered += s.filtered;
        }
        StrategyResult {
            filter,
            stats: agg,
            mean_speedup: mean.mean(),
        }
    });

    Fig4 { strategies, events }
}

impl std::fmt::Display for Fig4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 4: next-line prefetch strategies, slow L1-L2 bus ({} events/workload)\n",
            self.events
        )?;
        let mut table = Table::new(vec![
            "strategy".into(),
            "accuracy%".into(),
            "coverage%".into(),
            "issued".into(),
            "filtered".into(),
            "speedup".into(),
        ]);
        for s in &self.strategies {
            let name = match s.filter {
                None => "next-line".to_owned(),
                Some(filt) => format!("ignore {filt}"),
            };
            table.row(vec![
                name,
                pct(s.stats.accuracy()),
                pct(s.stats.coverage()),
                s.stats.issued.to_string(),
                s.stats.filtered.to_string(),
                speedup(s.mean_speedup),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(
            f,
            "\npaper: filters raise accuracy ~25% with little coverage loss; speedups small"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_reduce_issue_traffic() {
        let fig = run(4_000);
        assert_eq!(fig.strategies.len(), 5);
        let unfiltered = &fig.strategies[0];
        let or_filter = &fig.strategies[4];
        assert!(or_filter.stats.issued < unfiltered.stats.issued);
        assert!(or_filter.stats.filtered > 0);
        // The or-conflict filter is the most discriminating.
        for s in &fig.strategies[1..4] {
            assert!(or_filter.stats.issued <= s.stats.issued);
        }
        let display = fig.to_string();
        assert!(display.contains("ignore or-conflict"));
    }
}
