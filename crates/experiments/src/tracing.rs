//! Harness-side glue for the span layer: arming, draining, and
//! rendering `sim_core::span` scopes as `trace-repro/1` JSONL or
//! Chrome `trace_event` JSON.
//!
//! The span layer itself is clock-agnostic (the simlint `wallclock`
//! rule keeps `Instant` out of sim-core); this module injects either
//! the real nanosecond clock from [`crate::telemetry::trace_clock_ns`]
//! or a constant-zero *logical* clock (`repro --trace-logical-clock`).
//! Under the logical clock — with workers zeroed and the
//! machine-dependent metrics record withheld — the rendered stream is
//! byte-identical at any `--threads`, which is what the determinism
//! test pins.
//!
//! ## `trace-repro/1`
//!
//! One JSON object per line (golden-pinned in `tests/golden_schemas.rs`):
//!
//! * a header: `{"schema":"trace-repro/1","logical":…,
//!   "events_per_workload":…,"targets":[…]}`;
//! * one `{"type":"span",…}` line per recorded span, grouped by scope
//!   in the drain order (scope kind, target, label);
//! * an optional `{"type":"metrics",…}` record (real-clock runs only):
//!   arena and decomposed-arena hit/miss counts (including the
//!   set-partitioned form's hits/misses and resident bytes), pool
//!   alloc/reuse/recycle counts, per-worker scheduler tallies, fault
//!   injection/exhaustion and degraded-cell counts;
//! * a `{"type":"totals",…}` footer.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use sim_core::parallel::WorkerTally;
use sim_core::span::{ScopeRecord, SpanRecord};
use trace_gen::arena::{ArenaStats, TraceArena};
use trace_gen::decomposed::DecomposedArena;

use crate::telemetry::{json_string, trace_clock_ns};

/// Output format for `repro --trace-out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// `trace-repro/1` JSONL (the default).
    Jsonl,
    /// Chrome `trace_event` JSON, loadable in `chrome://tracing` and
    /// Perfetto.
    Chrome,
}

impl TraceFormat {
    /// Parses a `--trace-format` argument.
    ///
    /// # Errors
    ///
    /// Returns a usage message for anything but `jsonl` / `chrome`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "jsonl" => Ok(TraceFormat::Jsonl),
            "chrome" => Ok(TraceFormat::Chrome),
            other => Err(format!(
                "unknown trace format {other:?}; expected jsonl or chrome"
            )),
        }
    }
}

/// Run-level fields of the `trace-repro/1` header line.
#[derive(Debug, Clone)]
pub struct TraceHeader {
    /// Whether the run used the logical (constant-zero) clock.
    pub logical: bool,
    /// `--events` per workload.
    pub events_per_workload: usize,
    /// The requested targets, in request order.
    pub targets: Vec<&'static str>,
}

/// The constant-zero clock behind `--trace-logical-clock`: span
/// structure and ordering survive, durations collapse to zero, and
/// the stream becomes thread-count invariant byte for byte.
fn logical_clock() -> u64 {
    0
}

/// Arms the span layer for a traced run: installs the real or logical
/// clock and restarts the scheduler's per-worker tallies so lanes
/// start at worker 1.
pub fn arm(logical: bool) {
    sim_core::parallel::reset_worker_tallies();
    if logical {
        sim_core::span::arm(logical_clock);
    } else {
        sim_core::span::arm(trace_clock_ns);
    }
}

/// Disarms the span layer and returns every flushed scope in the
/// deterministic drain order.
#[must_use]
pub fn drain() -> Vec<ScopeRecord> {
    sim_core::span::disarm()
}

/// A point-in-time capture of the runtime-metrics registry: every
/// counter the subsystems expose, gathered once at the end of a
/// traced run.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Trace-arena counters.
    pub arena: ArenaStats,
    /// Decomposed-arena replay hits.
    pub decomposed_hits: u64,
    /// Decomposed-arena decompositions.
    pub decomposed_misses: u64,
    /// Partitioned-form requests served from a memoized partition.
    pub partitioned_hits: u64,
    /// Partitioned-form requests that ran the counting sort.
    pub partitioned_misses: u64,
    /// Heap bytes of memoized partitioned traces resident.
    pub partitioned_resident_bytes: u64,
    /// Kernel array-pool traffic.
    pub pool: cache_model::pool::PoolStats,
    /// Per-worker scheduler tallies, sorted by worker id.
    pub workers: Vec<(u32, WorkerTally)>,
    /// Faults injected (each one burned a retry).
    pub fault_injected: u64,
    /// Faults that exhausted a retry budget.
    pub fault_exhausted: u64,
    /// Cells the sweep gave up on.
    pub degraded: u64,
}

impl MetricsSnapshot {
    /// Captures the live process-wide counters. `degraded` comes from
    /// the sweep's own accounting (the fault layer does not know
    /// which exhaustions the scheduler absorbed).
    #[must_use]
    pub fn capture(degraded: u64) -> Self {
        let (decomposed_hits, decomposed_misses) = DecomposedArena::global().stats();
        let partitioned = DecomposedArena::global().partitioned_stats();
        let fault = sim_core::fault::stats();
        MetricsSnapshot {
            arena: TraceArena::global().stats(),
            decomposed_hits,
            decomposed_misses,
            partitioned_hits: partitioned.hits,
            partitioned_misses: partitioned.misses,
            partitioned_resident_bytes: partitioned.resident_bytes,
            pool: cache_model::pool::stats(),
            workers: sim_core::parallel::worker_tallies(),
            fault_injected: fault.injected,
            fault_exhausted: fault.exhausted,
            degraded,
        }
    }
}

fn span_line(scope: &ScopeRecord, span: &SpanRecord, logical: bool) -> String {
    let (worker, start_ns, dur_ns) = if logical {
        (0, 0, 0)
    } else {
        (scope.worker, span.start_ns, span.dur_ns)
    };
    let mut line = String::with_capacity(160);
    let _ = write!(
        line,
        "{{\"type\":\"span\",\"scope\":{scope_kind},\"target\":{target},\"label\":{label},",
        scope_kind = json_string(scope.kind.wire_name()),
        target = json_string(&scope.target),
        label = json_string(&scope.label),
    );
    let _ = write!(
        line,
        "\"worker\":{worker},\"name\":{name},\"id\":{id},\"parent\":{parent},\"depth\":{depth},\"start_ns\":{start_ns},\"dur_ns\":{dur_ns},\"events\":{events}}}",
        name = json_string(span.name),
        id = span.id,
        parent = span.parent,
        depth = span.depth,
        events = span.events,
    );
    line
}

fn metrics_line(m: &MetricsSnapshot) -> String {
    let mut line = String::with_capacity(256);
    let _ = write!(
        line,
        "{{\"type\":\"metrics\",\"arena\":{{\"hits\":{},\"misses\":{},\"traces\":{},\"resident_events\":{}}},",
        m.arena.hits, m.arena.misses, m.arena.traces, m.arena.resident_events,
    );
    let _ = write!(
        line,
        "\"decomposed\":{{\"hits\":{},\"misses\":{},\"partitioned\":{{\"hits\":{},\"misses\":{},\"resident_bytes\":{}}}}},",
        m.decomposed_hits,
        m.decomposed_misses,
        m.partitioned_hits,
        m.partitioned_misses,
        m.partitioned_resident_bytes,
    );
    let _ = write!(
        line,
        "\"pool\":{{\"allocs\":{},\"reuses\":{},\"recycles\":{}}},",
        m.pool.allocs, m.pool.reuses, m.pool.recycles,
    );
    line.push_str("\"workers\":[");
    for (i, (worker, t)) in m.workers.iter().enumerate() {
        let comma = if i + 1 < m.workers.len() { "," } else { "" };
        let _ = write!(
            line,
            "{{\"worker\":{worker},\"cells\":{},\"chunks\":{},\"busy_ns\":{}}}{comma}",
            t.cells, t.chunks, t.busy_ns,
        );
    }
    let _ = write!(
        line,
        "],\"fault\":{{\"injected\":{},\"exhausted\":{},\"degraded\":{}}}}}",
        m.fault_injected, m.fault_exhausted, m.degraded,
    );
    line
}

/// Renders drained scopes as the `trace-repro/1` JSONL document.
/// Under a logical header the nondeterministic fields (worker,
/// `start_ns`, `dur_ns`) are zeroed and `metrics` is withheld, so the
/// whole document is byte-identical at any thread count.
#[must_use]
pub fn render_jsonl(
    records: &[ScopeRecord],
    header: &TraceHeader,
    metrics: Option<&MetricsSnapshot>,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"{}\",\"logical\":{},\"events_per_workload\":{},\"targets\":[",
        sim_core::registry::SCHEMA_TRACE,
        header.logical,
        header.events_per_workload,
    );
    for (i, t) in header.targets.iter().enumerate() {
        let comma = if i + 1 < header.targets.len() {
            ","
        } else {
            ""
        };
        let _ = write!(out, "{}{comma}", json_string(t));
    }
    out.push_str("]}\n");
    let mut spans = 0u64;
    let mut events = 0u64;
    for scope in records {
        for span in &scope.spans {
            out.push_str(&span_line(scope, span, header.logical));
            out.push('\n');
            spans += 1;
            events += span.events;
        }
    }
    if !header.logical {
        if let Some(m) = metrics {
            out.push_str(&metrics_line(m));
            out.push('\n');
        }
    }
    let _ = writeln!(
        out,
        "{{\"type\":\"totals\",\"scopes\":{},\"spans\":{spans},\"events\":{events}}}",
        records.len(),
    );
    out
}

/// Renders drained scopes as Chrome `trace_event` JSON: one complete
/// (`"ph":"X"`) event per span on the owning worker's lane, with
/// thread-name metadata so `chrome://tracing`/Perfetto label the
/// lanes. Timestamps are microseconds (the span clock's nanoseconds
/// ÷ 1000).
#[must_use]
pub fn render_chrome(records: &[ScopeRecord], header: &TraceHeader) -> String {
    let logical = header.logical;
    let mut out = String::from("[\n");
    let workers: BTreeSet<u32> = records
        .iter()
        .map(|r| if logical { 0 } else { r.worker })
        .collect();
    let mut first = true;
    for w in workers {
        push_event(&mut out, &mut first, &format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{w},\"args\":{{\"name\":{}}}}}",
            json_string(&format!("worker {w}")),
        ));
    }
    for scope in records {
        let tid = if logical { 0 } else { scope.worker };
        for span in &scope.spans {
            let (ts, dur) = if logical {
                (0, 0)
            } else {
                (span.start_ns, span.dur_ns)
            };
            push_event(&mut out, &mut first, &format!(
                "{{\"name\":{name},\"cat\":{cat},\"ph\":\"X\",\"ts\":{ts_us}.{ts_frac:03},\"dur\":{dur_us}.{dur_frac:03},\"pid\":1,\"tid\":{tid},\"args\":{{\"target\":{target},\"label\":{label},\"events\":{events}}}}}",
                name = json_string(span.name),
                cat = json_string(scope.kind.wire_name()),
                ts_us = ts / 1000,
                ts_frac = ts % 1000,
                dur_us = dur / 1000,
                dur_frac = dur % 1000,
                target = json_string(&scope.target),
                label = json_string(&scope.label),
                events = span.events,
            ));
        }
    }
    out.push_str("\n]\n");
    out
}

fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(event);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::span::ScopeKind;

    fn sample_records() -> Vec<ScopeRecord> {
        vec![
            ScopeRecord {
                kind: ScopeKind::Cell,
                target: "fig1".to_owned(),
                label: "16KB DM/gcc".to_owned(),
                worker: 2,
                spans: vec![
                    SpanRecord {
                        name: "cell_run",
                        id: 1,
                        parent: 0,
                        depth: 0,
                        start_ns: 1_000,
                        dur_ns: 9_500,
                        events: 0,
                    },
                    SpanRecord {
                        name: "replay_block",
                        id: 2,
                        parent: 1,
                        depth: 1,
                        start_ns: 2_000,
                        dur_ns: 7_000,
                        events: 2_000,
                    },
                ],
            },
            ScopeRecord {
                kind: ScopeKind::Subsystem,
                target: "arena".to_owned(),
                label: "gcc/1/2000".to_owned(),
                worker: 1,
                spans: vec![SpanRecord {
                    name: "arena_materialize",
                    id: 1,
                    parent: 0,
                    depth: 0,
                    start_ns: 500,
                    dur_ns: 400,
                    events: 2_000,
                }],
            },
        ]
    }

    fn header(logical: bool) -> TraceHeader {
        TraceHeader {
            logical,
            events_per_workload: 2_000,
            targets: vec!["fig1"],
        }
    }

    #[test]
    fn jsonl_round_trips_and_totals_add_up() {
        let metrics = MetricsSnapshot {
            workers: vec![(
                1,
                WorkerTally {
                    cells: 3,
                    chunks: 2,
                    busy_ns: 10_000,
                },
            )],
            ..MetricsSnapshot::default()
        };
        let doc = render_jsonl(&sample_records(), &header(false), Some(&metrics));
        let values = crate::jsonl::parse_lines(&doc).expect("valid JSONL");
        assert_eq!(values[0].str_field("schema"), Some("trace-repro/1"));
        let spans: Vec<_> = values
            .iter()
            .filter(|v| v.str_field("type") == Some("span"))
            .collect();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].str_field("name"), Some("cell_run"));
        assert_eq!(spans[0].u64_field("worker"), Some(2));
        assert!(values
            .iter()
            .any(|v| v.str_field("type") == Some("metrics")));
        let totals = values.last().expect("totals footer");
        assert_eq!(totals.str_field("type"), Some("totals"));
        assert_eq!(totals.u64_field("spans"), Some(3));
        assert_eq!(totals.u64_field("events"), Some(4_000));
    }

    #[test]
    fn logical_mode_zeroes_time_and_withholds_metrics() {
        let metrics = MetricsSnapshot::default();
        let doc = render_jsonl(&sample_records(), &header(true), Some(&metrics));
        let values = crate::jsonl::parse_lines(&doc).expect("valid JSONL");
        assert!(!values
            .iter()
            .any(|v| v.str_field("type") == Some("metrics")));
        for v in values
            .iter()
            .filter(|v| v.str_field("type") == Some("span"))
        {
            assert_eq!(v.u64_field("worker"), Some(0));
            assert_eq!(v.u64_field("start_ns"), Some(0));
            assert_eq!(v.u64_field("dur_ns"), Some(0));
        }
    }

    #[test]
    fn chrome_document_is_balanced_and_typed() {
        let doc = render_chrome(&sample_records(), &header(false));
        assert!(doc.starts_with("[\n"));
        assert!(doc.ends_with("\n]\n"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 3);
        assert!(doc.contains("\"ts\":1.000"));
        assert!(doc.contains("\"dur\":9.500"));
        assert!(doc.contains("\"thread_name\""));
    }

    #[test]
    fn format_parses() {
        assert_eq!(TraceFormat::parse("jsonl"), Ok(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("chrome"), Ok(TraceFormat::Chrome));
        assert!(TraceFormat::parse("svg").is_err());
    }
}
