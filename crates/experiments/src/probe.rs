//! Harness-side probe orchestration: per-cell sink installation,
//! record collection, and the `obs-repro/1` JSONL serialization.
//!
//! [`sim_core::probe`] provides the event stream and the sinks; this
//! module decides *when* to install them. The `repro` harness calls
//! [`configure`] once from its CLI flags, every figure driver wraps
//! each experiment cell in [`cell`], and after the run the harness
//! [`drain`]s the folded records and writes them with
//! [`render_jsonl`].
//!
//! Records are sorted by `(target, cell)` before serialization, and
//! each cell's events are folded entirely on the worker thread that
//! ran the cell (sinks are thread-local), so the JSONL output is
//! byte-identical at any `--threads` setting.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use sim_core::probe::{CellProbe, EpochSink, EpochSnapshot, JsonlSink, Registry};

use crate::telemetry::{json_f64, json_string};

/// What the installed probe collects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeMode {
    /// Fold events into fixed-length epochs (`--probe epoch:N`).
    Epoch(u64),
    /// Stream every raw event (`--probe raw`). Large: intended for
    /// small `--events` runs.
    Raw,
}

impl ProbeMode {
    /// The schema's `mode` field value.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            ProbeMode::Epoch(_) => "epoch",
            ProbeMode::Raw => "raw",
        }
    }
}

/// One experiment cell's folded probe output.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// The figure target the cell belongs to (`fig1`, …).
    pub target: &'static str,
    /// Unique cell label within the target (e.g. `dm16/swim`).
    pub cell: String,
    /// Epoch-folded data (empty in raw mode).
    pub epochs: Vec<EpochSnapshot>,
    /// Whole-cell counters and histograms (empty in raw mode).
    pub totals: Registry,
    /// Whole-cell hottest sets by conflict count.
    pub hot_sets: Vec<(u32, u64)>,
    /// Raw event JSONL (one `{"kind":…}` object per line; `None` in
    /// epoch mode).
    pub raw: Option<String>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CONFIG: Mutex<Option<ProbeMode>> = Mutex::new(None);
static RECORDS: Mutex<Vec<CellRecord>> = Mutex::new(Vec::new());

/// Installs (or clears, with `None`) the process-wide probe mode and
/// discards any records from a previous run.
pub fn configure(mode: Option<ProbeMode>) {
    *CONFIG.lock().expect("probe config poisoned") = mode;
    RECORDS.lock().expect("probe records poisoned").clear();
    ENABLED.store(mode.is_some(), Ordering::Release);
}

/// Whether [`configure`] armed a probe mode.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Runs one experiment cell under the configured probe (if any) and
/// inside a `cell_run` span scope (if tracing is armed).
///
/// `label` is only invoked when probing or tracing is armed, so
/// drivers pay no string formatting on plain runs. The cell body `f`
/// runs with a thread-local sink installed; its folded record is
/// appended to the global collection for [`drain`].
pub fn cell<R>(target: &'static str, label: impl Fn() -> String, f: impl FnOnce() -> R) -> R {
    sim_core::span::scope(
        sim_core::span::ScopeKind::Cell,
        "cell_run",
        target,
        &label,
        || cell_probed(target, &label, f),
    )
}

fn cell_probed<R>(target: &'static str, label: &dyn Fn() -> String, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let mode = match *CONFIG.lock().expect("probe config poisoned") {
        Some(m) => m,
        // configure(None) raced us; run unprobed.
        None => return f(),
    };
    let (record, out) = match mode {
        ProbeMode::Epoch(len) => {
            let sink = Rc::new(RefCell::new(EpochSink::new(len)));
            let out = sim_core::probe::with_sink(sink.clone(), f);
            let CellProbe {
                epochs,
                totals,
                hot_sets,
            } = Rc::try_unwrap(sink)
                .expect("cell sink still installed")
                .into_inner()
                .finish();
            (
                CellRecord {
                    target,
                    cell: label(),
                    epochs,
                    totals,
                    hot_sets,
                    raw: None,
                },
                out,
            )
        }
        ProbeMode::Raw => {
            let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::<u8>::new())));
            let out = sim_core::probe::with_sink(sink.clone(), f);
            let (buf, _written) = Rc::try_unwrap(sink)
                .expect("cell sink still installed")
                .into_inner()
                .finish()
                .expect("Vec<u8> writes cannot fail");
            (
                CellRecord {
                    target,
                    cell: label(),
                    epochs: Vec::new(),
                    totals: Registry::new(),
                    hot_sets: Vec::new(),
                    raw: Some(String::from_utf8(buf).expect("probe JSONL is ASCII")),
                },
                out,
            )
        }
    };
    // Injection site: flushing the folded record is where a real sink
    // would hit I/O. Transient faults retry inside the gate before the
    // record is pushed (so a recovered flush stores it exactly once);
    // a persistent fault unwinds and the scheduler's cell retry takes
    // over.
    let _flush = sim_core::span::enter("probe_flush");
    if let Err(fault) = sim_core::fault::gate(sim_core::fault::FaultSite::ProbeFlush) {
        std::panic::panic_any(fault);
    }
    RECORDS.lock().expect("probe records poisoned").push(record);
    out
}

/// Takes all collected records, sorted by `(target, cell)` — the
/// deterministic serialization order.
#[must_use]
pub fn drain() -> Vec<CellRecord> {
    let mut records: Vec<CellRecord> =
        std::mem::take(&mut *RECORDS.lock().expect("probe records poisoned"));
    records.sort_by(|a, b| a.target.cmp(b.target).then_with(|| a.cell.cmp(&b.cell)));
    records
}

/// The run-level fields of the `obs-repro/1` header line.
#[derive(Debug, Clone)]
pub struct RunHeader {
    /// The probe mode the run used.
    pub mode: ProbeMode,
    /// `--events` per workload.
    pub events_per_workload: usize,
    /// Figure targets that ran, in run order.
    pub targets: Vec<&'static str>,
}

fn counters_json(reg: &Registry) -> String {
    let mut out = String::from("{");
    for (i, (name, v)) in reg.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{v}", json_string(name));
    }
    out.push('}');
    out
}

fn hist_json(reg: &Registry) -> String {
    let mut out = String::from("{");
    for (i, (name, h)) in reg.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"mean\":{},\"max\":{}}}",
            json_string(name),
            h.count(),
            json_f64(h.mean()),
            h.max(),
        );
    }
    out.push('}');
    out
}

fn hot_sets_json(hot: &[(u32, u64)]) -> String {
    let mut out = String::from("[");
    for (i, (set, count)) in hot.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{set},{count}]");
    }
    out.push(']');
    out
}

/// Serializes drained records as an `obs-repro/1` JSONL document.
///
/// Line order: one header, then per record (already sorted by the
/// caller via [`drain`]) its epoch lines (epoch mode) or event lines
/// (raw mode) followed by its cell summary line, then one totals
/// footer. See EXPERIMENTS.md §"Observability" for field semantics.
#[must_use]
pub fn render_jsonl(records: &[CellRecord], header: &RunHeader) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"{}\",\"mode\":\"",
        sim_core::registry::SCHEMA_OBS
    );
    out.push_str(header.mode.name());
    out.push('"');
    if let ProbeMode::Epoch(len) = header.mode {
        let _ = write!(out, ",\"epoch_len\":{len}");
    }
    let _ = write!(
        out,
        ",\"events_per_workload\":{},\"targets\":[",
        header.events_per_workload
    );
    for (i, t) in header.targets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(t));
    }
    out.push_str("]}\n");

    let mut grand = Registry::new();
    for rec in records {
        let target = json_string(rec.target);
        let cell = json_string(&rec.cell);
        if let Some(raw) = &rec.raw {
            for line in raw.lines() {
                let fields = line
                    .strip_prefix('{')
                    .and_then(|l| l.strip_suffix('}'))
                    .unwrap_or(line);
                let _ = writeln!(
                    out,
                    "{{\"type\":\"event\",\"target\":{target},\"cell\":{cell},{fields}}}"
                );
            }
        }
        for e in &rec.epochs {
            let _ = writeln!(
                out,
                "{{\"type\":\"epoch\",\"target\":{target},\"cell\":{cell},\
                 \"epoch\":{},\"accesses\":{},\"hits\":{},\"misses\":{},\
                 \"conflict\":{},\"capacity\":{},\"alias\":{},\
                 \"oracle_agree\":{},\"oracle_total\":{},\"hot_sets\":{}}}",
                e.epoch,
                e.accesses,
                e.hits,
                e.misses(),
                e.conflict,
                e.capacity,
                e.alias,
                e.oracle_agree,
                e.oracle_total,
                hot_sets_json(&e.hot_sets),
            );
        }
        grand.merge(&rec.totals);
        let _ = writeln!(
            out,
            "{{\"type\":\"cell\",\"target\":{target},\"cell\":{cell},\
             \"epochs\":{},\"counters\":{},\"hist\":{},\"hot_sets\":{}}}",
            rec.epochs.len(),
            counters_json(&rec.totals),
            hist_json(&rec.totals),
            hot_sets_json(&rec.hot_sets),
        );
    }
    let _ = writeln!(
        out,
        "{{\"type\":\"totals\",\"cells\":{},\"counters\":{}}}",
        records.len(),
        counters_json(&grand),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::probe::{emit, ProbeEvent};

    // The probe configuration is process-global, so everything that
    // configures it lives in this one test (Rust runs tests in the
    // same process, possibly concurrently).
    #[test]
    fn configure_cell_drain_round_trip() {
        configure(Some(ProbeMode::Epoch(2)));
        assert!(enabled());
        let out = cell(
            "t1",
            || "b/cell".to_owned(),
            || {
                for hit in [true, false, true] {
                    emit(ProbeEvent::Access { hit });
                }
                42
            },
        );
        assert_eq!(out, 42);
        cell(
            "t1",
            || "a/cell".to_owned(),
            || {
                emit(ProbeEvent::Access { hit: false });
            },
        );
        let records = drain();
        assert_eq!(records.len(), 2);
        // Sorted by (target, cell), not insertion order.
        assert_eq!(records[0].cell, "a/cell");
        assert_eq!(records[1].cell, "b/cell");
        assert_eq!(records[1].epochs.len(), 2);
        assert_eq!(records[1].totals.counter("access.hit"), 2);

        let jsonl = render_jsonl(
            &records,
            &RunHeader {
                mode: ProbeMode::Epoch(2),
                events_per_workload: 3,
                targets: vec!["t1"],
            },
        );
        let values = crate::jsonl::parse_lines(&jsonl).expect("valid JSONL");
        assert_eq!(values[0].str_field("schema"), Some("obs-repro/1"));
        assert_eq!(values[0].u64_field("epoch_len"), Some(2));
        let types: Vec<_> = values
            .iter()
            .map(|v| v.str_field("type").unwrap_or("header"))
            .collect();
        assert_eq!(
            types,
            ["header", "epoch", "cell", "epoch", "epoch", "cell", "totals"]
        );
        let totals = values.last().unwrap();
        assert_eq!(totals.u64_field("cells"), Some(2));
        assert_eq!(totals.get("counters").unwrap().u64_field("access"), Some(4));

        // Raw mode streams prefixed events.
        configure(Some(ProbeMode::Raw));
        cell(
            "t2",
            || "only".to_owned(),
            || {
                emit(ProbeEvent::Access { hit: true });
            },
        );
        let records = drain();
        let jsonl = render_jsonl(
            &records,
            &RunHeader {
                mode: ProbeMode::Raw,
                events_per_workload: 1,
                targets: vec!["t2"],
            },
        );
        let values = crate::jsonl::parse_lines(&jsonl).expect("valid raw JSONL");
        assert!(!jsonl.contains("epoch_len"));
        let ev = &values[1];
        assert_eq!(ev.str_field("type"), Some("event"));
        assert_eq!(ev.str_field("kind"), Some("access"));
        assert_eq!(ev.str_field("cell"), Some("only"));

        // Disabled again: cell() is a pass-through and label is lazy.
        configure(None);
        assert!(!enabled());
        let out = cell("t3", || unreachable!("label must be lazy"), || 7);
        assert_eq!(out, 7);
        assert!(drain().is_empty());
    }
}
