//! Ablations for the design choices DESIGN.md calls out, beyond the
//! paper's own figures:
//!
//! * **shadow-directory depth** — the paper's unevaluated "multiple
//!   evicted tags per set" option (§3): how much conflict-accuracy do
//!   deeper directories buy, per cache configuration?
//! * **CPU window** — the instruction-window choice (32) that sets the
//!   baseline's latency-hiding ability and hence every speedup in
//!   Figures 3–6;
//! * **buffer size** — the AMB's entry count around the paper's 8/16
//!   points.

use amb::{AmbConfig, AmbPolicy, AmbSystem};
use cpu_model::{BaselineSystem, CpuConfig, OooModel};
use mct::accuracy::{AccuracyEvaluator, AccuracyReport};
use mct::{ShadowDirectory, TagBits};
use sim_core::stats::GeoMean;
use workloads::{full_suite, suite};

use crate::table::{pct, speedup};
use crate::{fig1, Table};

/// Accuracy per (configuration, depth).
#[derive(Debug, Clone)]
pub struct DepthPoint {
    /// Cache configuration name.
    pub config: String,
    /// Shadow-directory depth (1 = the paper's MCT).
    pub depth: usize,
    /// Suite-wide accuracy.
    pub report: AccuracyReport,
}

/// Speedup per CPU window size.
#[derive(Debug, Clone)]
pub struct WindowPoint {
    /// Instruction-window size.
    pub window: u64,
    /// Suite-average baseline IPC.
    pub baseline_ipc: f64,
    /// Geomean VictPref speedup over the baseline at this window.
    pub victpref_speedup: f64,
}

/// Speedup per AMB buffer size.
#[derive(Debug, Clone)]
pub struct BufferPoint {
    /// Buffer entries.
    pub entries: usize,
    /// Geomean VicPreExc speedup over the no-buffer baseline.
    pub speedup: f64,
}

/// The three ablations.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Shadow-directory depth sweep.
    pub depths: Vec<DepthPoint>,
    /// CPU window sweep.
    pub windows: Vec<WindowPoint>,
    /// Buffer-size sweep.
    pub buffers: Vec<BufferPoint>,
    /// Events per workload.
    pub events: usize,
}

/// The swept shadow-directory depths.
pub const DEPTHS: [usize; 4] = [1, 2, 4, 8];
/// The swept CPU windows.
pub const WINDOWS: [u64; 5] = [8, 16, 32, 64, 128];
/// The swept buffer sizes.
pub const BUFFERS: [usize; 5] = [2, 4, 8, 16, 32];

fn depth_sweep(events: usize) -> Vec<DepthPoint> {
    let mut cells = Vec::new();
    for (name, geom) in fig1::configurations() {
        for depth in DEPTHS {
            cells.push((name.clone(), geom, depth));
        }
    }
    crate::par_map(cells, |(config, geom, depth)| {
        let mut total = AccuracyReport::default();
        for w in full_suite() {
            let report = crate::probe::cell(
                "ablation",
                || format!("depth/{config}-d{depth}/{}", w.name()),
                || {
                    let dir = ShadowDirectory::new(geom.num_sets(), TagBits::Full, depth);
                    let mut eval = AccuracyEvaluator::with_classifier(geom, dir);
                    let trace = crate::replay_for(&w, &geom, events);
                    crate::telemetry::record_events(events as u64);
                    crate::replay_accuracy(&trace, &mut eval);
                    eval.finish()
                },
            );
            total.merge(&report);
        }
        DepthPoint {
            config,
            depth,
            report: total,
        }
    })
}

fn window_sweep(events: usize) -> Vec<WindowPoint> {
    let benchmarks = suite();
    crate::par_map(WINDOWS.to_vec(), |window| {
        let cpu = OooModel::new(CpuConfig {
            window,
            ..CpuConfig::paper_default()
        });
        let mut ipc_sum = 0.0;
        let mut mean = GeoMean::default();
        for w in &benchmarks {
            let run = |sys: &mut dyn cpu_model::MemorySystem| {
                crate::telemetry::record_events(events as u64);
                cpu.run(&mut &mut *sys, crate::events_for(w, crate::SEED, events))
            };
            let mut base = BaselineSystem::paper_default().expect("paper config");
            let base_report = crate::probe::cell(
                "ablation",
                || format!("window/w{window}-base/{}", w.name()),
                || run(&mut base),
            );
            ipc_sum += base_report.ipc();
            let mut amb = AmbSystem::paper_default(AmbConfig::new(AmbPolicy::VictPref))
                .expect("paper config");
            let amb_report = crate::probe::cell(
                "ablation",
                || format!("window/w{window}-victpref/{}", w.name()),
                || run(&mut amb),
            );
            mean.push(amb_report.speedup_over(&base_report));
        }
        WindowPoint {
            window,
            baseline_ipc: ipc_sum / benchmarks.len() as f64,
            victpref_speedup: mean.mean(),
        }
    })
}

fn buffer_sweep(events: usize) -> Vec<BufferPoint> {
    let benchmarks = suite();
    let cpu = OooModel::new(CpuConfig::paper_default());
    let baselines: Vec<_> = benchmarks
        .iter()
        .map(|w| {
            crate::probe::cell(
                "ablation",
                || format!("buffer/base/{}", w.name()),
                || {
                    let mut base = BaselineSystem::paper_default().expect("paper config");
                    crate::drive(&mut base, w, events)
                },
            )
        })
        .collect();
    crate::par_map(BUFFERS.to_vec(), |entries| {
        let mut mean = GeoMean::default();
        for (w, base) in benchmarks.iter().zip(&baselines) {
            let report = crate::probe::cell(
                "ablation",
                || format!("buffer/e{entries}/{}", w.name()),
                || {
                    let cfg = AmbConfig {
                        entries,
                        ..AmbConfig::new(AmbPolicy::VicPreExc)
                    };
                    let mut sys = AmbSystem::paper_default(cfg).expect("paper config");
                    crate::telemetry::record_events(events as u64);
                    cpu.run(&mut sys, crate::events_for(w, crate::SEED, events))
                },
            );
            mean.push(report.speedup_over(base));
        }
        BufferPoint {
            entries,
            speedup: mean.mean(),
        }
    })
}

/// Trace events the three ablations simulate: the depth sweep (one
/// pass per configuration × depth × workload), the window sweep (a
/// baseline and a VictPref run per window × workload), and the buffer
/// sweep (shared baselines plus one run per size × workload).
#[must_use]
pub fn simulated_events(events: usize) -> u64 {
    let depth = fig1::configurations().len() * DEPTHS.len() * full_suite().len();
    let window = WINDOWS.len() * 2 * suite().len();
    let buffer = (1 + BUFFERS.len()) * suite().len();
    ((depth + window + buffer) * events) as u64
}

/// Runs all three ablations.
#[must_use]
pub fn run(events: usize) -> Ablation {
    Ablation {
        depths: depth_sweep(events),
        windows: window_sweep(events),
        buffers: buffer_sweep(events),
        events,
    }
}

impl std::fmt::Display for Ablation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation A: shadow-directory depth (multiple evicted tags per set, paper §3) ({} events/workload)\n",
            self.events
        )?;
        let mut t = Table::new(vec![
            "config".into(),
            "depth".into(),
            "conflict acc%".into(),
            "capacity acc%".into(),
        ]);
        for p in &self.depths {
            t.row(vec![
                p.config.clone(),
                p.depth.to_string(),
                pct(p.report.conflict.value()),
                pct(p.report.capacity.value()),
            ]);
        }
        write!(f, "{t}")?;

        writeln!(
            f,
            "\nAblation B: CPU instruction window (DESIGN.md choice: 32)\n"
        )?;
        let mut t = Table::new(vec![
            "window".into(),
            "baseline IPC".into(),
            "VictPref speedup".into(),
        ]);
        for p in &self.windows {
            t.row(vec![
                p.window.to_string(),
                format!("{:.3}", p.baseline_ipc),
                speedup(p.victpref_speedup),
            ]);
        }
        write!(f, "{t}")?;

        writeln!(f, "\nAblation C: AMB buffer size (VicPreExc)\n")?;
        let mut t = Table::new(vec!["entries".into(), "speedup".into()]);
        for p in &self.buffers {
            t.row(vec![p.entries.to_string(), speedup(p.speedup)]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_directories_only_help_conflict_accuracy() {
        let points = depth_sweep(4_000);
        // Within each configuration, conflict accuracy is
        // non-decreasing in depth (a superset of tags can only match
        // more).
        for config in points
            .iter()
            .map(|p| p.config.clone())
            .collect::<std::collections::BTreeSet<_>>()
        {
            let series: Vec<&DepthPoint> = points.iter().filter(|p| p.config == config).collect();
            for pair in series.windows(2) {
                assert!(
                    pair[1].report.conflict.value() >= pair[0].report.conflict.value() - 0.01,
                    "{config}: depth {} -> {} dropped conflict accuracy",
                    pair[0].depth,
                    pair[1].depth
                );
            }
        }
    }

    #[test]
    fn smaller_windows_hide_less_latency() {
        let points = window_sweep(5_000);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(
            last.baseline_ipc > first.baseline_ipc,
            "IPC must grow with window"
        );
    }

    #[test]
    fn display_renders() {
        let a = run(2_000);
        let s = a.to_string();
        assert!(s.contains("Ablation A"));
        assert!(s.contains("Ablation C"));
    }
}
