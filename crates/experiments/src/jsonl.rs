//! A minimal JSON reader for the workspace's own line-oriented
//! schemas (`bench-repro/2`, `obs-repro/1`, `fault-repro/1`).
//!
//! The workspace builds offline with no `serde_json`, so the `obs`
//! inspection tool and the golden-schema tests parse with this small
//! recursive-descent reader instead. It covers exactly the JSON the
//! harness emits: objects, arrays, strings with `\"` / `\\` / `\uXXXX`
//! escapes, numbers, booleans and `null` — and rejects anything
//! malformed with a byte offset.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the schemas stay well inside
    /// the 2^53 integer range).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Key order is not preserved (the schemas never rely
    /// on it).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value's elements, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `self[key]` as a string.
    #[must_use]
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Convenience: `self[key]` as a `u64`.
    #[must_use]
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Value::as_u64)
    }
}

/// A parse failure with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // The schemas only escape control characters
                            // (no surrogate pairs are ever emitted).
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Parses a JSONL document: one JSON value per non-empty line.
///
/// # Errors
///
/// Returns the first line's [`ParseError`] annotated with its
/// (1-based) line number.
pub fn parse_lines(input: &str) -> Result<Vec<Value>, String> {
    input
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| parse(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(
            parse("\"a\\u000ab\"").unwrap(),
            Value::String("a\nb".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].str_field("b"), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Object(BTreeMap::new())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_utf8_strings() {
        assert_eq!(
            parse("\"héllo → wörld\"").unwrap().as_str(),
            Some("héllo → wörld")
        );
    }

    #[test]
    fn jsonl_reports_line_numbers() {
        let ok = parse_lines("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(ok.len(), 2);
        let err = parse_lines("{\"a\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn round_trips_the_bench_schema() {
        let report = crate::telemetry::BenchReport {
            threads: 2,
            events_per_workload: 100,
            figures: vec![],
            total_wall_seconds: 1.0,
        };
        let v = parse(&report.to_json()).unwrap();
        assert_eq!(v.str_field("schema"), Some("bench-repro/2"));
        assert_eq!(v.u64_field("threads"), Some(2));
    }
}
