//! Summarization of `obs-repro/1` probe files — the logic behind the
//! `obs` binary, kept in the library so it is testable.

use std::collections::BTreeMap;

use crate::jsonl::{self, Value};
use crate::Table;

/// Options for [`summarize`].
#[derive(Debug, Clone)]
pub struct SummarizeOptions {
    /// When set, also render the full epoch table for every cell whose
    /// `target/cell` name contains this substring.
    pub cell_filter: Option<String>,
    /// How many rows the hottest-sets section shows.
    pub top: usize,
}

impl Default for SummarizeOptions {
    fn default() -> Self {
        SummarizeOptions {
            cell_filter: None,
            top: 10,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct CellSummary {
    epochs: u64,
    counters: BTreeMap<String, u64>,
    hot_sets: Vec<(u64, u64)>,
    epoch_rows: Vec<EpochRow>,
    raw_events: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct EpochRow {
    epoch: u64,
    accesses: u64,
    hits: u64,
    conflict: u64,
    capacity: u64,
    alias: u64,
    oracle_agree: u64,
    oracle_total: u64,
}

fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        "n/a".to_owned()
    } else {
        format!("{:.1}", num as f64 / den as f64 * 100.0)
    }
}

fn counters_of(v: &Value) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    if let Some(Value::Object(map)) = v.get("counters") {
        for (k, val) in map {
            if let Some(n) = val.as_u64() {
                out.insert(k.clone(), n);
            }
        }
    }
    out
}

fn hot_sets_of(v: &Value) -> Vec<(u64, u64)> {
    v.get("hot_sets")
        .and_then(Value::as_array)
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|p| {
                    let p = p.as_array()?;
                    Some((p.first()?.as_u64()?, p.get(1)?.as_u64()?))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Renders a human-readable summary of an `obs-repro/1` JSONL
/// document.
///
/// Tolerance matches the fault-repro checkpoint loader: a torn final
/// line (a crash mid-write) and record lines from a foreign schema
/// are skipped with a warning in the report rather than failing the
/// whole summary. Damage anywhere *else* — an unparseable interior
/// line, a wrong or missing header — is still an error.
///
/// # Errors
///
/// Returns a message when the input is empty, has a non-`obs-repro/1`
/// header, or contains an unparseable non-final line.
pub fn summarize(text: &str, opts: &SummarizeOptions) -> Result<String, String> {
    let mut warnings: Vec<String> = Vec::new();
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut values = Vec::with_capacity(lines.len());
    for (pos, &(lineno, line)) in lines.iter().enumerate() {
        match jsonl::parse(line) {
            Ok(v) => values.push(v),
            Err(e) if pos + 1 == lines.len() => {
                warnings.push(format!("skipped torn final line {}: {e}", lineno + 1));
            }
            Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
        }
    }
    let header = values.first().ok_or("empty probe file")?;
    let schema = header.str_field("schema").unwrap_or("<missing>");
    if schema != sim_core::registry::SCHEMA_OBS {
        return Err(format!(
            "expected schema {}, found {schema}",
            sim_core::registry::SCHEMA_OBS
        ));
    }
    let mode = header.str_field("mode").unwrap_or("?").to_owned();

    // Fold the record lines per (target, cell); BTreeMap keeps report
    // order deterministic and grouped by target.
    let mut cells: BTreeMap<(String, String), CellSummary> = BTreeMap::new();
    let mut total_cells = 0u64;
    let mut foreign = 0u64;
    for v in &values[1..] {
        let key = || {
            (
                v.str_field("target").unwrap_or("?").to_owned(),
                v.str_field("cell").unwrap_or("?").to_owned(),
            )
        };
        match v.str_field("type") {
            Some("cell") => {
                let entry = cells.entry(key()).or_default();
                entry.epochs = v.u64_field("epochs").unwrap_or(0);
                entry.counters = counters_of(v);
                entry.hot_sets = hot_sets_of(v);
            }
            Some("epoch") => {
                cells.entry(key()).or_default().epoch_rows.push(EpochRow {
                    epoch: v.u64_field("epoch").unwrap_or(0),
                    accesses: v.u64_field("accesses").unwrap_or(0),
                    hits: v.u64_field("hits").unwrap_or(0),
                    conflict: v.u64_field("conflict").unwrap_or(0),
                    capacity: v.u64_field("capacity").unwrap_or(0),
                    alias: v.u64_field("alias").unwrap_or(0),
                    oracle_agree: v.u64_field("oracle_agree").unwrap_or(0),
                    oracle_total: v.u64_field("oracle_total").unwrap_or(0),
                });
            }
            Some("event") => cells.entry(key()).or_default().raw_events += 1,
            Some("totals") => total_cells = v.u64_field("cells").unwrap_or(0),
            // A record from another schema (or an unknown type): skip
            // it, like the checkpoint loader discards foreign lines.
            _ => foreign += 1,
        }
    }
    if foreign > 0 {
        warnings.push(format!(
            "skipped {foreign} foreign/unrecognized record line(s)"
        ));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{}  mode={mode}{}  events/workload={}  cells={}\n",
        sim_core::registry::SCHEMA_OBS,
        header
            .u64_field("epoch_len")
            .map(|n| format!(" epoch_len={n}"))
            .unwrap_or_default(),
        header.u64_field("events_per_workload").unwrap_or(0),
        if total_cells > 0 {
            total_cells
        } else {
            cells.len() as u64
        },
    ));
    if let Some(targets) = header.get("targets").and_then(Value::as_array) {
        let names: Vec<&str> = targets.iter().filter_map(Value::as_str).collect();
        out.push_str(&format!("targets: {}\n", names.join(" ")));
    }
    for w in &warnings {
        out.push_str(&format!("warning: {w}\n"));
    }
    out.push('\n');

    if mode == "raw" {
        let mut table = Table::new(vec!["target".into(), "cell".into(), "events".into()]);
        for ((target, cell), s) in &cells {
            table.row(vec![target.clone(), cell.clone(), s.raw_events.to_string()]);
        }
        out.push_str(&table.to_string());
        return Ok(out);
    }

    let mut table = Table::new(
        [
            "target",
            "cell",
            "epochs",
            "accesses",
            "miss%",
            "conf%",
            "alias",
            "acc%",
            "acc drift",
        ]
        .map(String::from)
        .to_vec(),
    );
    for ((target, cell), s) in &cells {
        let access = s.counters.get("access").copied().unwrap_or(0);
        let hits = s.counters.get("access.hit").copied().unwrap_or(0);
        let conflict = s.counters.get("classify.conflict").copied().unwrap_or(0);
        let capacity = s.counters.get("classify.capacity").copied().unwrap_or(0);
        let alias = s.counters.get("mct.alias").copied().unwrap_or(0);
        let agree = s.counters.get("oracle.agree").copied().unwrap_or(0);
        let oracle = s.counters.get("oracle.total").copied().unwrap_or(0);
        // Classifier-accuracy drift over the run: first vs last epoch
        // with oracle coverage.
        let with_oracle: Vec<&EpochRow> =
            s.epoch_rows.iter().filter(|e| e.oracle_total > 0).collect();
        let drift = match (with_oracle.first(), with_oracle.last()) {
            (Some(first), Some(last)) if with_oracle.len() > 1 => format!(
                "{}->{}",
                pct(first.oracle_agree, first.oracle_total),
                pct(last.oracle_agree, last.oracle_total)
            ),
            _ => "-".to_owned(),
        };
        table.row(vec![
            target.clone(),
            cell.clone(),
            s.epochs.to_string(),
            access.to_string(),
            pct(access - hits, access),
            pct(conflict, conflict + capacity),
            alias.to_string(),
            pct(agree, oracle),
            drift,
        ]);
    }
    out.push_str(&table.to_string());

    // Hottest sets across all cells (set indices are per-cell cache
    // geometry, so each row keeps its cell attribution).
    let mut hottest: Vec<(String, u64, u64)> = cells
        .iter()
        .flat_map(|((target, cell), s)| {
            s.hot_sets
                .iter()
                .map(move |&(set, count)| (format!("{target}/{cell}"), set, count))
        })
        .collect();
    hottest.sort_by(|a, b| {
        b.2.cmp(&a.2)
            .then_with(|| a.0.cmp(&b.0))
            .then_with(|| a.1.cmp(&b.1))
    });
    hottest.truncate(opts.top);
    if !hottest.is_empty() {
        out.push_str("\nhottest conflict sets\n");
        let mut table = Table::new(["cell", "set", "conflicts"].map(String::from).to_vec());
        for (cell, set, count) in hottest {
            table.row(vec![cell, set.to_string(), count.to_string()]);
        }
        out.push_str(&table.to_string());
    }

    if let Some(filter) = &opts.cell_filter {
        for ((target, cell), s) in &cells {
            let name = format!("{target}/{cell}");
            if !name.contains(filter.as_str()) {
                continue;
            }
            out.push_str(&format!("\nepochs of {name}\n"));
            let mut table = Table::new(
                ["epoch", "accesses", "miss%", "conf", "cap", "alias", "acc%"]
                    .map(String::from)
                    .to_vec(),
            );
            for e in &s.epoch_rows {
                table.row(vec![
                    e.epoch.to_string(),
                    e.accesses.to_string(),
                    pct(e.accesses - e.hits, e.accesses),
                    e.conflict.to_string(),
                    e.capacity.to_string(),
                    e.alias.to_string(),
                    pct(e.oracle_agree, e.oracle_total),
                ]);
            }
            out.push_str(&table.to_string());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{render_jsonl, CellRecord, ProbeMode, RunHeader};
    use sim_core::probe::{EpochSnapshot, Registry};

    fn sample_jsonl() -> String {
        let mut totals = Registry::new();
        totals.bump("access", 20);
        totals.bump("access.hit", 15);
        totals.bump("classify.conflict", 4);
        totals.bump("classify.capacity", 1);
        totals.bump("mct.alias", 1);
        totals.bump("oracle.agree", 4);
        totals.bump("oracle.total", 5);
        let epochs = vec![
            EpochSnapshot {
                epoch: 0,
                accesses: 10,
                hits: 8,
                conflict: 3,
                capacity: 0,
                alias: 1,
                oracle_agree: 1,
                oracle_total: 2,
                hot_sets: vec![(7, 3)],
            },
            EpochSnapshot {
                epoch: 1,
                accesses: 10,
                hits: 7,
                conflict: 1,
                capacity: 1,
                alias: 0,
                oracle_agree: 3,
                oracle_total: 3,
                hot_sets: vec![(2, 1)],
            },
        ];
        let rec = CellRecord {
            target: "fig1",
            cell: "dm16/swim".to_owned(),
            epochs,
            totals,
            hot_sets: vec![(7, 3), (2, 1)],
            raw: None,
        };
        render_jsonl(
            &[rec],
            &RunHeader {
                mode: ProbeMode::Epoch(10),
                events_per_workload: 20,
                targets: vec!["fig1"],
            },
        )
    }

    #[test]
    fn summarizes_an_epoch_file() {
        let text = sample_jsonl();
        let out = summarize(&text, &SummarizeOptions::default()).unwrap();
        assert!(out.contains("mode=epoch epoch_len=10"), "{out}");
        assert!(out.contains("dm16/swim"), "{out}");
        // 5 misses / 20 accesses, 4/5 conflict share, 4/5 oracle.
        assert!(out.contains("25.0"), "{out}");
        assert!(out.contains("80.0"), "{out}");
        // Drift from 1/2 to 3/3.
        assert!(out.contains("50.0->100.0"), "{out}");
        assert!(out.contains("hottest conflict sets"), "{out}");
    }

    #[test]
    fn cell_filter_renders_epoch_table() {
        let text = sample_jsonl();
        let out = summarize(
            &text,
            &SummarizeOptions {
                cell_filter: Some("swim".to_owned()),
                top: 10,
            },
        )
        .unwrap();
        assert!(out.contains("epochs of fig1/dm16/swim"), "{out}");
        assert!(
            out.lines().any(|l| l.trim_start().starts_with('1')),
            "{out}"
        );
    }

    #[test]
    fn rejects_wrong_schema() {
        let err = summarize(
            "{\"schema\":\"bench-repro/1\"}\n",
            &SummarizeOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("obs-repro/1"), "{err}");
        assert!(summarize("", &SummarizeOptions::default()).is_err());
        assert!(summarize("not json\n", &SummarizeOptions::default()).is_err());
    }

    #[test]
    fn rejects_empty_probe_file() {
        let err = summarize("", &SummarizeOptions::default()).unwrap_err();
        assert!(err.contains("empty probe file"), "{err}");
        // Whitespace-only input is the same as empty.
        let err = summarize("\n  \n", &SummarizeOptions::default()).unwrap_err();
        assert!(err.contains("empty probe file"), "{err}");
    }

    #[test]
    fn tolerates_torn_final_line() {
        let mut text = sample_jsonl();
        // Simulate a crash mid-write: the last line is truncated JSON.
        text.push_str("{\"type\":\"cell\",\"target\":\"fig1\",\"ce");
        let out = summarize(&text, &SummarizeOptions::default()).unwrap();
        assert!(out.contains("warning: skipped torn final line"), "{out}");
        // The intact records still summarize normally.
        assert!(out.contains("dm16/swim"), "{out}");
        // A torn line in the *middle* of the file is still an error.
        let torn_middle = "{\"schema\":\"obs-repro/1\",\"mode\":\"raw\",\"events_per_workload\":1}\n{\"type\nonsense\n{\"type\":\"totals\",\"cells\":0}\n";
        assert!(summarize(torn_middle, &SummarizeOptions::default()).is_err());
    }

    #[test]
    fn skips_foreign_schema_records_with_warning() {
        let mut text = sample_jsonl();
        // Splice a record from another schema before the final line.
        let insert = "{\"type\":\"span\",\"scope\":\"cell\",\"name\":\"replay_block\"}\n";
        let tail = text.rfind("{\"type\":\"totals\"").unwrap();
        text.insert_str(tail, insert);
        let out = summarize(&text, &SummarizeOptions::default()).unwrap();
        assert!(
            out.contains("warning: skipped 1 foreign/unrecognized record line(s)"),
            "{out}"
        );
        assert!(out.contains("dm16/swim"), "{out}");
    }
}
