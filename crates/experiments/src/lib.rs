//! Reproduction drivers for every table and figure in the paper's
//! evaluation (§3 and §5).
//!
//! Each module regenerates one artifact:
//!
//! | module    | paper artifact | content |
//! |-----------|----------------|---------|
//! | [`fig1`]  | Figure 1 | MCT accuracy vs the 3C oracle, four cache configurations |
//! | [`fig2`]  | Figure 2 | accuracy vs number of saved tag bits |
//! | [`fig3`]  | Figure 3 + Table 1 | victim-cache policies: speedups, hit rates, swaps, fills |
//! | [`fig4`]  | Figure 4 | next-line prefetch filters: accuracy, coverage, speedup |
//! | [`fig5`]  | Figure 5 | cache-exclusion policies: hit rates and speedups |
//! | [`sec54`] | §5.4 | pseudo-associative cache: miss rates vs base and true 2-way |
//! | [`fig6`]  | Figures 6 + 7 | AMB policy combinations: speedups and hit-rate components |
//! | [`sec56`] | §5.6 | co-scheduling on a shared cache, ranked by MCT conflict rate |
//! | [`ablation`] | (extensions) | shadow-directory depth, CPU window, buffer size |
//!
//! Every driver takes the number of trace events per workload, so the
//! same code serves quick smoke tests, Criterion benches, and the full
//! `repro` runs. Absolute numbers differ from the paper (the substrate
//! is a synthetic-workload simulator, not SPEC95 on SMTSIM); the
//! qualitative shape — who wins, roughly by how much, where crossovers
//! fall — is the reproduction target (see EXPERIMENTS.md).
//!
//! # Examples
//!
//! ```
//! let report = experiments::fig1::run(5_000);
//! let dm16 = &report.configs[0];
//! assert!(dm16.average.conflict.value() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod sec54;
pub mod sec56;
mod table;

pub use table::Table;

/// Default events per workload for full experiment runs.
pub const DEFAULT_EVENTS: usize = 300_000;

/// The seed all experiments use (workload identity is mixed in by the
/// workloads crate).
pub const SEED: u64 = 1;

/// Maps `f` over `items` on scoped threads, preserving order.
///
/// Every experiment iterates independent (workload, policy) cells;
/// this fans them out across cores without touching determinism —
/// each cell owns its own simulator state and RNG.
pub(crate) fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let n = items.len();
    if n <= 1 || threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(work);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.min(n) {
            handles.push(scope.spawn(|| {
                let mut results = Vec::new();
                loop {
                    let next = queue.lock().expect("queue lock").pop();
                    match next {
                        Some((idx, item)) => results.push((idx, f(item))),
                        None => break,
                    }
                }
                results
            }));
        }
        for h in handles {
            for (idx, r) in h.join().expect("worker panicked") {
                slots[idx] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

/// Runs a workload trace through a memory system under the paper's
/// CPU model, returning the timing report.
pub(crate) fn drive<M: cpu_model::MemorySystem>(
    system: &mut M,
    workload: &workloads::Workload,
    events: usize,
) -> cpu_model::CpuReport {
    let cpu = cpu_model::OooModel::new(cpu_model::CpuConfig::paper_default());
    let mut source = workload.source(SEED);
    let trace = std::iter::from_fn(move || Some(source.next_event())).take(events);
    cpu.run(system, trace)
}

#[cfg(test)]
mod tests {
    #[test]
    fn drive_runs_a_workload() {
        let w = workloads::by_name("swim").unwrap();
        let mut sys = cpu_model::BaselineSystem::paper_default().unwrap();
        let report = super::drive(&mut sys, &w, 1_000);
        assert!(report.instructions > 1_000);
        assert!(report.cycles > 0);
    }
}
