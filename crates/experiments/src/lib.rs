//! Reproduction drivers for every table and figure in the paper's
//! evaluation (§3 and §5).
//!
//! Each module regenerates one artifact:
//!
//! | module    | paper artifact | content |
//! |-----------|----------------|---------|
//! | [`fig1`]  | Figure 1 | MCT accuracy vs the 3C oracle, four cache configurations |
//! | [`fig2`]  | Figure 2 | accuracy vs number of saved tag bits |
//! | [`fig3`]  | Figure 3 + Table 1 | victim-cache policies: speedups, hit rates, swaps, fills |
//! | [`fig4`]  | Figure 4 | next-line prefetch filters: accuracy, coverage, speedup |
//! | [`fig5`]  | Figure 5 | cache-exclusion policies: hit rates and speedups |
//! | [`sec54`] | §5.4 | pseudo-associative cache: miss rates vs base and true 2-way |
//! | [`fig6`]  | Figures 6 + 7 | AMB policy combinations: speedups and hit-rate components |
//! | [`sec56`] | §5.6 | co-scheduling on a shared cache, ranked by MCT conflict rate |
//! | [`ablation`] | (extensions) | shadow-directory depth, CPU window, buffer size |
//!
//! Two infrastructure modules serve the `repro` harness: [`cli`]
//! (argument parsing and the figure-target registry) and [`telemetry`]
//! (per-figure wall time, events/sec, and the machine-readable
//! `BENCH_repro.json` the perf trajectory is tracked with). Workload
//! traces are materialized once per `(workload, seed, events)` in the
//! shared [`trace_gen::arena`] — see [`trace_for`] — and replayed by
//! every cell, so no driver pays trace synthesis more than once. The
//! accuracy figures go one step further with [`decomposed_for`]: the
//! per-event `(set, tag)` split is precomputed once per (workload,
//! geometry) and streamed straight into the cache kernel's `*_at`
//! entry points.
//!
//! Every driver takes the number of trace events per workload, so the
//! same code serves quick smoke tests, Criterion benches, and the full
//! `repro` runs. Absolute numbers differ from the paper (the substrate
//! is a synthetic-workload simulator, not SPEC95 on SMTSIM); the
//! qualitative shape — who wins, roughly by how much, where crossovers
//! fall — is the reproduction target (see EXPERIMENTS.md).
//!
//! # Examples
//!
//! ```
//! let report = experiments::fig1::run(5_000);
//! let dm16 = &report.configs[0];
//! assert!(dm16.average.conflict.value() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod checkpoint;
pub mod cli;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod ioutil;
pub mod jsonl;
pub mod obs;
pub mod probe;
pub mod sec54;
pub mod sec56;
mod table;
pub mod telemetry;
pub mod traceview;
pub mod tracing;

pub use table::Table;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cache_model::CacheGeometry;
use trace_gen::arena::{ArenaKey, TraceArena};
use trace_gen::decomposed::{DecomposedArena, DecomposedTrace};
use trace_gen::TraceEvent;

/// Default events per workload for full experiment runs.
pub const DEFAULT_EVENTS: usize = 300_000;

/// Default event-block size for decomposed replay, picked by the
/// `substrate/cache_kernel` block-size sweep (EXPERIMENTS.md, "Cache
/// kernel round two"): large enough to amortize bucketing, small
/// enough that a block's `(set, tag)` pairs and the bucketing scratch
/// stay L1/L2-resident alongside the kernel arrays.
pub const DEFAULT_REPLAY_BLOCK: usize = 1024;

/// The process-wide replay block size (`repro --block-size`).
static REPLAY_BLOCK: AtomicUsize = AtomicUsize::new(DEFAULT_REPLAY_BLOCK);

/// Sets the event-block size used by [`replay_accuracy`]. A size of 1
/// selects the legacy per-event path; zero is clamped to 1.
pub fn set_replay_block_size(block: usize) {
    REPLAY_BLOCK.store(block.max(1), Ordering::Relaxed);
}

/// The event-block size [`replay_accuracy`] currently uses.
#[must_use]
pub fn replay_block_size() -> usize {
    REPLAY_BLOCK.load(Ordering::Relaxed)
}

/// The shared replay loop of the accuracy drivers (fig1, fig2, the
/// shadow-depth ablation): streams a decomposed trace through an
/// [`mct::accuracy::AccuracyEvaluator`] in event blocks of
/// [`replay_block_size`] pairs, falling back to the per-event loop at
/// block size 1. Results are identical at every block size (the block
/// kernel is differential-tested against per-event replay); the block
/// path exists purely for throughput.
pub fn replay_accuracy<T: mct::EvictionClassifier>(
    trace: &DecomposedTrace,
    eval: &mut mct::accuracy::AccuracyEvaluator<T>,
) {
    let block = replay_block_size();
    if block <= 1 {
        let _span = sim_core::span::enter("replay_events");
        sim_core::span::add_events(trace.len() as u64);
        trace.for_each(|set, tag| eval.observe_parts(set, tag));
    } else {
        let _span = sim_core::span::enter("replay_block");
        sim_core::span::add_events(trace.len() as u64);
        trace.for_each_block(block, |sets, tags| eval.observe_block(sets, tags));
    }
}

/// The seed all experiments use (workload identity is mixed in by the
/// workloads crate).
pub const SEED: u64 = 1;

/// Maps `f` over independent experiment cells on scoped threads,
/// preserving order — a thin re-export of [`sim_core::parallel`], the
/// workspace's one scheduler implementation. Thread count is
/// controlled by `repro --threads` / `SIM_THREADS` /
/// [`sim_core::parallel::set_max_threads`]; results are identical at
/// any thread count because every cell owns its simulator state and
/// its (replayed) trace.
pub use sim_core::parallel::par_map;

/// The recovering variant of [`par_map`]: failed cells come back as
/// [`sim_core::parallel::CellFailure`]s instead of panicking, which is
/// how `repro` records degraded cells without aborting a sweep.
pub use sim_core::parallel::try_par_map;

/// The shared trace for `(workload, SEED, events)`, materialized once
/// in the global [`TraceArena`] and replayed by every cell that needs
/// it. Replay is bit-identical to streaming the workload's generator.
#[must_use]
pub fn trace_for(workload: &workloads::Workload, events: usize) -> Arc<[TraceEvent]> {
    trace_for_seed(workload, SEED, events)
}

/// [`trace_for`] with an explicit seed (§5.6 uses `SEED + 1` for the
/// co-scheduled partner thread).
#[must_use]
pub fn trace_for_seed(
    workload: &workloads::Workload,
    seed: u64,
    events: usize,
) -> Arc<[TraceEvent]> {
    TraceArena::global().get_or_materialize(ArenaKey::new(workload.name(), seed, events), || {
        workload.source(seed)
    })
}

/// The shared trace for `(workload, SEED, events)` split into per-event
/// `(set, tag)` pairs for `geom`'s indexing scheme, decomposed once in
/// the global [`DecomposedArena`] and replayed by every cell that
/// evaluates a cache with that geometry. The accuracy figures (fig1,
/// fig2, the shadow-depth ablation) run many models per (workload,
/// geometry) pair, so address decomposition happens once instead of
/// once per cell per event.
#[must_use]
pub fn decomposed_for(
    workload: &workloads::Workload,
    geom: &CacheGeometry,
    events: usize,
) -> Arc<DecomposedTrace> {
    DecomposedArena::global().get_or_decompose(
        ArenaKey::new(workload.name(), SEED, events),
        geom.line_size(),
        geom.set_bits(),
        || trace_for(workload, events),
    )
}

/// Runs a workload trace through a memory system under the paper's
/// CPU model, returning the timing report. The trace is replayed from
/// the shared arena, not regenerated.
pub(crate) fn drive<M: cpu_model::MemorySystem>(
    system: &mut M,
    workload: &workloads::Workload,
    events: usize,
) -> cpu_model::CpuReport {
    let cpu = cpu_model::OooModel::new(cpu_model::CpuConfig::paper_default());
    let trace = trace_for(workload, events);
    telemetry::record_events(events as u64);
    cpu.run(system, trace.iter().copied())
}

#[cfg(test)]
mod tests {
    #[test]
    fn drive_runs_a_workload() {
        let w = workloads::by_name("swim").unwrap();
        let mut sys = cpu_model::BaselineSystem::paper_default().unwrap();
        let report = super::drive(&mut sys, &w, 1_000);
        assert!(report.instructions > 1_000);
        assert!(report.cycles > 0);
    }
}
