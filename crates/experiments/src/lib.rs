//! Reproduction drivers for every table and figure in the paper's
//! evaluation (§3 and §5).
//!
//! Each module regenerates one artifact:
//!
//! | module    | paper artifact | content |
//! |-----------|----------------|---------|
//! | [`fig1`]  | Figure 1 | MCT accuracy vs the 3C oracle, four cache configurations |
//! | [`fig2`]  | Figure 2 | accuracy vs number of saved tag bits |
//! | [`fig3`]  | Figure 3 + Table 1 | victim-cache policies: speedups, hit rates, swaps, fills |
//! | [`fig4`]  | Figure 4 | next-line prefetch filters: accuracy, coverage, speedup |
//! | [`fig5`]  | Figure 5 | cache-exclusion policies: hit rates and speedups |
//! | [`sec54`] | §5.4 | pseudo-associative cache: miss rates vs base and true 2-way |
//! | [`fig6`]  | Figures 6 + 7 | AMB policy combinations: speedups and hit-rate components |
//! | [`sec56`] | §5.6 | co-scheduling on a shared cache, ranked by MCT conflict rate |
//! | [`ablation`] | (extensions) | shadow-directory depth, CPU window, buffer size |
//!
//! Two infrastructure modules serve the `repro` harness: [`cli`]
//! (argument parsing and the figure-target registry) and [`telemetry`]
//! (per-figure wall time, events/sec, and the machine-readable
//! `BENCH_repro.json` the perf trajectory is tracked with). Workload
//! traces are materialized once per `(workload, seed, events)` in the
//! shared [`trace_gen::arena`] — see [`trace_for`] — and replayed by
//! every cell, so no driver pays trace synthesis more than once. The
//! accuracy figures go one step further with [`replay_for`]: the
//! per-event `(set, tag)` split is precomputed once per (workload,
//! geometry) — set-partitioned at decomposition time on geometries
//! past the kernel's sort threshold — and streamed into the cache
//! kernel's batched entry points. Under `repro --stream`
//! ([`set_stream_mode`]) drivers bypass the arenas entirely and pipe
//! generators through a chunked O([`STREAM_CHUNK`])-memory pipeline
//! with byte-identical output.
//!
//! Every driver takes the number of trace events per workload, so the
//! same code serves quick smoke tests, Criterion benches, and the full
//! `repro` runs. Absolute numbers differ from the paper (the substrate
//! is a synthetic-workload simulator, not SPEC95 on SMTSIM); the
//! qualitative shape — who wins, roughly by how much, where crossovers
//! fall — is the reproduction target (see EXPERIMENTS.md).
//!
//! # Examples
//!
//! ```
//! let report = experiments::fig1::run(5_000);
//! let dm16 = &report.configs[0];
//! assert!(dm16.average.conflict.value() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod checkpoint;
pub mod cli;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod ioutil;
pub mod jsonl;
pub mod mrc;
pub mod obs;
pub mod probe;
pub mod sec54;
pub mod sec56;
mod table;
pub mod telemetry;
pub mod traceview;
pub mod tracing;

pub use table::Table;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use cache_model::CacheGeometry;
use trace_gen::arena::{ArenaKey, TraceArena};
use trace_gen::decomposed::{DecomposedArena, DecomposedTrace, PartitionedTrace};
use trace_gen::TraceEvent;

/// Default events per workload for full experiment runs.
pub const DEFAULT_EVENTS: usize = 300_000;

/// Default event-block size for decomposed replay, picked by the
/// `substrate/cache_kernel` block-size sweep (EXPERIMENTS.md, "Cache
/// kernel round two"): large enough to amortize bucketing, small
/// enough that a block's `(set, tag)` pairs and the bucketing scratch
/// stay L1/L2-resident alongside the kernel arrays.
pub const DEFAULT_REPLAY_BLOCK: usize = 1024;

/// The process-wide replay block size (`repro --block-size`).
static REPLAY_BLOCK: AtomicUsize = AtomicUsize::new(DEFAULT_REPLAY_BLOCK);

/// Sets the event-block size used by [`replay_accuracy`]. A size of 1
/// selects the legacy per-event path; zero is clamped to 1.
pub fn set_replay_block_size(block: usize) {
    REPLAY_BLOCK.store(block.max(1), Ordering::Relaxed);
}

/// The event-block size [`replay_accuracy`] currently uses.
#[must_use]
pub fn replay_block_size() -> usize {
    REPLAY_BLOCK.load(Ordering::Relaxed)
}

/// Whether drivers stream workload generators chunk-by-chunk instead
/// of materializing whole traces in the arenas (`repro --stream`).
static STREAM: AtomicBool = AtomicBool::new(false);

/// Selects streaming replay (`repro --stream`): drivers pipe each
/// workload generator through a chunked generate → decompose → kernel
/// pipeline with O([`STREAM_CHUNK`]) memory, bypassing the trace and
/// decomposition arenas entirely. Output is byte-identical to arena
/// replay at any thread count — both replay the same generator stream
/// through the same kernels — only residency changes.
pub fn set_stream_mode(stream: bool) {
    STREAM.store(stream, Ordering::Relaxed);
}

/// Whether streaming replay is selected.
#[must_use]
pub fn stream_mode() -> bool {
    STREAM.load(Ordering::Relaxed)
}

/// Events per chunk of the streaming pipeline: the generator fills
/// one `(set, tag)` chunk, the kernel replays it in
/// [`replay_block_size`] blocks, and the buffers are reused — peak
/// memory is O(chunk) per cell regardless of trace length. Chunk
/// boundaries cannot change results (block replay is
/// boundary-insensitive by the differential equivalence the block
/// kernel is tested for).
pub const STREAM_CHUNK: usize = 64 * 1024;

/// One accuracy driver's replay input: either arena-resident forms
/// (trace order, plus the set-partitioned form when the geometry
/// clears the sort threshold) or a streamed generator.
#[derive(Debug, Clone)]
pub enum ReplayTrace {
    /// Arena-memoized forms, shared across cells.
    Arena {
        /// Trace-order `(set, tag)` arrays.
        trace: Arc<DecomposedTrace>,
        /// The decompose-time set-partitioned form, present only when
        /// the geometry is past
        /// [`cache_model::SORT_SLOT_THRESHOLD`] (cache-resident
        /// geometries replay faster in trace order).
        partitioned: Option<Arc<PartitionedTrace>>,
    },
    /// Chunked generator replay (`repro --stream`): nothing resident
    /// beyond one chunk.
    Stream {
        /// The workload whose generator is streamed.
        workload: workloads::Workload,
        /// Geometry the chunks are decomposed against.
        geom: CacheGeometry,
        /// Total events to stream.
        events: usize,
    },
}

impl ReplayTrace {
    /// Total events this input replays.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            ReplayTrace::Arena { trace, .. } => trace.len(),
            ReplayTrace::Stream { events, .. } => *events,
        }
    }

    /// `true` if there are no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The replay input for `(workload, SEED, events)` against `geom`:
/// the arena-memoized decomposed trace — plus the set-partitioned
/// form when `geom` is past [`cache_model::SORT_SLOT_THRESHOLD`] and
/// block replay is enabled — or a streamed generator under
/// [`stream_mode`]. This is what fig1, fig2 and the shadow-depth
/// ablation feed [`replay_accuracy`].
#[must_use]
pub fn replay_for(
    workload: &workloads::Workload,
    geom: &CacheGeometry,
    events: usize,
) -> ReplayTrace {
    if stream_mode() {
        return ReplayTrace::Stream {
            workload: *workload,
            geom: *geom,
            events,
        };
    }
    let trace = decomposed_for(workload, geom, events);
    let partitioned = (replay_block_size() > 1
        && geom.num_lines() > cache_model::SORT_SLOT_THRESHOLD)
        .then(|| {
            DecomposedArena::global().get_or_partition(
                ArenaKey::new(workload.name(), SEED, events),
                geom.line_size(),
                geom.set_bits(),
                || trace_for(workload, events),
            )
        });
    ReplayTrace::Arena { trace, partitioned }
}

/// The shared replay loop of the accuracy drivers (fig1, fig2, the
/// shadow-depth ablation): streams the replay input through an
/// [`mct::accuracy::AccuracyEvaluator`].
///
/// Arena inputs replay in event blocks of [`replay_block_size`]
/// pairs (per-event loop at block size 1); past-threshold geometries
/// carry the decompose-time set-partitioned form and replay whole
/// per-set runs with no per-block sorting. Stream inputs run the
/// chunked generator pipeline. Results are identical on every path
/// (each is differential-tested against per-event replay); the
/// variants exist purely for throughput and memory. When a probe
/// sink is armed, every path falls back to per-event trace order so
/// the emitted event stream is byte-identical to unbatched replay.
pub fn replay_accuracy<T: mct::EvictionClassifier>(
    trace: &ReplayTrace,
    eval: &mut mct::accuracy::AccuracyEvaluator<T>,
) {
    let block = replay_block_size();
    match trace {
        ReplayTrace::Arena { trace, partitioned } => {
            if let Some(part) = partitioned {
                if !sim_core::probe::active() {
                    let _span = sim_core::span::enter("replay_partitioned");
                    sim_core::span::add_events(trace.len() as u64);
                    let runs = cache_model::SetRuns::new(
                        part.dir_sets(),
                        part.dir_starts(),
                        part.indices(),
                        part.tags(),
                    );
                    eval.observe_partitioned(trace.sets(), trace.tags(), runs);
                    return;
                }
                // Armed probes need per-event trace order; fall
                // through to the trace-order paths below.
            }
            if block <= 1 {
                let _span = sim_core::span::enter("replay_events");
                sim_core::span::add_events(trace.len() as u64);
                trace.for_each(|set, tag| eval.observe_parts(set, tag));
            } else {
                let _span = sim_core::span::enter("replay_block");
                sim_core::span::add_events(trace.len() as u64);
                trace.for_each_block(block, |sets, tags| eval.observe_block(sets, tags));
            }
        }
        ReplayTrace::Stream {
            workload,
            geom,
            events,
        } => {
            let _span = sim_core::span::enter("replay_stream");
            sim_core::span::add_events(*events as u64);
            let mut source = workload.source(SEED);
            let line_size = geom.line_size();
            let set_bits = geom.set_bits();
            let mask = (1u64 << set_bits) - 1;
            let mut left = *events;
            if left == 0 {
                return;
            }
            // Chunk buffers come from (and return to) the kernel's
            // buffer pool, so streaming traffic shows up in the same
            // `trace-repro/1` pool counters as the kernel arrays.
            let chunk = STREAM_CHUNK.min(left);
            let mut sets = cache_model::pool::take_u32_zeroed(chunk);
            let mut tags = cache_model::pool::take_u64(chunk);
            while left > 0 {
                let n = chunk.min(left);
                for i in 0..n {
                    let line = source.next_event().access.addr.line(line_size).raw();
                    sets[i] = (line & mask) as u32;
                    tags[i] = line >> set_bits;
                }
                if block <= 1 {
                    for (&set, &tag) in sets[..n].iter().zip(&tags[..n]) {
                        eval.observe_parts(set as usize, tag);
                    }
                } else {
                    for (s, t) in sets[..n].chunks(block).zip(tags[..n].chunks(block)) {
                        eval.observe_block(s, t);
                    }
                }
                left -= n;
            }
            cache_model::pool::recycle_u32(sets);
            cache_model::pool::recycle_u64(tags);
        }
    }
}

/// The seed all experiments use (workload identity is mixed in by the
/// workloads crate).
pub const SEED: u64 = 1;

/// Maps `f` over independent experiment cells on scoped threads,
/// preserving order — a thin re-export of [`sim_core::parallel`], the
/// workspace's one scheduler implementation. Thread count is
/// controlled by `repro --threads` / `SIM_THREADS` /
/// [`sim_core::parallel::set_max_threads`]; results are identical at
/// any thread count because every cell owns its simulator state and
/// its (replayed) trace.
pub use sim_core::parallel::par_map;

/// The recovering variant of [`par_map`]: failed cells come back as
/// [`sim_core::parallel::CellFailure`]s instead of panicking, which is
/// how `repro` records degraded cells without aborting a sweep.
pub use sim_core::parallel::try_par_map;

/// The shared trace for `(workload, SEED, events)`, materialized once
/// in the global [`TraceArena`] and replayed by every cell that needs
/// it. Replay is bit-identical to streaming the workload's generator.
#[must_use]
pub fn trace_for(workload: &workloads::Workload, events: usize) -> Arc<[TraceEvent]> {
    trace_for_seed(workload, SEED, events)
}

/// [`trace_for`] with an explicit seed (§5.6 uses `SEED + 1` for the
/// co-scheduled partner thread).
#[must_use]
pub fn trace_for_seed(
    workload: &workloads::Workload,
    seed: u64,
    events: usize,
) -> Arc<[TraceEvent]> {
    if stream_mode() {
        // Streaming runs keep nothing resident past the caller: the
        // trace is materialized transiently and dropped with the last
        // `Arc` instead of living in the process-wide arena. (Used by
        // the few drivers whose models need random access — §5.6's
        // SMT pairings replay each trace several times.)
        let mut source = workload.source(seed);
        return (0..events).map(|_| source.next_event()).collect();
    }
    TraceArena::global().get_or_materialize(ArenaKey::new(workload.name(), seed, events), || {
        workload.source(seed)
    })
}

/// A single-pass event source for the CPU-model drivers: either a
/// window into an arena-resident trace or a live generator capped at
/// `events`. Both yield the identical event sequence (arena replay is
/// bit-identical to the generator by construction), so sweep output
/// does not depend on which variant ran.
pub(crate) enum EventStream {
    /// Arena-resident trace, replayed by reference.
    Arena(Arc<[TraceEvent]>, usize),
    /// Live generator, `events` remaining.
    Gen(Box<dyn trace_gen::TraceSource>, usize),
}

impl Iterator for EventStream {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        match self {
            EventStream::Arena(trace, pos) => {
                let event = trace.get(*pos).copied();
                *pos += 1;
                event
            }
            EventStream::Gen(source, left) => {
                if *left == 0 {
                    return None;
                }
                *left -= 1;
                Some(source.next_event())
            }
        }
    }
}

/// The event stream for `(workload, seed, events)`: arena-backed
/// normally, a live generator under [`stream_mode`] (O(1) memory —
/// nothing is materialized at all for single-pass consumers).
pub(crate) fn events_for(workload: &workloads::Workload, seed: u64, events: usize) -> EventStream {
    if stream_mode() {
        EventStream::Gen(workload.source(seed), events)
    } else {
        EventStream::Arena(trace_for_seed(workload, seed, events), 0)
    }
}

/// The shared trace for `(workload, SEED, events)` split into per-event
/// `(set, tag)` pairs for `geom`'s indexing scheme, decomposed once in
/// the global [`DecomposedArena`] and replayed by every cell that
/// evaluates a cache with that geometry. The accuracy figures (fig1,
/// fig2, the shadow-depth ablation) run many models per (workload,
/// geometry) pair, so address decomposition happens once instead of
/// once per cell per event.
#[must_use]
pub fn decomposed_for(
    workload: &workloads::Workload,
    geom: &CacheGeometry,
    events: usize,
) -> Arc<DecomposedTrace> {
    DecomposedArena::global().get_or_decompose(
        ArenaKey::new(workload.name(), SEED, events),
        geom.line_size(),
        geom.set_bits(),
        || trace_for(workload, events),
    )
}

/// Runs a workload trace through a memory system under the paper's
/// CPU model, returning the timing report. The trace is replayed from
/// the shared arena, not regenerated.
pub(crate) fn drive<M: cpu_model::MemorySystem>(
    system: &mut M,
    workload: &workloads::Workload,
    events: usize,
) -> cpu_model::CpuReport {
    let cpu = cpu_model::OooModel::new(cpu_model::CpuConfig::paper_default());
    telemetry::record_events(events as u64);
    cpu.run(system, events_for(workload, SEED, events))
}

#[cfg(test)]
mod tests {
    #[test]
    fn drive_runs_a_workload() {
        let w = workloads::by_name("swim").unwrap();
        let mut sys = cpu_model::BaselineSystem::paper_default().unwrap();
        let report = super::drive(&mut sys, &w, 1_000);
        assert!(report.instructions > 1_000);
        assert!(report.cycles > 0);
    }
}
